//! End-to-end durability acceptance: kill-and-recover at every injection
//! point must yield state value-identical to the uninterrupted run, for
//! all seven query classes.
//!
//! This is the top of the stack: the full durable pipeline (transactional
//! ΔG validation → WAL append + fsync → incremental state update →
//! periodic checkpoints) is killed at each of the four crash points of
//! every schedule round, recovered from disk through the checkpoint +
//! WAL-replay ladder, and compared essence-for-essence (values *and*
//! timestamps) against a run that was never interrupted. Determinism is
//! what makes this a hard equality rather than a plausibility check —
//! the paper's algorithms admit exactly one correct world per history.

use incgraph_graph::{Pattern, UpdateBatch};
use incgraph_oracle::{gen_case, run_crash_case, Case, ClassId, GenConfig};

/// An undirected case exercising all seven classes, including the
/// timestamped (weakly deducible) ones, with both inserts and deletes.
fn all_classes_case() -> Case {
    let mut b1 = UpdateBatch::new();
    b1.insert(0, 5, 2).delete(1, 2);
    let mut b2 = UpdateBatch::new();
    b2.insert(2, 6, 1).insert(6, 0, 3);
    let mut b3 = UpdateBatch::new();
    b3.delete(0, 5).insert(1, 2, 4).delete(3, 4);
    let mut b4 = UpdateBatch::new();
    b4.insert(3, 4, 1).insert(5, 7, 2);
    Case {
        seed: 0xD07,
        directed: false,
        nodes: 8,
        labels: Some(vec![0, 1, 0, 1, 0, 1, 0, 1]),
        edges: vec![
            (0, 1, 1),
            (1, 2, 2),
            (2, 3, 1),
            (3, 4, 2),
            (4, 5, 1),
            (5, 6, 2),
            (6, 7, 1),
        ],
        schedule: vec![b1, b2, b3, b4],
        classes: ClassId::ALL.to_vec(),
        source: 0,
        pattern: Some(Pattern::new(vec![0, 1], &[(0, 1)])),
        threads: vec![1],
        fault: None,
        crash_at: None,
        coalesce: false,
        plan: None,
    }
}

#[test]
fn every_injection_point_recovers_value_identical_for_all_seven_classes() {
    let case = all_classes_case();
    assert_eq!(case.classes.len(), 7, "the sweep must cover every class");
    let outcome = run_crash_case(&case);
    assert!(
        outcome.passed(),
        "durability violation: {}",
        outcome.failure.unwrap()
    );
    // 4 rounds × 4 injection points, every batch valid.
    assert_eq!(outcome.recoveries, 16);
    assert!(
        outcome.checks >= 16 * 9,
        "seq + edges + 7 essences per cycle"
    );
}

#[test]
fn generated_directed_cases_survive_the_sweep() {
    // Directed topologies drop the undirected-only classes but stress the
    // timestamped ones under generator-shaped (random, effective) ΔG.
    let cfg = GenConfig {
        max_nodes: 16,
        max_batches: 4,
        max_batch_ops: 4,
    };
    let mut swept = 0;
    for seed in 0..12u64 {
        let case = gen_case(seed, &cfg);
        if !case.directed {
            continue;
        }
        let outcome = run_crash_case(&case);
        assert!(
            outcome.passed(),
            "seed {seed}: {}",
            outcome.failure.unwrap()
        );
        swept += 1;
        if swept == 2 {
            break;
        }
    }
    assert!(swept > 0, "no directed case among the first dozen seeds");
}
