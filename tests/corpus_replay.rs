//! Corpus replay: every minimized `.case` file checked into
//! `tests/corpus/` is re-run through the full oracle stack on every test
//! run.
//!
//! Three kinds of files live in the corpus:
//!
//! * **Regression cases** (no `inject-fault` line) — minimized
//!   reproducers of fixed divergences. They must pass all oracles; a
//!   failure means the bug they pinned down has come back.
//! * **Intentional-fault reproducers** (`inject-fault <name>`) — cases
//!   that catch a doctored ΔG. They must keep *failing* on replay; a
//!   pass means the oracles lost their teeth.
//! * **Crash-recovery cases** (`crash-at <point>`) — schedules replayed
//!   through the kill-and-recover oracle ([`run_crash_case`]) at the
//!   recorded durability injection point. They must pass: the recovered
//!   world has to be value-identical to the uninterrupted run.

use incgraph_oracle::{run_case, run_crash_case, Case};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty() {
    assert!(
        !corpus_files().is_empty(),
        "the corpus must retain at least the seed cases"
    );
}

#[test]
fn corpus_cases_replay_as_recorded() {
    let mut regressions = 0usize;
    let mut reproducers = 0usize;
    let mut crash_cases = 0usize;
    let mut plan_cases = 0usize;
    for path in corpus_files() {
        let shown = path.display();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{shown}: {e}"));
        let case = Case::parse(&text).unwrap_or_else(|e| panic!("{shown}: {e}"));
        if case.crash_at.is_some() {
            let outcome = run_crash_case(&case);
            if let Some(f) = outcome.failure {
                panic!("{shown}: crash-recovery regressed: {f}");
            }
            assert!(outcome.recoveries > 0, "{shown}: sweep ran no recoveries");
            crash_cases += 1;
            continue;
        }
        if case.plan.is_some() {
            plan_cases += 1;
        }
        let outcome = run_case(&case, case.fault);
        match (case.fault, outcome.failure) {
            (Some(_), Some(_)) => reproducers += 1,
            (Some(fault), None) => panic!(
                "{shown}: recorded fault `{}` no longer trips any oracle — \
                 the differential oracles lost coverage",
                fault.name()
            ),
            (None, Some(f)) => panic!("{shown}: fixed bug regressed: {f}"),
            (None, None) => regressions += 1,
        }
    }
    // The seed corpus ships all three kinds; keep each populated so every
    // replay direction stays exercised.
    assert!(regressions > 0, "no fault-free regression cases replayed");
    assert!(reproducers > 0, "no intentional-fault reproducers replayed");
    assert!(crash_cases > 0, "no crash-recovery cases replayed");
    assert!(plan_cases > 0, "no plan-bearing dataflow cases replayed");
}
