//! Cross-crate integration tests: the paper's correctness equation
//! `Q(G ⊕ ΔG) = Q(G) ⊕ A_Δ(Q, G, Q(G), ΔG)` checked end-to-end for every
//! query class, every deduced strategy, and every baseline, on shared
//! workloads larger than the per-crate unit tests.

use incgraph::algos::{CcState, DfsState, LccState, SimState, SsspState};
use incgraph::baselines::dyndfs::is_valid_dfs_forest;
use incgraph::baselines::{DynCc, DynDfs, DynDij, DynLcc, IncMatch, RrSssp};
use incgraph::graph::DynamicGraph;
use incgraph::workloads::{random_batch, random_pattern, sample_sources, Dataset};

/// Ten rounds of 1%-sized mixed batches on a dataset stand-in; assert the
/// maintained state equals batch recomputation after every round.
fn rounds(g0: &DynamicGraph, seed: u64) -> Vec<(DynamicGraph, incgraph::graph::AppliedBatch)> {
    let mut out = Vec::new();
    let mut g = g0.clone();
    for round in 0..10 {
        let batch = random_batch(&g, g.size() / 100, 0.5, 100, seed + round);
        let applied = batch.apply(&mut g);
        out.push((g.clone(), applied));
    }
    out
}

#[test]
fn sssp_all_strategies_track_batch() {
    let g0 = Dataset::LiveJournal.graph(true, 0.12);
    let src = sample_sources(&g0, 1, 1)[0];
    let (mut inc, _) = SsspState::batch(&g0, src);
    let (mut pe, _) = SsspState::batch(&g0, src);
    let mut dyndij = DynDij::new(&g0, src);
    let mut rr = RrSssp::new(&g0, src);
    for (round, (g, applied)) in rounds(&g0, 0xDEAD).into_iter().enumerate() {
        inc.update(&g, &applied);
        pe.update_pe_reset(&g, &applied);
        dyndij.apply_batch(&g, &applied);
        let (fresh, _) = SsspState::batch(&g, src);
        assert_eq!(inc.distances(), fresh.distances(), "IncSSSP round {round}");
        assert_eq!(pe.distances(), fresh.distances(), "PE-reset round {round}");
        assert_eq!(
            dyndij.distances(),
            fresh.distances(),
            "DynDij round {round}"
        );
    }
    // RR per-unit protocol over a fresh history.
    let mut g = g0.clone();
    for round in 0..5u64 {
        let batch = random_batch(&g, 50, 0.5, 100, 0xBEEF + round);
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            for op in applied.ops() {
                rr.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
            }
        }
        let (fresh, _) = SsspState::batch(&g, src);
        assert_eq!(rr.distances(), fresh.distances(), "RR round {round}");
    }
}

#[test]
fn cc_all_strategies_track_batch() {
    let g0 = Dataset::Orkut.graph(false, 0.12);
    let (mut inc, _) = CcState::batch(&g0);
    let (mut pe, _) = CcState::batch(&g0);
    let mut hdt = DynCc::new(&g0);
    for (round, (g, applied)) in rounds(&g0, 0xCC).into_iter().enumerate() {
        inc.update(&g, &applied);
        pe.update_pe_reset(&g, &applied);
        hdt.apply_batch(&applied);
        let (fresh, _) = CcState::batch(&g);
        assert_eq!(inc.components(), fresh.components(), "IncCC round {round}");
        assert_eq!(pe.components(), fresh.components(), "PE round {round}");
        assert_eq!(hdt.components(), fresh.components(), "DynCC round {round}");
    }
}

#[test]
fn sim_all_strategies_track_batch() {
    let g0 = Dataset::DbPedia.graph(true, 0.08);
    let q = random_pattern(&g0, 4, 6, 7);
    let (mut inc, _) = SimState::batch(&g0, q.clone());
    let (mut pe, _) = SimState::batch(&g0, q.clone());
    let mut incmatch = IncMatch::new(&g0, q.clone());
    for (round, (g, applied)) in rounds(&g0, 0x51).into_iter().enumerate() {
        inc.update(&g, &applied);
        pe.update_pe_reset(&g, &applied);
        incmatch.apply_batch(&g, &applied);
        let (fresh, _) = SimState::batch(&g, q.clone());
        assert_eq!(inc.relation(), fresh.relation(), "IncSim round {round}");
        assert_eq!(pe.relation(), fresh.relation(), "PE round {round}");
        assert_eq!(
            incmatch.match_count(),
            fresh.match_count(),
            "IncMatch round {round}"
        );
    }
}

#[test]
fn dfs_strategies_track_batch_or_stay_valid() {
    let g0 = Dataset::Orkut.graph(true, 0.08);
    let (mut inc, _) = DfsState::batch(&g0);
    let mut dyn_dfs = DynDfs::new(&g0);
    let mut g = g0.clone();
    for round in 0..8u64 {
        let batch = random_batch(&g, g.size() / 200, 0.5, 100, 0xDF5 + round);
        // IncDFS takes the batch wholesale; DynDFS replays units.
        let mut gu = g.clone();
        for unit in batch.as_units() {
            let applied = unit.apply(&mut gu);
            for op in applied.ops() {
                dyn_dfs.apply_unit(&gu, op.inserted, op.src, op.dst);
            }
        }
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        let (fresh, _) = DfsState::batch(&g);
        for v in 0..g.node_count() as u32 {
            assert_eq!(
                inc.first(v),
                fresh.first(v),
                "IncDFS round {round} node {v}"
            );
            assert_eq!(inc.last(v), fresh.last(v), "IncDFS round {round} node {v}");
            assert_eq!(
                inc.parent(v),
                fresh.parent(v),
                "IncDFS round {round} node {v}"
            );
        }
        is_valid_dfs_forest(&g, &dyn_dfs).unwrap_or_else(|e| panic!("DynDFS round {round}: {e}"));
    }
}

#[test]
fn lcc_all_strategies_track_batch() {
    let g0 = Dataset::LiveJournal.graph(false, 0.1);
    let (mut inc, _) = LccState::batch(&g0);
    let mut stream = DynLcc::new(&g0);
    let mut g = g0.clone();
    for round in 0..8u64 {
        let batch = random_batch(&g, g.size() / 100, 0.5, 1, 0x1CC + round);
        let mut gu = g.clone();
        for unit in batch.as_units() {
            let applied = unit.apply(&mut gu);
            for op in applied.ops() {
                stream.apply_unit(&gu, op.inserted, op.src, op.dst, op.weight);
            }
        }
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        let (fresh, _) = LccState::batch(&g);
        for v in 0..g.node_count() as u32 {
            assert_eq!(inc.degree(v), fresh.degree(v), "IncLCC d round {round}");
            assert_eq!(
                inc.triangles(v),
                fresh.triangles(v),
                "IncLCC λ round {round}"
            );
            assert_eq!(stream.degree(v), fresh.degree(v), "DynLCC d round {round}");
            assert_eq!(
                stream.triangles(v),
                fresh.triangles(v),
                "DynLCC λ round {round}"
            );
        }
    }
}

#[test]
fn temporal_replay_matches_batch_for_sssp_cc_sim() {
    // The Exp-2(2) protocol end-to-end on the temporal stand-in.
    let t = Dataset::WikiDe.temporal(true, 5, 1.9, 0.1);
    let src = sample_sources(&t.initial, 1, 3)[0];
    let q = random_pattern(&t.initial, 4, 6, 5);
    let mut g = t.initial.clone();
    let (mut sssp, _) = SsspState::batch(&g, src);
    let (mut cc, _) = CcState::batch(&g);
    let (mut sim, _) = SimState::batch(&g, q.clone());
    for (month, w) in t.windows.iter().enumerate() {
        let applied = w.apply(&mut g);
        sssp.update(&g, &applied);
        cc.update(&g, &applied);
        sim.update(&g, &applied);
        let (s, _) = SsspState::batch(&g, src);
        let (c, _) = CcState::batch(&g);
        let (m, _) = SimState::batch(&g, q.clone());
        assert_eq!(sssp.distances(), s.distances(), "month {month}");
        assert_eq!(cc.components(), c.components(), "month {month}");
        assert_eq!(sim.relation(), m.relation(), "month {month}");
    }
}

#[test]
fn bc_tracks_batch_across_rounds() {
    let g0 = Dataset::Orkut.graph(false, 0.06);
    let (mut bc, _) = incgraph::algos::BcState::batch(&g0);
    let mut g = g0.clone();
    for round in 0..8u64 {
        let batch = random_batch(&g, g.size() / 200, 0.5, 1, 0xBC0 + round);
        let applied = batch.apply(&mut g);
        bc.update(&g, &applied);
        let (fresh, _) = incgraph::algos::BcState::batch(&g);
        assert_eq!(
            bc.articulation_points(&g),
            fresh.articulation_points(&g),
            "articulation points round {round}"
        );
        assert_eq!(bc.bridges(&g), fresh.bridges(&g), "bridges round {round}");
        for v in 0..g.node_count() as u32 {
            assert_eq!(bc.low(v), fresh.low(v), "low_{v} round {round}");
        }
    }
}

#[test]
fn reach_tracks_batch_across_rounds() {
    let g0 = Dataset::DbPedia.graph(true, 0.08);
    let src = sample_sources(&g0, 1, 9)[0];
    let (mut reach, _) = incgraph::algos::ReachState::batch(&g0, src);
    let mut g = g0.clone();
    for round in 0..10u64 {
        let batch = random_batch(&g, g.size() / 100, 0.5, 100, 0x4EAC + round);
        let applied = batch.apply(&mut g);
        reach.update(&g, &applied);
        let (fresh, _) = incgraph::algos::ReachState::batch(&g, src);
        assert_eq!(reach.reached(), fresh.reached(), "round {round}");
    }
}
