//! Property-based tests (proptest): for *arbitrary* graphs and
//! *arbitrary* update batches, the paper's correctness equation holds for
//! every deduced incremental algorithm, every fallback strategy, and
//! every baseline; and the C2 lattice laws hold for the contracting
//! specs.

use incgraph::algos::cc::CcSpec;
use incgraph::algos::sim::SimSpec;
use incgraph::algos::sssp::SsspSpec;
use incgraph::algos::{CcState, DfsState, LccState, SimState, SsspState};
use incgraph::baselines::dyndfs::is_valid_dfs_forest;
use incgraph::baselines::{DynCc, DynDfs, DynDij, DynLcc, IncMatch, RrSssp};
use incgraph::core::lattice::{check_monotone_at, is_feasible};
use incgraph::core::Status;
use incgraph::graph::{DynamicGraph, Pattern, Update, UpdateBatch};
use proptest::prelude::*;

const N: u32 = 24;

/// Strategy: a random directed labeled graph on N nodes.
fn arb_graph(directed: bool) -> impl Strategy<Value = DynamicGraph> {
    (
        proptest::collection::vec(0u32..3, N as usize),
        proptest::collection::vec((0..N, 0..N, 1u32..8), 0..80),
    )
        .prop_map(move |(labels, edges)| {
            let mut g = DynamicGraph::with_labels(directed, labels);
            for (u, v, w) in edges {
                if u != v {
                    g.insert_edge(u, v, w);
                }
            }
            g
        })
}

/// Strategy: a random update batch (insertions and deletions, possibly
/// redundant — the apply layer must tolerate both).
fn arb_batch() -> impl Strategy<Value = UpdateBatch> {
    proptest::collection::vec(
        prop_oneof![
            (0..N, 0..N, 1u32..8).prop_map(|(u, v, w)| Update::Insert {
                src: u,
                dst: v,
                weight: w
            }),
            (0..N, 0..N).prop_map(|(u, v)| Update::Delete { src: u, dst: v }),
        ],
        0..40,
    )
    .prop_map(UpdateBatch::from_updates)
}

fn tri_pattern() -> Pattern {
    Pattern::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 1)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sssp_correctness_equation(g0 in arb_graph(true), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut inc, _) = SsspState::batch(&g0, 0);
        let (mut pe, _) = SsspState::batch(&g0, 0);
        let mut dd = DynDij::new(&g0, 0);
        let mut rr = RrSssp::new(&g0, 0);
        let mut g = g0.clone();
        for batch in &batches {
            // RR consumes units with the graph state at each unit.
            let mut gr = g.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut gr);
                for op in applied.ops() {
                    rr.apply_unit(&gr, op.inserted, op.src, op.dst, op.weight);
                }
            }
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            pe.update_pe_reset(&g, &applied);
            dd.apply_batch(&g, &applied);
            let (fresh, _) = SsspState::batch(&g, 0);
            prop_assert_eq!(inc.distances(), fresh.distances());
            prop_assert_eq!(pe.distances(), fresh.distances());
            prop_assert_eq!(dd.distances(), fresh.distances());
            prop_assert_eq!(rr.distances(), fresh.distances());
        }
    }

    #[test]
    fn cc_correctness_equation(g0 in arb_graph(false), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut inc, _) = CcState::batch(&g0);
        let (mut pe, _) = CcState::batch(&g0);
        let mut hdt = DynCc::new(&g0);
        let mut g = g0.clone();
        for batch in &batches {
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            pe.update_pe_reset(&g, &applied);
            hdt.apply_batch(&applied);
            let (fresh, _) = CcState::batch(&g);
            prop_assert_eq!(inc.components(), fresh.components());
            prop_assert_eq!(pe.components(), fresh.components());
            prop_assert_eq!(&hdt.components()[..], fresh.components());
        }
    }

    #[test]
    fn sim_correctness_equation(g0 in arb_graph(true), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let q = tri_pattern();
        let (mut inc, _) = SimState::batch(&g0, q.clone());
        let (mut pe, _) = SimState::batch(&g0, q.clone());
        let mut im = IncMatch::new(&g0, q.clone());
        let mut g = g0.clone();
        for batch in &batches {
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            pe.update_pe_reset(&g, &applied);
            im.apply_batch(&g, &applied);
            let (fresh, _) = SimState::batch(&g, q.clone());
            prop_assert_eq!(inc.relation(), fresh.relation());
            prop_assert_eq!(pe.relation(), fresh.relation());
            prop_assert_eq!(im.match_count(), fresh.match_count());
        }
    }

    #[test]
    fn dfs_correctness_equation(g0 in arb_graph(true), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut inc, _) = DfsState::batch(&g0);
        let mut dyn_dfs = DynDfs::new(&g0);
        let mut g = g0.clone();
        for batch in &batches {
            let mut gu = g.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut gu);
                for op in applied.ops() {
                    dyn_dfs.apply_unit(&gu, op.inserted, op.src, op.dst);
                }
            }
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            let (fresh, _) = DfsState::batch(&g);
            for v in 0..N {
                prop_assert_eq!(inc.first(v), fresh.first(v));
                prop_assert_eq!(inc.last(v), fresh.last(v));
                prop_assert_eq!(inc.parent(v), fresh.parent(v));
            }
            prop_assert!(is_valid_dfs_forest(&g, &dyn_dfs).is_ok());
        }
    }

    #[test]
    fn lcc_correctness_equation(g0 in arb_graph(false), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut inc, _) = LccState::batch(&g0);
        let mut stream = DynLcc::new(&g0);
        let mut g = g0.clone();
        for batch in &batches {
            let mut gu = g.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut gu);
                for op in applied.ops() {
                    stream.apply_unit(&gu, op.inserted, op.src, op.dst, op.weight);
                }
            }
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            let (fresh, _) = LccState::batch(&g);
            for v in 0..N {
                prop_assert_eq!(inc.degree(v), fresh.degree(v));
                prop_assert_eq!(inc.triangles(v), fresh.triangles(v));
                prop_assert_eq!(stream.triangles(v), fresh.triangles(v));
            }
        }
    }

    #[test]
    fn monotonicity_laws_hold(g in arb_graph(true), lo_vals in proptest::collection::vec(0u64..20, N as usize), bumps in proptest::collection::vec(0u64..10, N as usize)) {
        // SSSP: eval is monotone w.r.t. pointwise ≤ on any input pair.
        let spec = SsspSpec::new(&g, 0);
        let lo = Status::from_values(lo_vals.clone());
        let hi = Status::from_values(
            lo_vals.iter().zip(&bumps).map(|(a, b)| a + b).collect(),
        );
        for x in 0..N as usize {
            prop_assert_eq!(check_monotone_at(&spec, x, &lo, &hi), Some(true));
        }
    }

    #[test]
    fn cc_monotonicity_and_feasibility(g in arb_graph(false), lo_vals in proptest::collection::vec(0u32..24, N as usize), bumps in proptest::collection::vec(0u32..8, N as usize)) {
        let spec = CcSpec::new(&g);
        let lo = Status::from_values(lo_vals.clone());
        let hi = Status::from_values(
            lo_vals.iter().zip(&bumps).map(|(a, b)| (a + b).min(N - 1)).collect(),
        );
        for x in 0..N as usize {
            prop_assert_eq!(check_monotone_at(&spec, x, &lo, &hi), Some(true));
        }
        // Every intermediate status of a batch run is feasible.
        let (state, _) = CcState::batch(&g);
        let final_status = Status::from_values(state.components().to_vec());
        prop_assert!(is_feasible(&spec, &final_status, &final_status));
    }

    #[test]
    fn sim_monotonicity(g in arb_graph(true), flips in proptest::collection::vec(any::<bool>(), 3 * N as usize)) {
        let q = tri_pattern();
        let spec = SimSpec::new(&g, &q);
        // lo = all false; hi = arbitrary: any false ⪯ arbitrary pair.
        let lo = Status::from_values(vec![false; 3 * N as usize]);
        let hi = Status::from_values(flips);
        for x in 0..3 * N as usize {
            prop_assert_eq!(check_monotone_at(&spec, x, &lo, &hi), Some(true));
        }
    }

    #[test]
    fn graph_apply_invert_roundtrip(g0 in arb_graph(true), batch in arb_batch()) {
        let mut g = g0.clone();
        let applied = batch.apply(&mut g);
        applied.invert().apply(&mut g);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g0.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bc_correctness_equation(g0 in arb_graph(false), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut inc, _) = incgraph::algos::BcState::batch(&g0);
        let mut g = g0.clone();
        for batch in &batches {
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            let (fresh, _) = incgraph::algos::BcState::batch(&g);
            prop_assert_eq!(inc.articulation_points(&g), fresh.articulation_points(&g));
            prop_assert_eq!(inc.bridges(&g), fresh.bridges(&g));
            for v in 0..N {
                prop_assert_eq!(inc.low(v), fresh.low(v));
            }
        }
    }

    #[test]
    fn reach_correctness_equation(g0 in arb_graph(true), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut inc, _) = incgraph::algos::ReachState::batch(&g0, 0);
        let mut g = g0.clone();
        for batch in &batches {
            let applied = batch.apply(&mut g);
            inc.update(&g, &applied);
            let (fresh, _) = incgraph::algos::ReachState::batch(&g, 0);
            prop_assert_eq!(inc.reached(), fresh.reached());
        }
    }
}
