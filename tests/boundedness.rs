//! Empirical relative-boundedness (the paper's Theorem 3 claim): the
//! scope `H⁰` produced by the bounded initial scope function is contained
//! in the affected area `AFF`, and localized updates inspect a vanishing
//! fraction of large graphs.
//!
//! `AFF` is approximated from first principles per the paper's proof
//! sketch: a variable is in `AFF` iff (i) its value differs between the
//! two batch fixpoints, or (ii) its update function's input set evolved
//! under `ΔG`.

use incgraph::algos::{CcState, LccState, SimState, SsspState};
use incgraph::graph::{DynamicGraph, UpdateBatch};
use incgraph::workloads::{random_batch, random_pattern, sample_sources, Dataset};
use std::collections::HashSet;

/// AFF over node-indexed variables: value diff ∪ evolved input sets.
fn aff_nodes<V: PartialEq>(
    old: &[V],
    new: &[V],
    applied: &incgraph::graph::AppliedBatch,
    heads_only: bool,
    directed: bool,
) -> HashSet<usize> {
    let mut aff: HashSet<usize> = (0..old.len()).filter(|&i| old[i] != new[i]).collect();
    for op in applied.ops() {
        aff.insert(op.dst as usize);
        if !heads_only || !directed {
            aff.insert(op.src as usize);
        }
    }
    aff
}

#[test]
fn sssp_scope_is_contained_in_aff() {
    let g0 = Dataset::Friendster.graph(true, 0.08);
    let src = sample_sources(&g0, 1, 2)[0];
    let (mut state, _) = SsspState::batch(&g0, src);
    let old = state.distances().to_vec();
    let mut g = g0.clone();
    let batch = random_batch(&g, g.size() / 100, 0.5, 100, 11);
    let applied = batch.apply(&mut g);
    let report = state.update(&g, &applied);
    let (fresh, _) = SsspState::batch(&g, src);
    let aff = aff_nodes(&old, fresh.distances(), &applied, true, true);
    // H⁰ ⊆ AFF (condition C1): the report's scope size is bounded by
    // |AFF|; inspected variables stay within AFF plus its one-step
    // dependents (the variables the step function must *check*).
    assert!(
        report.scope_size <= aff.len(),
        "scope {} exceeds |AFF| {}",
        report.scope_size,
        aff.len()
    );
}

#[test]
fn cc_scope_is_contained_in_aff() {
    let g0 = Dataset::Orkut.graph(false, 0.08);
    let (mut state, _) = CcState::batch(&g0);
    let old = state.components().to_vec();
    let mut g = g0.clone();
    let batch = random_batch(&g, g.size() / 100, 0.5, 1, 13);
    let applied = batch.apply(&mut g);
    let report = state.update(&g, &applied);
    let (fresh, _) = CcState::batch(&g);
    let aff = aff_nodes(&old, fresh.components(), &applied, false, false);
    assert!(
        report.scope_size <= aff.len(),
        "scope {} exceeds |AFF| {}",
        report.scope_size,
        aff.len()
    );
}

#[test]
fn localized_updates_inspect_a_vanishing_fraction() {
    // One unit update on a large graph: every deduced algorithm must
    // inspect a tiny fraction of its status variables.
    let gd = Dataset::Twitter.graph(true, 0.25);
    let gu = Dataset::Twitter.graph(false, 0.25);
    let src = sample_sources(&gd, 1, 4)[0];

    let (mut sssp, _) = SsspState::batch(&gd, src);
    let mut g = gd.clone();
    let mut b = UpdateBatch::new();
    let far = (gd.node_count() - 1) as u32;
    b.insert(7, far, 50);
    let applied = b.apply(&mut g);
    let r = sssp.update(&g, &applied);
    assert!(
        r.aff_fraction() < 0.05,
        "SSSP inspected {:.1}%",
        100.0 * r.aff_fraction()
    );

    let (mut cc, _) = CcState::batch(&gu);
    let mut g = gu.clone();
    let mut b = UpdateBatch::new();
    b.delete(g.out_neighbors(0)[0].0, 0);
    let applied = b.apply(&mut g);
    let r = cc.update(&g, &applied);
    assert!(
        r.aff_fraction() < 0.05,
        "CC inspected {:.1}%",
        100.0 * r.aff_fraction()
    );

    let q = random_pattern(&gd, 4, 6, 5);
    let (mut sim, _) = SimState::batch(&gd, q);
    let mut g = gd.clone();
    let mut b = UpdateBatch::new();
    b.insert(3, (g.node_count() / 2) as u32, 1);
    let applied = b.apply(&mut g);
    let r = sim.update(&g, &applied);
    assert!(
        r.aff_fraction() < 0.05,
        "Sim inspected {:.1}%",
        100.0 * r.aff_fraction()
    );

    let (mut lcc, _) = LccState::batch(&gu);
    let mut g = gu.clone();
    let mut b = UpdateBatch::new();
    b.insert(5, (g.node_count() / 3) as u32, 1);
    let applied = b.apply(&mut g);
    let r = lcc.update(&g, &applied);
    assert!(
        r.aff_fraction() < 0.05,
        "LCC inspected {:.1}%",
        100.0 * r.aff_fraction()
    );
}

#[test]
fn bounded_beats_pe_reset_on_inspection() {
    // The Theorem 3 vs Theorem 1 contrast, quantified: on a deletion
    // inside a stable component, the bounded scope inspects a tiny set
    // while the PE flood covers the component.
    let mut g = DynamicGraph::new(false, 2000);
    for i in 0..1999u32 {
        g.insert_edge(i, i + 1, 1);
    }
    g.insert_edge(500, 1500, 1); // chord keeps the component whole
    let (mut bounded, _) = CcState::batch(&g);
    let (mut pe, _) = CcState::batch(&g);
    let mut b = UpdateBatch::new();
    b.delete(1000, 1001);
    let applied = b.apply(&mut g);
    let rb = bounded.update(&g, &applied);
    let rp = pe.update_pe_reset(&g, &applied);
    assert_eq!(bounded.components(), pe.components());
    assert!(
        rb.inspected_vars * 3 < rp.inspected_vars,
        "bounded {} vs PE {}",
        rb.inspected_vars,
        rp.inspected_vars
    );
}

#[test]
fn scope_share_is_reported() {
    // Exp-2(2d): the scope function's share of incremental work is a
    // well-defined fraction in [0, 1].
    let g0 = Dataset::WikiDe.graph(true, 0.1);
    let src = sample_sources(&g0, 1, 6)[0];
    let (mut state, _) = SsspState::batch(&g0, src);
    let mut g = g0.clone();
    let batch = random_batch(&g, 200, 0.5, 100, 21);
    let applied = batch.apply(&mut g);
    let r = state.update(&g, &applied);
    assert!((0.0..=1.0).contains(&r.scope_share()));
}
