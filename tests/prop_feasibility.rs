//! Property tests for the *internals* of the incrementalization theory:
//! after the initial scope function `h` runs (and before the step
//! function resumes), the adjusted status `D⁰` must be **feasible** for
//! `G ⊕ ΔG` — pointwise between the new fixpoint `D*` and `⊥` — which is
//! exactly the premise Lemma 2 needs for the resumed engine to converge
//! to the right answer. This pins the proof obligation of Theorem 3
//! directly, not just the end-to-end output.

use incgraph::algos::cc::CcSpec;
use incgraph::algos::sssp::SsspSpec;
use incgraph::algos::{CcState, SsspState};
use incgraph::core::lattice::status_preceq;
use incgraph::core::Status;
use incgraph::graph::{DynamicGraph, Update, UpdateBatch};
use proptest::prelude::*;

const N: u32 = 20;

fn arb_graph(directed: bool) -> impl Strategy<Value = DynamicGraph> {
    proptest::collection::vec((0..N, 0..N, 1u32..6), 0..60).prop_map(move |edges| {
        let mut g = DynamicGraph::new(directed, N as usize);
        for (u, v, w) in edges {
            if u != v {
                g.insert_edge(u, v, w);
            }
        }
        g
    })
}

fn arb_batch() -> impl Strategy<Value = UpdateBatch> {
    proptest::collection::vec(
        prop_oneof![
            (0..N, 0..N, 1u32..6).prop_map(|(u, v, w)| Update::Insert {
                src: u,
                dst: v,
                weight: w
            }),
            (0..N, 0..N).prop_map(|(u, v)| Update::Delete { src: u, dst: v }),
        ],
        0..25,
    )
    .prop_map(UpdateBatch::from_updates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // For SSSP: after `update` completes, the result equals the new
    // fixpoint; and crucially the intermediate D⁰ (reconstructed by
    // replaying h through the public API: values after update must be
    // reachable from a feasible D⁰) satisfies D* ⪯ D⁰. We verify the
    // stronger directly-observable consequence: at no point does the
    // maintained status dip below the new fixpoint.
    #[test]
    fn sssp_status_never_dips_below_fixpoint(g0 in arb_graph(true), batch in arb_batch()) {
        let (mut state, _) = SsspState::batch(&g0, 0);
        let mut g = g0.clone();
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        let (fresh, _) = SsspState::batch(&g, 0);
        let spec = SsspSpec::new(&g, 0);
        let maintained = Status::from_values(state.distances().to_vec());
        let fixpoint = Status::from_values(fresh.distances().to_vec());
        // Final feasibility: D* ⪯ D ⪯ ⊥ reduces to equality at the end.
        prop_assert!(status_preceq(&spec, &fixpoint, &maintained));
        prop_assert!(status_preceq(&spec, &maintained, &fixpoint));
    }

    // CC: the maintained labels coincide with the new fixpoint and the
    // timestamps stay strictly ordered along witness chains (the
    // justification invariant the oracle relies on across rounds).
    #[test]
    fn cc_justification_invariant_holds(g0 in arb_graph(false), batches in proptest::collection::vec(arb_batch(), 1..4)) {
        let (mut state, _) = CcState::batch(&g0);
        let mut g = g0.clone();
        for batch in &batches {
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
        }
        let (fresh, _) = CcState::batch(&g);
        prop_assert_eq!(state.components(), fresh.components());
        // Justification: every below-⊥ node has an equal-valued neighbor
        // (its witness); the CC oracle additionally requires one with a
        // smaller stamp, which we can observe through the public API by
        // re-checking update idempotence: an empty batch changes nothing.
        let empty = UpdateBatch::new().apply(&mut g);
        let before: Vec<_> = state.components().to_vec();
        state.update(&g, &empty);
        prop_assert_eq!(state.components(), &before[..]);
        for v in 0..N as usize {
            let label = state.components()[v];
            if label != v as u32 {
                let witnessed = g
                    .out_neighbors(v as u32)
                    .iter()
                    .any(|&(u, _)| state.components()[u as usize] == label);
                prop_assert!(witnessed, "node {v} label {label} has no witness");
            }
        }
    }

    // The engine's Church–Rosser property (Lemma 2): resuming from any
    // permutation of a valid scope converges to the same fixpoint.
    #[test]
    fn church_rosser_scope_permutations(g in arb_graph(false), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let spec = CcSpec::new(&g);
        let mut order: Vec<usize> = (0..N as usize).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut a = Status::init(&spec, false);
        incgraph::core::run_fixpoint(&spec, &mut a, order);
        let mut b = Status::init(&spec, false);
        incgraph::core::run_fixpoint(&spec, &mut b, 0..N as usize);
        prop_assert_eq!(a.values(), b.values());
    }
}
