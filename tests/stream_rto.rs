//! Recovery-time-objective oracle for the sustained-stream harness
//! (PR 8): kill the store mid-replay at **every** injectable crash
//! point, recover, and demand
//!
//! 1. every acked flush is applied exactly once after recovery — the
//!    WAL audit (`incgraph_oracle::walcheck`) runs inside the harness
//!    after the recovery *and* at end of run, and the harness errors
//!    (`StreamError::Audit`) if either fails;
//! 2. the final store digest is byte-identical to an uninterrupted run
//!    of the same virtual-time schedule — recovery is *verifiable*,
//!    not just plausible;
//! 3. an RTO was actually measured and recorded (the crash fired), and
//!    recovery replayed only a checkpoint-bounded WAL suffix.
//!
//! One `#[test]` because the harness's `registry: None` path owns the
//! process-global obs recorder.

use incgraph_bench::stream::{run_stream, StreamConfig, StreamCrash};
use incgraph_durable::CrashPoint;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("incgraph-streamrto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(store: PathBuf) -> StreamConfig {
    let mut cfg = StreamConfig::new(store);
    cfg.scale = 0.05;
    cfg.virtual_time = true;
    cfg.flush_ops = 16;
    // Tight cadence so the checkpoint-path crash points (mid-checkpoint,
    // post-rename) fire soon after arming, and so recovery replays a
    // short, checkpoint-bounded WAL suffix.
    cfg.checkpoint_every = Some(2);
    cfg
}

#[test]
fn kill_at_every_crash_point_recovers_exactly_once() {
    let clean_dir = scratch("clean");
    let clean = run_stream(&cfg(clean_dir.clone()), None).expect("clean run");
    let _ = std::fs::remove_dir_all(&clean_dir);
    assert!(clean.rto_ms.is_none());
    assert_eq!(clean.committed_unacked, 0);

    for point in CrashPoint::ALL {
        let dir = scratch(point.name());
        let mut c = cfg(dir.clone());
        c.crash = Some(StreamCrash {
            point,
            at_frac: 0.5,
        });
        let crashed =
            run_stream(&c, None).unwrap_or_else(|e| panic!("{}: stream failed: {e}", point.name()));
        let _ = std::fs::remove_dir_all(&dir);

        // The kill fired and recovery was measured.
        let rto = crashed
            .rto_ms
            .unwrap_or_else(|| panic!("{}: crash never fired", point.name()));
        assert!(rto > 0.0, "{}: RTO must be positive", point.name());
        assert_eq!(crashed.crash_point.as_deref(), Some(point.name()));

        // Checkpoint-bounded recovery: the WAL suffix replayed is capped
        // by the checkpoint cadence, not the stream length.
        let replayed = crashed
            .recovered_replayed
            .unwrap_or_else(|| panic!("{}: no recovery report", point.name()));
        assert!(
            replayed <= 2,
            "{}: replayed {replayed} records despite checkpoint_every=2",
            point.name()
        );

        // Exactly-once held (the in-harness audits passed — the run
        // would have errored otherwise) and the stranded in-flight tail
        // is at most the single flush a kill can orphan.
        assert!(
            crashed.committed_unacked <= 1,
            "{}: {} committed-unacked records",
            point.name(),
            crashed.committed_unacked
        );

        // The recovered world converges to the uninterrupted one.
        assert_eq!(crashed.ops_total, clean.ops_total, "{}", point.name());
        assert_eq!(crashed.batches, clean.batches, "{}", point.name());
        assert_eq!(
            crashed.digest,
            clean.digest,
            "{}: kill+recover must be value-identical to the clean run",
            point.name()
        );
    }
}
