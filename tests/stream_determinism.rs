//! Virtual-time determinism oracle for the sustained-stream harness
//! (PR 8 tentpole invariant): with `--virtual-time`, the same seed, the
//! same rate, and the same flush policy must produce a **byte-identical
//! final store digest** and identical accounting — the flush partition
//! is a pure function of `(arrivals, policy)` when processing takes
//! zero virtual time, and the engine under it is deterministic.
//!
//! Everything lives in one `#[test]` on purpose: the obs recorder is
//! process-global, and the `registry: None` path (the one the CLI uses
//! without `--metrics`) installs/uninstalls it — parallel tests would
//! race. Within the single test, latencies are deliberately *excluded*
//! from the determinism assertions (they are wall-clock even in virtual
//! mode); digests, op counts, flush partitions, miss counts, and
//! coalescing totals are the deterministic surface.

use incgraph_bench::stream::{run_stream, StreamConfig, StreamReport};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("incgraph-streamdet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn virtual_cfg(store: PathBuf, seed: u64, rate: f64, flush_ops: usize) -> StreamConfig {
    let mut cfg = StreamConfig::new(store);
    cfg.scale = 0.05;
    cfg.virtual_time = true;
    cfg.seed = seed;
    cfg.rate_ops_s = rate;
    cfg.flush_ops = flush_ops;
    cfg.checkpoint_every = Some(8);
    cfg
}

fn run(tag: &str, seed: u64, rate: f64, flush_ops: usize) -> StreamReport {
    let dir = scratch(tag);
    // `None`: exercise the real local-registry install/uninstall path,
    // so the reported per-class histograms are live too.
    let report = run_stream(&virtual_cfg(dir.clone(), seed, rate, flush_ops), None)
        .expect("virtual stream replay must succeed");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[test]
fn same_seed_and_schedule_is_byte_identical() {
    let a = run("a1", 7, 20_000.0, 16);
    let b = run("a2", 7, 20_000.0, 16);

    // The tentpole invariant: same seed + same schedule ⇒ identical
    // final store digest.
    assert_eq!(a.digest, b.digest, "virtual-time digests must match");

    // And identical accounting, field by field.
    assert_eq!(a.ops_total, b.ops_total);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.coalesced_ops, b.coalesced_ops);
    assert_eq!(a.deadline_misses, b.deadline_misses);
    assert_eq!(a.miss_rate, b.miss_rate);
    assert_eq!(a.backpressure_events, 0, "virtual mode never backpressures");
    assert_eq!(b.backpressure_events, 0);

    // The run was substantive: several flushes, all seven classes
    // standing (undirected base), every op observed by every class.
    assert!(
        a.batches >= 4,
        "want a multi-flush partition, got {}",
        a.batches
    );
    assert_eq!(a.classes.len(), 7);
    for c in &a.classes {
        assert_eq!(
            c.updates, a.ops_total as u64,
            "{}: every op must be observed by the standing query",
            c.class
        );
    }

    // A different flush policy changes the partition (so the
    // accounting gate has teeth) but never the final store: the same
    // ops flow through, just batched differently.
    let c = run("a3", 7, 20_000.0, 64);
    assert_eq!(c.ops_total, a.ops_total);
    assert_ne!(c.batches, a.batches, "coarser flushes ⇒ fewer batches");
    assert_eq!(
        c.digest, a.digest,
        "the final store is schedule-partition independent"
    );

    // A different workload seed changes the standing queries (the sim
    // pattern is seeded), hence the digest.
    let d = run("a4", 8, 20_000.0, 16);
    assert_ne!(d.digest, a.digest, "seed must reach the digest");

    // A different rate rescales the arrival schedule; op totals are
    // workload-determined and unchanged.
    let e = run("a5", 7, 5_000.0, 16);
    assert_eq!(e.ops_total, a.ops_total);
    assert_eq!(e.digest, a.digest);
}
