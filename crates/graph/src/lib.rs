//! Dynamic labeled graph substrate for incrementalized graph algorithms.
//!
//! This crate provides everything below the fixpoint framework of
//! `incgraph-core`: a mutable adjacency-list graph ([`DynamicGraph`])
//! supporting edge insertions and deletions, batched updates with effective
//! op recording and inversion ([`UpdateBatch`], [`AppliedBatch`]), pattern
//! graphs for graph simulation ([`Pattern`]), and synthetic graph
//! generators ([`gen`]) used as laptop-scale stand-ins for the real-life
//! datasets of the paper (LiveJournal, Orkut, Twitter, Friendster,
//! DBPedia, Wiki-DE).
//!
//! Graphs are `G = (V, E, L)`: nodes carry a [`Label`], edges carry a
//! [`Weight`] (interpreted as a length by SSSP and ignored elsewhere).
//! Both directed and undirected graphs are supported by a single type;
//! undirected edges are mirrored into both incident adjacency lists.

pub mod csr;
pub mod gen;
pub mod ids;
pub mod io;
pub mod overlay;
pub mod pattern;
pub mod rng;
pub mod store;
pub mod update;
pub mod view;

pub use csr::CsrSnapshot;
pub use ids::{Label, NodeId, Weight};
pub use overlay::CsrOverlay;
pub use pattern::Pattern;
pub use store::DynamicGraph;
pub use update::{AppliedBatch, AppliedOp, BatchError, Update, UpdateBatch};
pub use view::GraphView;
