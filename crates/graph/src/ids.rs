//! Identifier and scalar types shared across the workspace.

/// Node identifier: a dense index into the graph's node arrays.
///
/// Nodes are identified by `u32` to halve the memory footprint of
/// adjacency lists relative to `usize` (per the perf-book guidance on
/// smaller integers); graphs of up to ~4.2 billion nodes are addressable,
/// far beyond the laptop-scale stand-ins used here.
pub type NodeId = u32;

/// Node (and pattern-node) label, as in property graphs / social networks.
pub type Label = u32;

/// Edge weight; interpreted as a non-negative length by SSSP and ignored
/// by CC, Sim, DFS and LCC.
pub type Weight = u32;

/// Shortest-path distances accumulate weights and therefore use a wider
/// type; [`INF_DIST`] is the "unreachable" sentinel (the `x⊥ = ∞` initial
/// value in the paper's fixpoint model for SSSP).
pub type Dist = u64;

/// Infinite distance: the initial (`⊥`) value of every SSSP status
/// variable except the source.
pub const INF_DIST: Dist = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_dist_saturates_additions() {
        // Algorithms guard against overflow by checking for INF before
        // adding; this test documents that INF + w would wrap if unchecked.
        assert_eq!(INF_DIST, u64::MAX);
        assert!(INF_DIST.checked_add(1).is_none());
    }
}
