//! Read-only graph access, abstracted over storage layout.
//!
//! The step functions and specs only ever *read* a graph: labels, sorted
//! adjacency slices, degrees. [`GraphView`] captures exactly that
//! surface, so an algorithm can be specified once and run over the
//! pointer-per-row [`DynamicGraph`] (the update-stream substrate), a flat
//! [`CsrSnapshot`] (batch scans), or a [`CsrOverlay`](crate::overlay::CsrOverlay)
//! (a snapshot plus a small ΔG patch). `Sync` is a supertrait because the
//! parallel engine shares the view across worker threads.

use crate::csr::CsrSnapshot;
use crate::ids::{Label, NodeId, Weight};
use crate::store::DynamicGraph;

/// Read-only view of a labeled, weighted graph with sorted adjacency.
///
/// Implementations must return neighbor slices **sorted by neighbor id**
/// (the invariant every storage type in this crate maintains); the
/// default `edge_weight` binary-searches under that assumption.
pub trait GraphView: Sync {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Whether edges are directed.
    fn is_directed(&self) -> bool;

    /// Label of node `v`.
    fn label(&self, v: NodeId) -> Label;

    /// Outgoing neighbors of `v` as `(target, weight)`, sorted by target.
    /// For undirected graphs this is the full neighbor set.
    fn out_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)];

    /// Incoming neighbors of `v` as `(source, weight)`, sorted by source.
    /// For undirected graphs this is the same set as
    /// [`out_neighbors`](Self::out_neighbors).
    fn in_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)];

    /// Out-degree of `v`.
    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Degree of `v` in an undirected graph.
    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        debug_assert!(!self.is_directed(), "degree() is for undirected graphs");
        self.out_neighbors(v).len()
    }

    /// Weight of edge `(u, v)`, if present (`O(log d)` binary search).
    fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let adj = self.out_neighbors(u);
        adj.binary_search_by_key(&v, |&(t, _)| t)
            .ok()
            .map(|i| adj[i].1)
    }

    /// Whether edge `(u, v)` exists.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }
}

impl GraphView for DynamicGraph {
    fn node_count(&self) -> usize {
        DynamicGraph::node_count(self)
    }
    fn is_directed(&self) -> bool {
        DynamicGraph::is_directed(self)
    }
    fn label(&self, v: NodeId) -> Label {
        DynamicGraph::label(self, v)
    }
    fn out_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        DynamicGraph::out_neighbors(self, v)
    }
    fn in_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        DynamicGraph::in_neighbors(self, v)
    }
    fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        DynamicGraph::edge_weight(self, u, v)
    }
}

impl GraphView for CsrSnapshot {
    fn node_count(&self) -> usize {
        CsrSnapshot::node_count(self)
    }
    fn is_directed(&self) -> bool {
        CsrSnapshot::is_directed(self)
    }
    fn label(&self, v: NodeId) -> Label {
        CsrSnapshot::label(self, v)
    }
    fn out_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        CsrSnapshot::out_neighbors(self, v)
    }
    fn in_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        CsrSnapshot::in_neighbors(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercise a view only through the trait, so both storage types are
    /// checked against the same contract.
    fn digest<G: GraphView>(g: &G) -> (usize, usize, Vec<Vec<(NodeId, Weight)>>) {
        let n = g.node_count();
        let arcs = (0..n as NodeId).map(|v| g.out_degree(v)).sum();
        let rows = (0..n as NodeId)
            .map(|v| {
                let mut row = g.out_neighbors(v).to_vec();
                row.extend_from_slice(g.in_neighbors(v));
                row
            })
            .collect();
        (n, arcs, rows)
    }

    #[test]
    fn dynamic_and_csr_views_agree() {
        let g = crate::gen::uniform(120, 600, true, 8, 3, 11);
        let csr = CsrSnapshot::new(&g);
        assert_eq!(digest(&g), digest(&csr));
        for v in 0..120u32 {
            assert_eq!(GraphView::label(&g, v), GraphView::label(&csr, v));
        }
    }

    #[test]
    fn default_edge_weight_binary_search() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 3, 7);
        g.insert_edge(0, 1, 2);
        let csr = CsrSnapshot::new(&g);
        assert_eq!(GraphView::edge_weight(&csr, 0, 3), Some(7));
        assert_eq!(GraphView::edge_weight(&csr, 0, 2), None);
        assert!(GraphView::has_edge(&csr, 0, 1));
    }
}
