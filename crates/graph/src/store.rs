//! Mutable adjacency-list graph storage.
//!
//! [`DynamicGraph`] is the substrate every batch and incremental algorithm
//! in this workspace runs on. It is designed for the workload mix of the
//! paper's experiments: full scans (batch algorithms), point updates
//! (`ΔG` edge insertions/deletions), and neighbor iteration (step
//! functions). Adjacency lists are kept **sorted by target id** so that
//! `has_edge`/`edge_weight` are `O(log d)` binary searches and point
//! updates are `O(d)` insertions, while neighbor iteration stays a cache
//! friendly slice scan.

use crate::ids::{Label, NodeId, Weight};

/// A mutable, labeled, weighted graph, directed or undirected.
///
/// Undirected edges are mirrored into both endpoints' adjacency lists but
/// counted once by [`edge_count`](Self::edge_count). Parallel edges are not
/// representable: inserting an existing edge is a no-op (returns `false`),
/// matching the simple-graph model of the paper.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    directed: bool,
    labels: Vec<Label>,
    /// Outgoing adjacency, sorted by target id. For undirected graphs this
    /// holds the full neighbor set.
    out: Vec<Vec<(NodeId, Weight)>>,
    /// Incoming adjacency (directed graphs only), sorted by source id.
    inn: Vec<Vec<(NodeId, Weight)>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Creates a graph with `n` nodes, all labeled `0`, and no edges.
    pub fn new(directed: bool, n: usize) -> Self {
        Self::with_labels(directed, vec![0; n])
    }

    /// Creates a graph whose `i`-th node carries `labels[i]`.
    pub fn with_labels(directed: bool, labels: Vec<Label>) -> Self {
        let n = labels.len();
        DynamicGraph {
            directed,
            labels,
            out: vec![Vec::new(); n],
            inn: if directed {
                vec![Vec::new(); n]
            } else {
                Vec::new()
            },
            num_edges: 0,
        }
    }

    /// Whether edges are directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges (each undirected edge counted once).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// `|G| = |V| + |E|`, the graph size measure used throughout the
    /// paper's experiments (e.g. `|ΔG| = 1%|G|`).
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.labels.len() as NodeId
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// Sets the label of node `v`.
    pub fn set_label(&mut self, v: NodeId, l: Label) {
        self.labels[v as usize] = l;
    }

    /// Adds an isolated node and returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        self.out.push(Vec::new());
        if self.directed {
            self.inn.push(Vec::new());
        }
        id
    }

    /// Outgoing neighbors of `v` as `(target, weight)`, sorted by target.
    /// For undirected graphs this is the full neighbor set.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        &self.out[v as usize]
    }

    /// Incoming neighbors of `v` as `(source, weight)`, sorted by source.
    /// For undirected graphs this is the same slice as
    /// [`out_neighbors`](Self::out_neighbors).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        if self.directed {
            &self.inn[v as usize]
        } else {
            &self.out[v as usize]
        }
    }

    /// Out-degree of `v` (degree, for undirected graphs).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v as usize].len()
    }

    /// In-degree of `v` (degree, for undirected graphs).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Degree of `v` in an undirected graph. Panics in debug builds if the
    /// graph is directed (use `out_degree`/`in_degree` there).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        debug_assert!(!self.directed, "degree() is for undirected graphs");
        self.out[v as usize].len()
    }

    /// Whether edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Weight of edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let adj = &self.out[u as usize];
        adj.binary_search_by_key(&v, |&(t, _)| t)
            .ok()
            .map(|i| adj[i].1)
    }

    /// Inserts edge `(u, v)` with weight `w`. Returns `false` (and leaves
    /// the graph unchanged) if the edge already exists. Self-loops are
    /// permitted on directed graphs and rejected on undirected ones (they
    /// would double-insert into one adjacency list).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> bool {
        matches!(self.try_insert_edge(u, v, w), Ok(true))
    }

    /// Inserts edge `(u, v)` with weight `w`, reporting the weight of an
    /// already-present edge instead of silently refusing.
    ///
    /// One binary search on `out[u]` resolves everything: `Ok(i)` is the
    /// existing edge (returned as `Err(weight)`), `Err(pos)` is the
    /// insertion point. Returns `Ok(true)` on insertion and `Ok(false)`
    /// for a rejected undirected self-loop. Callers that need to
    /// distinguish "already there with which weight" (batch validation)
    /// get it without a separate `edge_weight` probe.
    pub fn try_insert_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<bool, Weight> {
        assert!((u as usize) < self.labels.len(), "node {u} out of range");
        assert!((v as usize) < self.labels.len(), "node {v} out of range");
        if !self.directed && u == v {
            return Ok(false);
        }
        let adj = &mut self.out[u as usize];
        match adj.binary_search_by_key(&v, |&(t, _)| t) {
            Ok(i) => return Err(adj[i].1),
            Err(pos) => adj.insert(pos, (v, w)),
        }
        if self.directed {
            let ok = Self::insert_sorted(&mut self.inn[v as usize], u, w);
            debug_assert!(ok, "out/in adjacency diverged");
        } else {
            let ok = Self::insert_sorted(&mut self.out[v as usize], u, w);
            debug_assert!(ok, "mirrored adjacency diverged");
        }
        self.num_edges += 1;
        Ok(true)
    }

    /// Deletes edge `(u, v)`, returning its weight if it was present.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Option<Weight> {
        let w = Self::remove_sorted(&mut self.out[u as usize], v)?;
        if self.directed {
            let w2 = Self::remove_sorted(&mut self.inn[v as usize], u);
            debug_assert_eq!(w2, Some(w), "out/in adjacency diverged");
        } else {
            let w2 = Self::remove_sorted(&mut self.out[v as usize], u);
            debug_assert_eq!(w2, Some(w), "mirrored adjacency diverged");
        }
        self.num_edges -= 1;
        Some(w)
    }

    /// All edges as `(u, v, w)`. Undirected edges are reported once with
    /// `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.out.iter().enumerate().flat_map(move |(u, adj)| {
            let u = u as NodeId;
            adj.iter()
                .filter(move |&&(v, _)| self.directed || u <= v)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Heap bytes held by the adjacency structure; used for the space-cost
    /// experiment (paper Fig. 8).
    pub fn space_bytes(&self) -> usize {
        use std::mem::size_of;
        let entry = size_of::<(NodeId, Weight)>();
        let adj: usize = self
            .out
            .iter()
            .chain(self.inn.iter())
            .map(|v| v.capacity() * entry + size_of::<Vec<(NodeId, Weight)>>())
            .sum();
        adj + self.labels.capacity() * size_of::<Label>()
    }

    fn insert_sorted(adj: &mut Vec<(NodeId, Weight)>, t: NodeId, w: Weight) -> bool {
        match adj.binary_search_by_key(&t, |&(x, _)| x) {
            Ok(_) => false,
            Err(pos) => {
                adj.insert(pos, (t, w));
                true
            }
        }
    }

    fn remove_sorted(adj: &mut Vec<(NodeId, Weight)>, t: NodeId) -> Option<Weight> {
        match adj.binary_search_by_key(&t, |&(x, _)| x) {
            Ok(pos) => Some(adj.remove(pos).1),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_insert_delete_roundtrip() {
        let mut g = DynamicGraph::new(true, 4);
        assert!(g.insert_edge(0, 1, 5));
        assert!(!g.insert_edge(0, 1, 7), "duplicate insert must be a no-op");
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), None, "directed edge is one-way");
        assert_eq!(g.in_neighbors(1), &[(0, 5)]);
        assert_eq!(g.delete_edge(0, 1), Some(5));
        assert_eq!(g.delete_edge(0, 1), None);
        assert_eq!(g.edge_count(), 0);
        assert!(g.in_neighbors(1).is_empty());
    }

    #[test]
    fn undirected_edges_are_mirrored_and_counted_once() {
        let mut g = DynamicGraph::new(false, 3);
        assert!(g.insert_edge(2, 0, 1));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 2, 1)]);
        assert_eq!(g.delete_edge(0, 2), Some(1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn undirected_self_loop_rejected() {
        let mut g = DynamicGraph::new(false, 2);
        assert!(!g.insert_edge(1, 1, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn directed_self_loop_allowed() {
        let mut g = DynamicGraph::new(true, 2);
        assert!(g.insert_edge(1, 1, 3));
        assert_eq!(g.out_neighbors(1), &[(1, 3)]);
        assert_eq!(g.in_neighbors(1), &[(1, 3)]);
    }

    #[test]
    fn try_insert_reports_existing_weight() {
        let mut g = DynamicGraph::new(true, 3);
        assert_eq!(g.try_insert_edge(0, 1, 5), Ok(true));
        assert_eq!(g.try_insert_edge(0, 1, 9), Err(5));
        assert_eq!(g.edge_weight(0, 1), Some(5), "losing insert is a no-op");
        let mut u = DynamicGraph::new(false, 3);
        assert_eq!(u.try_insert_edge(2, 2, 1), Ok(false), "self-loop rejected");
        assert_eq!(u.edge_count(), 0);
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = DynamicGraph::new(true, 5);
        for v in [3u32, 1, 4, 2] {
            g.insert_edge(0, v, v);
        }
        let targets: Vec<_> = g.out_neighbors(0).iter().map(|&(t, _)| t).collect();
        assert_eq!(targets, vec![1, 2, 3, 4]);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = DynamicGraph::new(true, 1);
        let v = g.add_node(7);
        assert_eq!(v, 1);
        assert_eq!(g.label(v), 7);
        assert!(g.insert_edge(0, v, 2));
    }

    #[test]
    fn size_is_nodes_plus_edges() {
        let mut g = DynamicGraph::new(false, 10);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        assert_eq!(g.size(), 12);
    }

    #[test]
    fn space_bytes_grows_with_edges() {
        let mut g = DynamicGraph::new(true, 100);
        let before = g.space_bytes();
        for i in 0..99u32 {
            g.insert_edge(i, i + 1, 1);
        }
        assert!(g.space_bytes() > before);
    }
}
