//! Copy-on-write ΔG overlay on a CSR snapshot.
//!
//! The parallel engine wants the flat, cache-friendly scans of a
//! [`CsrSnapshot`], but an incremental run mutates the graph between
//! fixpoints. Rebuilding the snapshot per batch would cost `O(|G|)` —
//! exactly the bound incrementalization exists to avoid. [`CsrOverlay`]
//! keeps the snapshot immutable and patches only the adjacency rows ΔG
//! touches: the first update to a node's row copies it out of the CSR
//! (copy-on-write), later updates edit the copy in place. Reads hit the
//! patch map once per *row*, not per edge, so the unpatched majority of
//! the graph is still served straight from the flat arrays.

use crate::csr::CsrSnapshot;
use crate::ids::{Label, NodeId, Weight};
use crate::update::AppliedBatch;
use crate::view::GraphView;
use std::collections::HashMap;

/// A [`CsrSnapshot`] plus a sparse set of patched adjacency rows.
///
/// Rows stay sorted by neighbor id, preserving the [`GraphView`]
/// contract. Node additions are not supported — an overlay covers edge
/// updates on a fixed node set, which is the shape of every ΔG in this
/// workspace (batches that add nodes rebuild the snapshot instead).
#[derive(Clone, Debug)]
pub struct CsrOverlay<'a> {
    base: &'a CsrSnapshot,
    /// Patched outgoing rows (full neighbor set when undirected).
    out_patch: HashMap<NodeId, Vec<(NodeId, Weight)>>,
    /// Patched incoming rows (directed graphs only).
    in_patch: HashMap<NodeId, Vec<(NodeId, Weight)>>,
    /// Net edge delta vs. the base snapshot (insertions − deletions).
    edge_delta: isize,
}

impl<'a> CsrOverlay<'a> {
    /// An overlay with no patches: reads are identical to `base`.
    pub fn new(base: &'a CsrSnapshot) -> Self {
        CsrOverlay {
            base,
            out_patch: HashMap::new(),
            in_patch: HashMap::new(),
            edge_delta: 0,
        }
    }

    /// The underlying snapshot.
    pub fn base(&self) -> &'a CsrSnapshot {
        self.base
    }

    /// Number of rows that have been copied out of the CSR.
    pub fn patched_rows(&self) -> usize {
        self.out_patch.len() + self.in_patch.len()
    }

    /// Net edge-count change relative to the base snapshot.
    pub fn edge_delta(&self) -> isize {
        self.edge_delta
    }

    /// Inserts edge `(u, v)` with weight `w`; same semantics as
    /// [`DynamicGraph::insert_edge`](crate::store::DynamicGraph::insert_edge)
    /// (no-op on duplicates, undirected self-loops rejected).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> bool {
        let n = self.base.node_count();
        assert!((u as usize) < n, "node {u} out of range");
        assert!((v as usize) < n, "node {v} out of range");
        let directed = self.base.is_directed();
        if !directed && u == v {
            return false;
        }
        if !Self::insert_sorted(self.out_row_mut(u), v, w) {
            return false;
        }
        let ok = if directed {
            Self::insert_sorted(self.in_row_mut(v), u, w)
        } else {
            Self::insert_sorted(self.out_row_mut(v), u, w)
        };
        debug_assert!(ok, "overlay adjacency diverged");
        self.edge_delta += 1;
        true
    }

    /// Deletes edge `(u, v)`, returning its weight if it was present.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Option<Weight> {
        if !self.has_edge(u, v) {
            return None; // avoid copying rows for a no-op delete
        }
        let directed = self.base.is_directed();
        let w = Self::remove_sorted(self.out_row_mut(u), v)?;
        let w2 = if directed {
            Self::remove_sorted(self.in_row_mut(v), u)
        } else {
            Self::remove_sorted(self.out_row_mut(v), u)
        };
        debug_assert_eq!(w2, Some(w), "overlay adjacency diverged");
        self.edge_delta -= 1;
        Some(w)
    }

    /// Replays the effective ops of an applied batch onto the overlay, so
    /// the overlay reads identically to the [`DynamicGraph`] the batch was
    /// applied to (on the same node set).
    ///
    /// [`DynamicGraph`]: crate::store::DynamicGraph
    pub fn apply(&mut self, batch: &AppliedBatch) {
        for op in batch.ops() {
            if op.inserted {
                let ok = self.insert_edge(op.src, op.dst, op.weight);
                debug_assert!(ok, "applied op re-inserted a live edge");
            } else {
                let w = self.delete_edge(op.src, op.dst);
                debug_assert!(w.is_some(), "applied op deleted a missing edge");
            }
        }
    }

    /// Drops all patches, reverting reads to the base snapshot.
    pub fn reset(&mut self) {
        self.out_patch.clear();
        self.in_patch.clear();
        self.edge_delta = 0;
    }

    /// Heap bytes held by the patch rows.
    pub fn space_bytes(&self) -> usize {
        use std::mem::size_of;
        let entry = size_of::<(NodeId, Weight)>();
        let row = size_of::<(NodeId, Vec<(NodeId, Weight)>)>();
        self.out_patch
            .iter()
            .chain(self.in_patch.iter())
            .map(|(_, r)| r.capacity() * entry + row)
            .sum()
    }

    fn out_row_mut(&mut self, v: NodeId) -> &mut Vec<(NodeId, Weight)> {
        let base = self.base;
        self.out_patch
            .entry(v)
            .or_insert_with(|| base.out_neighbors(v).to_vec())
    }

    fn in_row_mut(&mut self, v: NodeId) -> &mut Vec<(NodeId, Weight)> {
        let base = self.base;
        self.in_patch
            .entry(v)
            .or_insert_with(|| base.in_neighbors(v).to_vec())
    }

    fn insert_sorted(adj: &mut Vec<(NodeId, Weight)>, t: NodeId, w: Weight) -> bool {
        match adj.binary_search_by_key(&t, |&(x, _)| x) {
            Ok(_) => false,
            Err(pos) => {
                adj.insert(pos, (t, w));
                true
            }
        }
    }

    fn remove_sorted(adj: &mut Vec<(NodeId, Weight)>, t: NodeId) -> Option<Weight> {
        match adj.binary_search_by_key(&t, |&(x, _)| x) {
            Ok(pos) => Some(adj.remove(pos).1),
            Err(_) => None,
        }
    }
}

impl GraphView for CsrOverlay<'_> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }
    fn is_directed(&self) -> bool {
        self.base.is_directed()
    }
    fn label(&self, v: NodeId) -> Label {
        self.base.label(v)
    }
    fn out_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        match self.out_patch.get(&v) {
            Some(row) => row,
            None => self.base.out_neighbors(v),
        }
    }
    fn in_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        if self.base.is_directed() {
            match self.in_patch.get(&v) {
                Some(row) => row,
                None => self.base.in_neighbors(v),
            }
        } else {
            self.out_neighbors(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform;
    use crate::store::DynamicGraph;
    use crate::update::UpdateBatch;

    fn assert_view_matches(overlay: &CsrOverlay<'_>, g: &DynamicGraph) {
        assert_eq!(overlay.node_count(), g.node_count());
        for v in 0..g.node_count() as NodeId {
            assert_eq!(overlay.out_neighbors(v), g.out_neighbors(v), "out({v})");
            assert_eq!(
                overlay.in_neighbors(v),
                GraphView::in_neighbors(g, v),
                "in({v})"
            );
        }
    }

    #[test]
    fn untouched_overlay_reads_like_base() {
        let g = uniform(60, 240, true, 5, 2, 21);
        let csr = CsrSnapshot::new(&g);
        let overlay = CsrOverlay::new(&csr);
        assert_view_matches(&overlay, &g);
        assert_eq!(overlay.patched_rows(), 0);
    }

    #[test]
    fn overlay_tracks_applied_batch_directed() {
        let mut g = uniform(80, 320, true, 5, 2, 22);
        let csr = CsrSnapshot::new(&g);
        let mut overlay = CsrOverlay::new(&csr);
        let mut batch = UpdateBatch::new();
        batch
            .insert(0, 50, 3)
            .delete(0, 50)
            .insert(7, 7, 2) // directed self-loop
            .insert(12, 40, 9);
        // Delete a few edges that actually exist.
        let existing: Vec<_> = g.edges().take(5).collect();
        for (u, v, _) in existing {
            batch.delete(u, v);
        }
        let applied = batch.apply(&mut g);
        overlay.apply(&applied);
        assert_view_matches(&overlay, &g);
        // Directed CSR: one arc per edge.
        assert_eq!(
            overlay.edge_delta(),
            g.edge_count() as isize - csr.arc_count() as isize
        );
    }

    #[test]
    fn overlay_tracks_applied_batch_undirected() {
        let mut g = uniform(80, 320, false, 5, 2, 23);
        let csr = CsrSnapshot::new(&g);
        let mut overlay = CsrOverlay::new(&csr);
        let mut batch = UpdateBatch::new();
        batch.insert(3, 3, 1); // undirected self-loop: no-op everywhere
        batch.insert(1, 70, 4);
        let existing: Vec<_> = g.edges().take(4).collect();
        for (u, v, _) in existing {
            batch.delete(u, v);
        }
        let applied = batch.apply(&mut g);
        overlay.apply(&applied);
        assert_view_matches(&overlay, &g);
    }

    #[test]
    fn noop_delete_copies_no_rows() {
        let g = uniform(40, 100, true, 5, 2, 24);
        let csr = CsrSnapshot::new(&g);
        let mut overlay = CsrOverlay::new(&csr);
        assert_eq!(overlay.delete_edge(0, 39), g.edge_weight(0, 39));
        if !g.has_edge(0, 39) {
            assert_eq!(overlay.patched_rows(), 0);
        }
        // Duplicate insert of an existing edge is also a no-op, but it has
        // to copy the row to find that out — patched_rows may grow.
        let first = g.edges().next();
        if let Some((u, v, w)) = first {
            assert!(!overlay.insert_edge(u, v, w));
            assert_eq!(overlay.edge_delta(), 0);
        }
    }

    #[test]
    fn reset_reverts_to_base() {
        let g = uniform(40, 100, false, 5, 2, 25);
        let csr = CsrSnapshot::new(&g);
        let mut overlay = CsrOverlay::new(&csr);
        overlay.insert_edge(0, 20, 9);
        assert!(overlay.has_edge(0, 20) || g.has_edge(0, 20));
        overlay.reset();
        assert_view_matches(&overlay, &g);
        assert_eq!(overlay.space_bytes(), 0);
    }
}
