//! Update batches `ΔG` and their application to a graph.
//!
//! The paper works with *batch updates*: sequences of unit edge insertions
//! and deletions ([`Update`]). Applying a batch yields an [`AppliedBatch`]
//! recording, in chronological order, the updates that actually took
//! effect (duplicates and missing edges are no-ops), which is exactly the
//! information the initial scope function `h` needs — and which can be
//! inverted to restore the original graph, a facility the experiment
//! harness and the property tests lean on.

use crate::ids::{NodeId, Weight, INF_DIST};
use crate::store::DynamicGraph;
use std::fmt;

/// Why a batch was rejected by [`UpdateBatch::apply_validated`].
///
/// Every variant names the offending unit's position in the batch so
/// callers (the CLI, a streaming ingestor) can point at the poisoned
/// update rather than the whole ΔG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A unit update references a node id outside `0..node_count`.
    /// Unvalidated, this is the `insert_edge` range assertion — a panic.
    NodeOutOfRange {
        /// Position of the offending unit in the batch.
        index: usize,
        /// The out-of-range node id.
        node: NodeId,
        /// The graph's node count at validation time.
        node_count: usize,
    },
    /// An insertion's weight is large enough that a simple path of
    /// `node_count - 1` such edges could overflow the [`Dist`] domain
    /// (`u64`), wrapping SSSP distances past [`INF_DIST`]. Weights are
    /// integral, so this is the analogue of a non-finite float weight.
    ///
    /// [`Dist`]: crate::ids::Dist
    WeightOverflow {
        /// Position of the offending unit in the batch.
        index: usize,
        /// The rejected weight.
        weight: Weight,
        /// The largest weight the graph's size admits.
        max_weight: Weight,
    },
    /// The batch inserts the same live edge twice with different weights
    /// (no intervening delete). Under plain [`UpdateBatch::apply`] the
    /// second insert silently no-ops and its weight is lost; validated
    /// application rejects the ambiguity instead.
    ConflictingInsert {
        /// Position of the second, conflicting insert.
        index: usize,
        /// Source endpoint of the edge.
        src: NodeId,
        /// Destination endpoint of the edge.
        dst: NodeId,
        /// Weight the edge already carries at this point of the batch.
        existing: Weight,
        /// Weight the conflicting insert asked for.
        requested: Weight,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BatchError::NodeOutOfRange {
                index,
                node,
                node_count,
            } => write!(
                f,
                "update #{index}: node {node} out of range (graph has {node_count} nodes)"
            ),
            BatchError::WeightOverflow {
                index,
                weight,
                max_weight,
            } => write!(
                f,
                "update #{index}: weight {weight} exceeds the overflow-safe maximum \
                 {max_weight} for this graph size"
            ),
            BatchError::ConflictingInsert {
                index,
                src,
                dst,
                existing,
                requested,
            } => write!(
                f,
                "update #{index}: insert of live edge ({src}, {dst}) with weight \
                 {requested} conflicts with its current weight {existing}"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// A unit update: one edge insertion or deletion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(src, dst)` with the given weight.
    Insert {
        src: NodeId,
        dst: NodeId,
        weight: Weight,
    },
    /// Delete edge `(src, dst)`.
    Delete { src: NodeId, dst: NodeId },
}

impl Update {
    /// Source endpoint.
    pub fn src(&self) -> NodeId {
        match *self {
            Update::Insert { src, .. } | Update::Delete { src, .. } => src,
        }
    }

    /// Destination endpoint.
    pub fn dst(&self) -> NodeId {
        match *self {
            Update::Insert { dst, .. } | Update::Delete { dst, .. } => dst,
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert { .. })
    }
}

/// A batch update `ΔG`: an ordered sequence of unit updates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<Update>,
}

impl UpdateBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batch from a list of unit updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        UpdateBatch { updates }
    }

    /// Appends an insertion.
    pub fn insert(&mut self, src: NodeId, dst: NodeId, weight: Weight) -> &mut Self {
        self.updates.push(Update::Insert { src, dst, weight });
        self
    }

    /// Appends a deletion.
    pub fn delete(&mut self, src: NodeId, dst: NodeId) -> &mut Self {
        self.updates.push(Update::Delete { src, dst });
        self
    }

    /// The unit updates, in application order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// `|ΔG|`: the number of unit updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Applies the batch to `g` in order, returning the effective updates.
    ///
    /// Insertions of existing edges and deletions of missing edges are
    /// silently skipped (they are no-ops on the graph and must likewise be
    /// invisible to the scope function).
    pub fn apply(&self, g: &mut DynamicGraph) -> AppliedBatch {
        let mut ops = Vec::with_capacity(self.updates.len());
        for u in &self.updates {
            match *u {
                Update::Insert { src, dst, weight } => {
                    if g.insert_edge(src, dst, weight) {
                        ops.push(AppliedOp {
                            inserted: true,
                            src,
                            dst,
                            weight,
                        });
                    }
                }
                Update::Delete { src, dst } => {
                    if let Some(w) = g.delete_edge(src, dst) {
                        ops.push(AppliedOp {
                            inserted: false,
                            src,
                            dst,
                            weight: w,
                        });
                    }
                }
            }
        }
        AppliedBatch { ops }
    }

    /// Applies the batch transactionally: every unit update is validated
    /// against the live graph state at its position, and on the first
    /// invalid unit the already-applied prefix is rolled back via
    /// [`AppliedBatch::invert`], leaving the graph bit-identical to its
    /// pre-call state. Since no [`AppliedBatch`] escapes on failure, no
    /// algorithm state can observe a poisoned ΔG either.
    ///
    /// Validation per unit (in order):
    /// - both endpoints are `< node_count` (the panic path of
    ///   `insert_edge` becomes [`BatchError::NodeOutOfRange`]);
    /// - insertion weights fit the overflow-safe bound
    ///   [`UpdateBatch::max_safe_weight`] ([`BatchError::WeightOverflow`]);
    /// - an insert of an edge that is already live *with a different
    ///   weight* is rejected as [`BatchError::ConflictingInsert`] — under
    ///   plain [`apply`](UpdateBatch::apply) it would silently no-op and
    ///   drop the new weight.
    ///
    /// Benign no-ops keep their `apply` semantics: re-inserting an edge
    /// with its current weight, deleting an absent edge, and undirected
    /// self-loops are skipped, not errors. Insert-then-delete of the same
    /// edge within one batch remains legal (order-sensitive semantics).
    pub fn apply_validated(&self, g: &mut DynamicGraph) -> Result<AppliedBatch, BatchError> {
        let _span = incgraph_obs::span("graph.apply");
        let n = g.node_count();
        let max_weight = Self::max_safe_weight(n);
        let mut ops = Vec::with_capacity(self.updates.len());
        for (index, u) in self.updates.iter().enumerate() {
            let err = match *u {
                Update::Insert { src, dst, weight } => {
                    if (src as usize) >= n || (dst as usize) >= n {
                        let node = if (src as usize) >= n { src } else { dst };
                        Some(BatchError::NodeOutOfRange {
                            index,
                            node,
                            node_count: n,
                        })
                    } else if weight > max_weight {
                        Some(BatchError::WeightOverflow {
                            index,
                            weight,
                            max_weight,
                        })
                    } else {
                        // One `try_insert_edge` search both detects the
                        // conflict and performs the insertion.
                        match g.try_insert_edge(src, dst, weight) {
                            Ok(true) => {
                                ops.push(AppliedOp {
                                    inserted: true,
                                    src,
                                    dst,
                                    weight,
                                });
                                None
                            }
                            // Undirected self-loop: benign no-op, as in `apply`.
                            Ok(false) => None,
                            // Re-insert with the current weight: benign no-op.
                            Err(existing) if existing == weight => None,
                            Err(existing) => Some(BatchError::ConflictingInsert {
                                index,
                                src,
                                dst,
                                existing,
                                requested: weight,
                            }),
                        }
                    }
                }
                Update::Delete { src, dst } => {
                    if (src as usize) >= n || (dst as usize) >= n {
                        let node = if (src as usize) >= n { src } else { dst };
                        Some(BatchError::NodeOutOfRange {
                            index,
                            node,
                            node_count: n,
                        })
                    } else {
                        if let Some(w) = g.delete_edge(src, dst) {
                            ops.push(AppliedOp {
                                inserted: false,
                                src,
                                dst,
                                weight: w,
                            });
                        }
                        None
                    }
                }
            };
            if let Some(err) = err {
                // Roll back the applied prefix; inversion replays the
                // effective ops in reverse, restoring weights too.
                AppliedBatch { ops }.invert().apply(g);
                incgraph_obs::counter("graph.rollbacks", 1);
                return Err(err);
            }
        }
        if incgraph_obs::enabled() {
            let inserted = ops.iter().filter(|o| o.inserted).count() as u64;
            incgraph_obs::counter("graph.edges_inserted", inserted);
            incgraph_obs::counter("graph.edges_deleted", ops.len() as u64 - inserted);
        }
        Ok(AppliedBatch { ops })
    }

    /// The largest insertion weight that keeps SSSP distance sums
    /// representable: a simple path has at most `node_count - 1` edges,
    /// so any weight `w` with `(node_count - 1) * w < INF_DIST` cannot
    /// wrap the `u64` distance domain. For small graphs this admits the
    /// full `u32` weight range; it only bites near the ~4-billion-node
    /// addressing limit.
    pub fn max_safe_weight(node_count: usize) -> Weight {
        let hops = node_count.saturating_sub(1).max(1) as u64;
        let bound = (INF_DIST - 1) / hops;
        bound.min(Weight::MAX as u64) as Weight
    }

    /// Splits the batch into singleton batches, for the `Inc*_n` variants
    /// that process unit updates one by one.
    pub fn as_units(&self) -> impl Iterator<Item = UpdateBatch> + '_ {
        self.updates
            .iter()
            .map(|&u| UpdateBatch { updates: vec![u] })
    }
}

/// One effective unit update, with the weight involved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppliedOp {
    /// `true` for an insertion, `false` for a deletion.
    pub inserted: bool,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Weight inserted, or weight the deleted edge carried.
    pub weight: Weight,
}

/// The effective result of applying an [`UpdateBatch`]: which edges were
/// actually inserted and deleted, in chronological order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedBatch {
    ops: Vec<AppliedOp>,
}

impl AppliedBatch {
    /// Assembles an applied batch from explicit effective ops. Normal
    /// callers get their `AppliedBatch` from [`UpdateBatch::apply`]; this
    /// constructor exists for testing harnesses (the differential fuzzing
    /// oracle) that need to present an algorithm state with a *doctored*
    /// ΔG — e.g. one with an op dropped — to model bugs like the
    /// undirected-mirror misses PR 1's audit caught.
    pub fn from_ops(ops: Vec<AppliedOp>) -> Self {
        AppliedBatch { ops }
    }

    /// Effective unit updates in application order.
    pub fn ops(&self) -> &[AppliedOp] {
        &self.ops
    }

    /// Number of effective unit updates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing took effect.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Effective insertions, in application order.
    pub fn inserted(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.ops
            .iter()
            .filter(|o| o.inserted)
            .map(|o| (o.src, o.dst, o.weight))
    }

    /// Effective deletions (with the weight the edge carried), in
    /// application order.
    pub fn deleted(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.ops
            .iter()
            .filter(|o| !o.inserted)
            .map(|o| (o.src, o.dst, o.weight))
    }

    /// A batch that undoes this one: each effective op is inverted, in
    /// reverse chronological order, so interleavings like
    /// insert-then-delete of the same edge round-trip correctly.
    pub fn invert(&self) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for op in self.ops.iter().rev() {
            if op.inserted {
                batch.delete(op.src, op.dst);
            } else {
                batch.insert(op.src, op.dst, op.weight);
            }
        }
        batch
    }

    /// Re-expresses the effective ops as a requested [`UpdateBatch`], in
    /// chronological order. Applying it to a graph in the pre-batch state
    /// performs exactly these ops again — the replay form micro-batch
    /// coalescing and the service writer use to apply a canonical ΔG.
    pub fn to_update_batch(&self) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for op in &self.ops {
            if op.inserted {
                batch.insert(op.src, op.dst, op.weight);
            } else {
                batch.delete(op.src, op.dst);
            }
        }
        batch
    }

    /// All endpoints touched by the effective updates, deduplicated.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.ops.iter().flat_map(|o| [o.src, o.dst]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(true, n);
        for i in 0..n - 1 {
            g.insert_edge(i as NodeId, i as NodeId + 1, 1);
        }
        g
    }

    #[test]
    fn apply_records_effective_ops_only() {
        let mut g = path_graph(4);
        let mut batch = UpdateBatch::new();
        batch
            .insert(0, 2, 9) // effective
            .insert(0, 1, 5) // no-op: exists
            .delete(1, 2) // effective
            .delete(3, 0); // no-op: missing
        let applied = batch.apply(&mut g);
        assert_eq!(applied.inserted().collect::<Vec<_>>(), vec![(0, 2, 9)]);
        assert_eq!(applied.deleted().collect::<Vec<_>>(), vec![(1, 2, 1)]);
        assert_eq!(applied.len(), 2);
        assert!(g.has_edge(0, 2) && !g.has_edge(1, 2));
    }

    #[test]
    fn invert_restores_graph() {
        let mut g = path_graph(5);
        let original = g.clone();
        let mut batch = UpdateBatch::new();
        batch
            .insert(4, 0, 3)
            .delete(0, 1)
            .delete(2, 3)
            .insert(1, 3, 7);
        let applied = batch.apply(&mut g);
        applied.invert().apply(&mut g);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = original.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn insert_then_delete_same_edge_in_one_batch() {
        let mut g = DynamicGraph::new(true, 2);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 2).delete(0, 1);
        let applied = batch.apply(&mut g);
        assert_eq!(applied.inserted().collect::<Vec<_>>(), vec![(0, 1, 2)]);
        assert_eq!(applied.deleted().collect::<Vec<_>>(), vec![(0, 1, 2)]);
        assert!(!g.has_edge(0, 1));
        // Inversion of the no-net-effect batch is also a no-net-effect batch.
        applied.invert().apply(&mut g);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn delete_then_reinsert_same_edge_inverts() {
        let mut g = path_graph(3);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(0, 1, 9);
        let applied = batch.apply(&mut g);
        assert_eq!(g.edge_weight(0, 1), Some(9));
        applied.invert().apply(&mut g);
        assert_eq!(g.edge_weight(0, 1), Some(1), "original weight restored");
    }

    #[test]
    fn touched_nodes_deduplicates() {
        let mut g = path_graph(4);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(1, 3, 1);
        let applied = batch.apply(&mut g);
        assert_eq!(applied.touched_nodes(), vec![0, 1, 3]);
    }

    #[test]
    fn apply_validated_matches_apply_on_clean_batches() {
        let mut g1 = path_graph(5);
        let mut g2 = g1.clone();
        let mut batch = UpdateBatch::new();
        batch
            .insert(4, 0, 3)
            .delete(0, 1)
            .insert(0, 1, 5) // reinsert after delete: legal
            .delete(3, 0) // absent edge: benign no-op
            .insert(1, 2, 1); // re-insert with current weight: benign no-op
        let a = batch.apply(&mut g1);
        let b = batch.apply_validated(&mut g2).expect("clean batch");
        assert_eq!(a, b);
        let mut e1: Vec<_> = g1.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn apply_validated_rejects_out_of_range_and_rolls_back() {
        let mut g = path_graph(4);
        let before: Vec<_> = g.edges().collect();
        let mut batch = UpdateBatch::new();
        batch.insert(0, 2, 9).delete(1, 2).insert(0, 99, 1);
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert_eq!(
            err,
            BatchError::NodeOutOfRange {
                index: 2,
                node: 99,
                node_count: 4
            }
        );
        let after: Vec<_> = g.edges().collect();
        assert_eq!(before, after, "applied prefix rolled back");
    }

    #[test]
    fn apply_validated_rejects_out_of_range_delete() {
        let mut g = path_graph(4);
        let mut batch = UpdateBatch::new();
        batch.delete(u32::MAX, 0);
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert!(matches!(
            err,
            BatchError::NodeOutOfRange { node: u32::MAX, .. }
        ));
    }

    #[test]
    fn apply_validated_rejects_conflicting_insert() {
        let mut g = path_graph(3);
        let before: Vec<_> = g.edges().collect();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 0, 4).insert(0, 1, 7); // (0,1) is live with weight 1
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert_eq!(
            err,
            BatchError::ConflictingInsert {
                index: 1,
                src: 0,
                dst: 1,
                existing: 1,
                requested: 7
            }
        );
        let after: Vec<_> = g.edges().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn apply_validated_detects_conflicts_within_the_batch() {
        let mut g = DynamicGraph::new(true, 3);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 2).insert(0, 1, 3);
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert!(matches!(
            err,
            BatchError::ConflictingInsert { index: 1, .. }
        ));
        assert!(!g.has_edge(0, 1), "first insert rolled back");
        // With an intervening delete the re-insert is legal.
        let mut ok = UpdateBatch::new();
        ok.insert(0, 1, 2).delete(0, 1).insert(0, 1, 3);
        let applied = ok.apply_validated(&mut g).expect("legal sequence");
        assert_eq!(applied.len(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn apply_validated_insert_then_delete_stays_legal() {
        let mut g = DynamicGraph::new(true, 24);
        g.insert_edge(0, 22, 1);
        let mut batch = UpdateBatch::new();
        batch.insert(22, 23, 1).delete(22, 23);
        let applied = batch.apply_validated(&mut g).expect("legal");
        assert_eq!(applied.len(), 2);
        assert!(!g.has_edge(22, 23));
    }

    /// The store's full `Debug` rendering covers every field, including
    /// adjacency order and weights, so equal renderings mean the rollback
    /// left no observable trace — the "byte-identical" contract of
    /// [`UpdateBatch::apply_validated`].
    fn render(g: &DynamicGraph) -> String {
        format!("{g:?}")
    }

    #[test]
    fn partially_invalid_batch_rolls_back_byte_identical() {
        // A batch that is mostly valid — effective inserts, an effective
        // delete, a benign duplicate re-insert — and then hits an invalid
        // node. Every applied prefix op must be undone exactly.
        let mut g = path_graph(6);
        g.insert_edge(5, 0, 7);
        let before = render(&g);
        let mut batch = UpdateBatch::new();
        batch
            .insert(0, 3, 9) // effective insert
            .insert(0, 1, 1) // duplicate of a live edge, same weight: no-op
            .delete(2, 3) // effective delete
            .delete(5, 2) // absent edge: no-op
            .insert(1, 4, 2) // effective insert
            .insert(3, 600, 1); // invalid node: triggers rollback
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert!(matches!(
            err,
            BatchError::NodeOutOfRange {
                index: 5,
                node: 600,
                ..
            }
        ));
        assert_eq!(render(&g), before, "store must be byte-identical");
    }

    #[test]
    fn duplicate_then_invalid_node_in_one_batch_rolls_back() {
        // The satellite case: a conflicting duplicate insert *and* an
        // invalid node in one batch. Validation stops at the first bad
        // unit (the conflict), and the rollback must restore the store
        // even though a later unit is also poisoned.
        let mut g = path_graph(4);
        let before = render(&g);
        let mut batch = UpdateBatch::new();
        batch
            .insert(3, 0, 2) // effective
            .insert(0, 1, 9) // conflicting duplicate: (0,1) is live at weight 1
            .insert(0, 99, 1); // invalid node, never reached
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert_eq!(
            err,
            BatchError::ConflictingInsert {
                index: 1,
                src: 0,
                dst: 1,
                existing: 1,
                requested: 9
            }
        );
        assert_eq!(render(&g), before, "store must be byte-identical");
    }

    #[test]
    fn delete_then_invalid_rolls_back_weight_exactly() {
        // Rollback of a deletion must reinstate the original weight, not
        // a default; the byte-level comparison would catch a drifted one.
        let mut g = DynamicGraph::new(false, 3);
        g.insert_edge(0, 1, 42);
        g.insert_edge(1, 2, 7);
        let before = render(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(2, 77, 1);
        let err = batch.apply_validated(&mut g).unwrap_err();
        assert!(matches!(err, BatchError::NodeOutOfRange { index: 1, .. }));
        assert_eq!(render(&g), before);
        assert_eq!(g.edge_weight(0, 1), Some(42));
    }

    #[test]
    fn from_ops_roundtrips_through_accessors() {
        let ops = vec![
            AppliedOp {
                inserted: true,
                src: 1,
                dst: 2,
                weight: 5,
            },
            AppliedOp {
                inserted: false,
                src: 0,
                dst: 1,
                weight: 3,
            },
        ];
        let applied = AppliedBatch::from_ops(ops.clone());
        assert_eq!(applied.ops(), ops.as_slice());
        assert_eq!(applied.len(), 2);
    }

    #[test]
    fn max_safe_weight_admits_full_range_on_small_graphs() {
        assert_eq!(UpdateBatch::max_safe_weight(0), Weight::MAX);
        assert_eq!(UpdateBatch::max_safe_weight(1000), Weight::MAX);
        // For huge node counts the bound bites: (n-1) * max must stay
        // below INF_DIST, and the bound is tight once it drops under the
        // u32 clamp.
        let n = 1usize << 34;
        let m = UpdateBatch::max_safe_weight(n) as u64;
        assert!(m < Weight::MAX as u64);
        assert!((n as u128 - 1) * (m as u128) < INF_DIST as u128);
        assert!((n as u128 - 1) * (m as u128 + 1) >= INF_DIST as u128);
    }

    #[test]
    fn unit_split_preserves_order() {
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 1).delete(2, 3);
        let units: Vec<_> = batch.as_units().collect();
        assert_eq!(units.len(), 2);
        assert_eq!(
            units[0].updates()[0],
            Update::Insert {
                src: 0,
                dst: 1,
                weight: 1
            }
        );
        assert_eq!(units[1].updates()[0], Update::Delete { src: 2, dst: 3 });
    }
}
