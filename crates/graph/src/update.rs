//! Update batches `ΔG` and their application to a graph.
//!
//! The paper works with *batch updates*: sequences of unit edge insertions
//! and deletions ([`Update`]). Applying a batch yields an [`AppliedBatch`]
//! recording, in chronological order, the updates that actually took
//! effect (duplicates and missing edges are no-ops), which is exactly the
//! information the initial scope function `h` needs — and which can be
//! inverted to restore the original graph, a facility the experiment
//! harness and the property tests lean on.

use crate::ids::{NodeId, Weight};
use crate::store::DynamicGraph;

/// A unit update: one edge insertion or deletion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(src, dst)` with the given weight.
    Insert {
        src: NodeId,
        dst: NodeId,
        weight: Weight,
    },
    /// Delete edge `(src, dst)`.
    Delete { src: NodeId, dst: NodeId },
}

impl Update {
    /// Source endpoint.
    pub fn src(&self) -> NodeId {
        match *self {
            Update::Insert { src, .. } | Update::Delete { src, .. } => src,
        }
    }

    /// Destination endpoint.
    pub fn dst(&self) -> NodeId {
        match *self {
            Update::Insert { dst, .. } | Update::Delete { dst, .. } => dst,
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert { .. })
    }
}

/// A batch update `ΔG`: an ordered sequence of unit updates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<Update>,
}

impl UpdateBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batch from a list of unit updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        UpdateBatch { updates }
    }

    /// Appends an insertion.
    pub fn insert(&mut self, src: NodeId, dst: NodeId, weight: Weight) -> &mut Self {
        self.updates.push(Update::Insert { src, dst, weight });
        self
    }

    /// Appends a deletion.
    pub fn delete(&mut self, src: NodeId, dst: NodeId) -> &mut Self {
        self.updates.push(Update::Delete { src, dst });
        self
    }

    /// The unit updates, in application order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// `|ΔG|`: the number of unit updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Applies the batch to `g` in order, returning the effective updates.
    ///
    /// Insertions of existing edges and deletions of missing edges are
    /// silently skipped (they are no-ops on the graph and must likewise be
    /// invisible to the scope function).
    pub fn apply(&self, g: &mut DynamicGraph) -> AppliedBatch {
        let mut ops = Vec::with_capacity(self.updates.len());
        for u in &self.updates {
            match *u {
                Update::Insert { src, dst, weight } => {
                    if g.insert_edge(src, dst, weight) {
                        ops.push(AppliedOp {
                            inserted: true,
                            src,
                            dst,
                            weight,
                        });
                    }
                }
                Update::Delete { src, dst } => {
                    if let Some(w) = g.delete_edge(src, dst) {
                        ops.push(AppliedOp {
                            inserted: false,
                            src,
                            dst,
                            weight: w,
                        });
                    }
                }
            }
        }
        AppliedBatch { ops }
    }

    /// Splits the batch into singleton batches, for the `Inc*_n` variants
    /// that process unit updates one by one.
    pub fn as_units(&self) -> impl Iterator<Item = UpdateBatch> + '_ {
        self.updates
            .iter()
            .map(|&u| UpdateBatch { updates: vec![u] })
    }
}

/// One effective unit update, with the weight involved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppliedOp {
    /// `true` for an insertion, `false` for a deletion.
    pub inserted: bool,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Weight inserted, or weight the deleted edge carried.
    pub weight: Weight,
}

/// The effective result of applying an [`UpdateBatch`]: which edges were
/// actually inserted and deleted, in chronological order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedBatch {
    ops: Vec<AppliedOp>,
}

impl AppliedBatch {
    /// Effective unit updates in application order.
    pub fn ops(&self) -> &[AppliedOp] {
        &self.ops
    }

    /// Number of effective unit updates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing took effect.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Effective insertions, in application order.
    pub fn inserted(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.ops
            .iter()
            .filter(|o| o.inserted)
            .map(|o| (o.src, o.dst, o.weight))
    }

    /// Effective deletions (with the weight the edge carried), in
    /// application order.
    pub fn deleted(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.ops
            .iter()
            .filter(|o| !o.inserted)
            .map(|o| (o.src, o.dst, o.weight))
    }

    /// A batch that undoes this one: each effective op is inverted, in
    /// reverse chronological order, so interleavings like
    /// insert-then-delete of the same edge round-trip correctly.
    pub fn invert(&self) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for op in self.ops.iter().rev() {
            if op.inserted {
                batch.delete(op.src, op.dst);
            } else {
                batch.insert(op.src, op.dst, op.weight);
            }
        }
        batch
    }

    /// All endpoints touched by the effective updates, deduplicated.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.ops.iter().flat_map(|o| [o.src, o.dst]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(true, n);
        for i in 0..n - 1 {
            g.insert_edge(i as NodeId, i as NodeId + 1, 1);
        }
        g
    }

    #[test]
    fn apply_records_effective_ops_only() {
        let mut g = path_graph(4);
        let mut batch = UpdateBatch::new();
        batch
            .insert(0, 2, 9) // effective
            .insert(0, 1, 5) // no-op: exists
            .delete(1, 2) // effective
            .delete(3, 0); // no-op: missing
        let applied = batch.apply(&mut g);
        assert_eq!(applied.inserted().collect::<Vec<_>>(), vec![(0, 2, 9)]);
        assert_eq!(applied.deleted().collect::<Vec<_>>(), vec![(1, 2, 1)]);
        assert_eq!(applied.len(), 2);
        assert!(g.has_edge(0, 2) && !g.has_edge(1, 2));
    }

    #[test]
    fn invert_restores_graph() {
        let mut g = path_graph(5);
        let original = g.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(4, 0, 3).delete(0, 1).delete(2, 3).insert(1, 3, 7);
        let applied = batch.apply(&mut g);
        applied.invert().apply(&mut g);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = original.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn insert_then_delete_same_edge_in_one_batch() {
        let mut g = DynamicGraph::new(true, 2);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 2).delete(0, 1);
        let applied = batch.apply(&mut g);
        assert_eq!(applied.inserted().collect::<Vec<_>>(), vec![(0, 1, 2)]);
        assert_eq!(applied.deleted().collect::<Vec<_>>(), vec![(0, 1, 2)]);
        assert!(!g.has_edge(0, 1));
        // Inversion of the no-net-effect batch is also a no-net-effect batch.
        applied.invert().apply(&mut g);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn delete_then_reinsert_same_edge_inverts() {
        let mut g = path_graph(3);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(0, 1, 9);
        let applied = batch.apply(&mut g);
        assert_eq!(g.edge_weight(0, 1), Some(9));
        applied.invert().apply(&mut g);
        assert_eq!(g.edge_weight(0, 1), Some(1), "original weight restored");
    }

    #[test]
    fn touched_nodes_deduplicates() {
        let mut g = path_graph(4);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(1, 3, 1);
        let applied = batch.apply(&mut g);
        assert_eq!(applied.touched_nodes(), vec![0, 1, 3]);
    }

    #[test]
    fn unit_split_preserves_order() {
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 1).delete(2, 3);
        let units: Vec<_> = batch.as_units().collect();
        assert_eq!(units.len(), 2);
        assert_eq!(
            units[0].updates()[0],
            Update::Insert {
                src: 0,
                dst: 1,
                weight: 1
            }
        );
        assert_eq!(units[1].updates()[0], Update::Delete { src: 2, dst: 3 });
    }
}
