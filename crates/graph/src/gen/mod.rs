//! Synthetic graph generators.
//!
//! The paper evaluates on six real-life graphs (LiveJournal, DBPedia,
//! Orkut, Twitter-2010, Friendster, Wiki-DE) plus a synthetic generator
//! "controlled by the number |V| of nodes and the number |E| of edges with
//! L drawn from an alphabet of 5 labels". We cannot ship multi-billion
//! edge downloads, so the workloads crate instantiates laptop-scale
//! stand-ins from these generators:
//!
//! * [`uniform`] — Erdős–Rényi-style G(n, m): the paper's synthetic
//!   scalability graphs (Exp-3).
//! * [`power_law`] — Chung–Lu expected-degree model: reproduces the heavy
//!   degree skew of the social-network datasets, which is the property
//!   that drives affected-area (`AFF`) sizes.
//! * [`grid`] — road-network-like lattice with weighted edges, the SSSP
//!   motivation workload.
//! * [`temporal`] — timestamped edge history generator standing in for the
//!   Wiki-DE temporal graph (81% insertions / 19% deletions per window).

mod grid;
mod powerlaw;
mod temporal;
mod uniform;

pub use grid::grid;
pub use powerlaw::power_law;
pub use temporal::{temporal, TemporalGraph, WINDOW_TICKS};
pub use uniform::uniform;

use crate::ids::Label;
use crate::rng::SplitMix64;

/// Draws `n` labels uniformly from an alphabet of `alphabet` symbols,
/// matching the paper's synthetic-label setup (`alphabet = 5` there).
pub(crate) fn random_labels(rng: &mut SplitMix64, n: usize, alphabet: u32) -> Vec<Label> {
    assert!(alphabet > 0, "label alphabet must be non-empty");
    (0..n).map(|_| rng.gen_range(0..alphabet)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_within_alphabet() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let labels = random_labels(&mut rng, 1000, 5);
        assert_eq!(labels.len(), 1000);
        assert!(labels.iter().all(|&l| l < 5));
        // All symbols should appear for a 1000-sample draw.
        for s in 0..5 {
            assert!(labels.contains(&s), "symbol {s} missing");
        }
    }
}
