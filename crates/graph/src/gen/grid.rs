//! Road-network-like grid generator.
//!
//! SSSP's motivating application in the paper is road-network analysis;
//! grids with varied positive weights are the standard laptop stand-in
//! for road graphs: bounded degree, large diameter, and meaningful
//! shortest-path structure.

use crate::ids::{NodeId, Weight};
use crate::rng::SplitMix64;
use crate::store::DynamicGraph;

/// Generates an undirected `rows × cols` grid whose lattice edges carry
/// random weights in `1..=max_weight`. Node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize, max_weight: Weight, seed: u64) -> DynamicGraph {
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    assert!(max_weight >= 1, "weights start at 1");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut g = DynamicGraph::new(false, rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.insert_edge(id(r, c), id(r, c + 1), rng.gen_range(1..=max_weight));
            }
            if r + 1 < rows {
                g.insert_edge(id(r, c), id(r + 1, c), rng.gen_range(1..=max_weight));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_lattice_formula() {
        let g = grid(5, 7, 10, 1);
        assert_eq!(g.node_count(), 35);
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        assert_eq!(g.edge_count(), 5 * 6 + 4 * 7);
    }

    #[test]
    fn corner_degrees_are_two() {
        let g = grid(4, 4, 3, 2);
        for corner in [0u32, 3, 12, 15] {
            assert_eq!(g.degree(corner), 2);
        }
        // Interior node has degree 4.
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid(1, 10, 1, 0);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }
}
