//! Erdős–Rényi-style G(n, m) generator.

use crate::gen::random_labels;
use crate::ids::{NodeId, Weight};
use crate::rng::SplitMix64;
use crate::store::DynamicGraph;

/// Generates a graph with `n` nodes and (up to) `m` distinct edges chosen
/// uniformly at random, labels drawn from `alphabet` symbols and weights
/// from `1..=max_weight`. Deterministic in `seed`.
///
/// Rejection sampling of duplicate edges is used; for the sparse regimes
/// of the experiments (`m ≪ n²`) this terminates quickly. The generator
/// gives up on a duplicate after a bounded number of retries so that dense
/// requests still terminate, which is why `m` is an upper bound.
pub fn uniform(
    n: usize,
    m: usize,
    directed: bool,
    max_weight: Weight,
    alphabet: u32,
    seed: u64,
) -> DynamicGraph {
    assert!(n >= 2, "need at least two nodes");
    assert!(max_weight >= 1, "weights start at 1");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let labels = random_labels(&mut rng, n, alphabet);
    let mut g = DynamicGraph::with_labels(directed, labels);
    let mut inserted = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(20).max(1024);
    while inserted < m && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let w = rng.gen_range(1..=max_weight);
        if g.insert_edge(u, v, w) {
            inserted += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = uniform(100, 300, true, 10, 5, 42);
        let b = uniform(100, 300, true, 10, 5, 42);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(100, 300, true, 10, 5, 1);
        let b = uniform(100, 300, true, 10, 5, 2);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn hits_requested_edge_count_when_sparse() {
        let g = uniform(1000, 5000, true, 10, 5, 7);
        assert_eq!(g.edge_count(), 5000);
        assert_eq!(g.node_count(), 1000);
    }

    #[test]
    fn undirected_variant_has_no_self_loops() {
        let g = uniform(50, 200, false, 1, 1, 3);
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn weights_in_range() {
        let g = uniform(100, 400, true, 7, 5, 9);
        assert!(g.edges().all(|(_, _, w)| (1..=7).contains(&w)));
    }
}
