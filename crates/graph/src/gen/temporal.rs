//! Temporal graph generator: the Wiki-DE stand-in.
//!
//! The paper extracts real-life updates from the temporal Wiki-DE graph by
//! replaying its timestamped edge history over 5 monthly windows, in which
//! "the updates within a month on average account for 1.9% of |G|, in
//! which 81% of updates are edge insertions and 19% are edge deletions"
//! (Exp-2(2)). This generator reproduces exactly those workload
//! characteristics: a base graph plus a sequence of update windows with a
//! configurable insertion fraction, where deletions always remove edges
//! that exist at that point of the replay.

use crate::gen::power_law;
use crate::ids::{NodeId, Weight};
use crate::rng::SplitMix64;
use crate::store::DynamicGraph;
use crate::update::UpdateBatch;

/// Virtual ticks spanned by one update window: window `w` covers
/// `[w * WINDOW_TICKS, (w + 1) * WINDOW_TICKS)`. The unit is abstract;
/// replay harnesses map ticks to wall time by choosing a target rate.
pub const WINDOW_TICKS: u64 = 1 << 20;

/// A graph with a timestamped update history, replayable window by window.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    /// The graph at the start of the history.
    pub initial: DynamicGraph,
    /// One update batch per time window (e.g. per month for Wiki-DE).
    pub windows: Vec<UpdateBatch>,
    /// Per-window admission ticks, parallel to `windows`: `timestamps[w][i]`
    /// is the arrival tick of the `i`-th unit update of window `w`. Strictly
    /// increasing within a window and contained in the window's tick span,
    /// so the concatenated history is globally monotone.
    pub timestamps: Vec<Vec<u64>>,
}

impl TemporalGraph {
    /// The graph after replaying the first `k` windows.
    pub fn at_window(&self, k: usize) -> DynamicGraph {
        let mut g = self.initial.clone();
        for w in &self.windows[..k] {
            w.apply(&mut g);
        }
        g
    }
}

/// Generates a temporal graph: a power-law base with `n` nodes / `m` edges
/// and `windows` update windows of `window_size` unit updates each, of
/// which a fraction `insert_frac` are insertions (0.81 for the Wiki-DE
/// stand-in). `directed` selects the base graph's orientation (the paper's
/// Wiki-DE replay is directed; undirected bases let LCC/BC standing queries
/// join the stream). Deterministic in `seed`; timestamps are drawn from an
/// independent stream so the edge history for a given `(seed, directed)` is
/// unchanged by their presence.
#[allow(clippy::too_many_arguments)]
pub fn temporal(
    n: usize,
    m: usize,
    windows: usize,
    window_size: usize,
    insert_frac: f64,
    directed: bool,
    max_weight: Weight,
    alphabet: u32,
    seed: u64,
) -> TemporalGraph {
    assert!((0.0..=1.0).contains(&insert_frac), "insert_frac in [0,1]");
    let initial = power_law(n, m, 2.3, directed, max_weight, alphabet, seed);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x7e3aa7a1);
    let mut ts_rng = SplitMix64::seed_from_u64(seed ^ 0x51ab_17c3);

    // Working state for sampling: the live graph and a sampleable edge list.
    let mut live = initial.clone();
    let mut edges: Vec<(NodeId, NodeId)> = initial.edges().map(|(u, v, _)| (u, v)).collect();

    let mut out = Vec::with_capacity(windows);
    let mut ts = Vec::with_capacity(windows);
    for w in 0..windows {
        let mut batch = UpdateBatch::new();
        for _ in 0..window_size {
            let do_insert = rng.gen_bool(insert_frac) || edges.is_empty();
            if do_insert {
                // Sample a fresh edge (bounded retries keep this total).
                for _ in 0..64 {
                    let u = rng.gen_range(0..n) as NodeId;
                    let v = rng.gen_range(0..n) as NodeId;
                    if u == v || live.has_edge(u, v) {
                        continue;
                    }
                    let w = rng.gen_range(1..=max_weight);
                    live.insert_edge(u, v, w);
                    edges.push((u, v));
                    batch.insert(u, v, w);
                    break;
                }
            } else {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                live.delete_edge(u, v);
                batch.delete(u, v);
            }
        }
        ts.push(window_ticks(&mut ts_rng, w as u64, batch.len()));
        out.push(batch);
    }
    TemporalGraph {
        initial,
        windows: out,
        timestamps: ts,
    }
}

/// Draws `count` strictly increasing admission ticks inside window `w`'s
/// tick span: offsets are uniform in a span shrunk by `count`, sorted, and
/// shifted by their rank — strict monotonicity without ever escaping the
/// window.
fn window_ticks(rng: &mut SplitMix64, w: u64, count: usize) -> Vec<u64> {
    assert!(
        (count as u64) < WINDOW_TICKS / 2,
        "window of {count} updates cannot carry distinct ticks"
    );
    let base = w * WINDOW_TICKS;
    let room = WINDOW_TICKS - count as u64;
    let mut offsets: Vec<u64> = (0..count).map(|_| rng.gen_range(0..room)).collect();
    offsets.sort_unstable();
    offsets
        .into_iter()
        .enumerate()
        .map(|(i, off)| base + off + i as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;

    #[test]
    fn windows_replay_consistently() {
        let t = temporal(200, 800, 5, 40, 0.81, true, 5, 5, 17);
        assert_eq!(t.windows.len(), 5);
        // Replaying all windows must never hit a no-op (deletions always
        // target live edges, insertions always target absent edges).
        let mut g = t.initial.clone();
        for w in &t.windows {
            let applied = w.apply(&mut g);
            assert_eq!(applied.len(), w.len(), "every unit update effective");
        }
        // at_window agrees with manual replay.
        let g3 = t.at_window(3);
        let mut h = t.initial.clone();
        for w in &t.windows[..3] {
            w.apply(&mut h);
        }
        let mut a: Vec<_> = g3.edges().collect();
        let mut b: Vec<_> = h.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn insert_fraction_is_respected() {
        let t = temporal(500, 3000, 4, 500, 0.81, true, 5, 5, 23);
        let (mut ins, mut del) = (0usize, 0usize);
        for w in &t.windows {
            for u in w.updates() {
                match u {
                    Update::Insert { .. } => ins += 1,
                    Update::Delete { .. } => del += 1,
                }
            }
        }
        let frac = ins as f64 / (ins + del) as f64;
        assert!(
            (frac - 0.81).abs() < 0.05,
            "insert fraction {frac} too far from 0.81"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = temporal(100, 400, 3, 50, 0.81, true, 5, 5, 9);
        let b = temporal(100, 400, 3, 50, 0.81, true, 5, 5, 9);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.timestamps, b.timestamps);
    }

    #[test]
    fn undirected_base_supports_all_classes() {
        let t = temporal(150, 600, 3, 30, 0.81, false, 5, 5, 31);
        assert!(!t.initial.is_directed());
        let mut g = t.initial.clone();
        for w in &t.windows {
            let applied = w.apply(&mut g);
            assert_eq!(applied.len(), w.len(), "every unit update effective");
        }
    }

    #[test]
    fn timestamps_are_monotone_within_each_window() {
        let t = temporal(300, 1200, 6, 80, 0.81, true, 5, 5, 41);
        assert_eq!(t.timestamps.len(), t.windows.len());
        for (w, (batch, ticks)) in t.windows.iter().zip(&t.timestamps).enumerate() {
            // One tick per unit update, even when insert sampling falls
            // short of the nominal window size.
            assert_eq!(ticks.len(), batch.len(), "window {w} tick count");
            let (lo, hi) = (w as u64 * WINDOW_TICKS, (w as u64 + 1) * WINDOW_TICKS);
            for pair in ticks.windows(2) {
                assert!(pair[0] < pair[1], "window {w} ticks not monotone");
            }
            for &tick in ticks {
                assert!((lo..hi).contains(&tick), "window {w} tick {tick} escapes");
            }
        }
        // Window spans are disjoint and ordered, so the concatenation is
        // globally monotone too.
        let all: Vec<u64> = t.timestamps.iter().flatten().copied().collect();
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
