//! Chung–Lu expected-degree power-law generator.
//!
//! The real-life graphs the paper evaluates on (LiveJournal, Orkut,
//! Twitter, Friendster) all have heavy-tailed degree distributions, and
//! the paper explicitly attributes some of its findings to that skew
//! (e.g. "the power-law node degree distribution of WD ... easily results
//! in stable connected components", Exp-2). The Chung–Lu model reproduces
//! the skew: node `i` is assigned expected weight `w_i ∝ (i + i0)^(-1/(γ-1))`
//! and edges are sampled with endpoint probability proportional to weight.

use crate::gen::random_labels;
use crate::ids::{NodeId, Weight};
use crate::rng::SplitMix64;
use crate::store::DynamicGraph;

/// Generates a power-law graph with `n` nodes and up to `m` edges.
///
/// `gamma` is the degree exponent (social networks sit around 2.1–2.8);
/// labels are drawn from `alphabet` symbols, weights from
/// `1..=max_weight`. Deterministic in `seed`.
pub fn power_law(
    n: usize,
    m: usize,
    gamma: f64,
    directed: bool,
    max_weight: Weight,
    alphabet: u32,
    seed: u64,
) -> DynamicGraph {
    assert!(n >= 2, "need at least two nodes");
    assert!(gamma > 1.0, "degree exponent must exceed 1");
    assert!(max_weight >= 1, "weights start at 1");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let labels = random_labels(&mut rng, n, alphabet);
    let mut g = DynamicGraph::with_labels(directed, labels);

    // Cumulative weight table for O(log n) endpoint sampling.
    let exponent = -1.0 / (gamma - 1.0);
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(exponent);
        cum.push(total);
    }

    let sample = |rng: &mut SplitMix64| -> NodeId {
        let x = rng.gen_range(0.0..total);
        cum.partition_point(|&c| c <= x) as NodeId
    };

    let mut inserted = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(30).max(1024);
    while inserted < m && attempts < max_attempts {
        attempts += 1;
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u == v {
            continue;
        }
        let w = rng.gen_range(1..=max_weight);
        if g.insert_edge(u, v, w) {
            inserted += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = power_law(200, 800, 2.3, false, 5, 5, 11);
        let b = power_law(200, 800, 2.3, false, 5, 5, 11);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn low_ids_are_hubs() {
        // In the Chung–Lu model, node 0 has the largest expected degree;
        // check the skew shows up: top-decile nodes own a disproportionate
        // share of edge endpoints.
        let g = power_law(1000, 8000, 2.2, false, 1, 1, 5);
        let top: usize = (0..100u32).map(|v| g.degree(v)).sum();
        let bottom: usize = (900..1000u32).map(|v| g.degree(v)).sum();
        assert!(
            top > 4 * bottom.max(1),
            "expected heavy skew, got top={top} bottom={bottom}"
        );
    }

    #[test]
    fn respects_edge_budget() {
        let g = power_law(500, 2000, 2.5, true, 10, 5, 3);
        assert!(g.edge_count() <= 2000);
        assert!(g.edge_count() > 1500, "should get close to the budget");
    }
}
