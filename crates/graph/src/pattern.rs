//! Pattern graphs `Q = (V_Q, E_Q, L_Q)` for graph simulation.
//!
//! Patterns are tiny (the paper fixes `|Q| = (4, 6)`), immutable, and
//! directed. They use dense `usize` node ids and store both adjacency
//! directions because the simulation fixpoint consults pattern successors
//! while its change propagation walks pattern predecessors.

use crate::ids::Label;

/// An immutable directed pattern graph for graph simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    labels: Vec<Label>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
}

impl Pattern {
    /// Builds a pattern from node labels and directed edges.
    ///
    /// # Panics
    /// Panics if an edge endpoint is out of range or duplicated.
    pub fn new(labels: Vec<Label>, edges: &[(usize, usize)]) -> Self {
        let n = labels.len();
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "pattern edge ({u},{v}) out of range");
            assert!(!out[u].contains(&v), "duplicate pattern edge ({u},{v})");
            out[u].push(v);
            inn[v].push(u);
        }
        for adj in out.iter_mut().chain(inn.iter_mut()) {
            adj.sort_unstable();
        }
        Pattern { labels, out, inn }
    }

    /// Number of pattern nodes `|V_Q|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of pattern edges `|E_Q|`.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Label of pattern node `u`.
    #[inline]
    pub fn label(&self, u: usize) -> Label {
        self.labels[u]
    }

    /// Pattern successors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: usize) -> &[usize] {
        &self.out[u]
    }

    /// Pattern predecessors of `u`.
    #[inline]
    pub fn in_neighbors(&self, u: usize) -> &[usize] {
        &self.inn[u]
    }

    /// All pattern edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_directions() {
        // The paper's Fig. 2(b) pattern: a -> b -> c, with c -> b making a cycle.
        let p = Pattern::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 1)]);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.out_neighbors(1), &[2]);
        assert_eq!(p.in_neighbors(1), &[0, 2]);
        let mut edges: Vec<_> = p.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        Pattern::new(vec![0, 1], &[(0, 2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edges() {
        Pattern::new(vec![0, 1], &[(0, 1), (0, 1)]);
    }
}
