//! Self-contained deterministic PRNG.
//!
//! The workspace must build and test on machines with no access to
//! crates.io, so the generators, workloads and randomized tests cannot
//! depend on the external `rand` crate. This module provides the small
//! slice of its API the workspace actually uses — seeding, ranged
//! sampling, Bernoulli draws and shuffling — on top of SplitMix64
//! (Steele, Lea & Flood, OOPSLA'14), which is statistically solid for
//! workload generation and, crucially, **stable**: a seed produces the
//! same stream on every platform and in every future build, so seeded
//! tests and experiments stay reproducible.
//!
//! This is a workload/testing PRNG, not a cryptographic one.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 generator. Mirrors the `rand` idioms used across the
/// workspace (`seed_from_u64`, `gen_range`, `gen_bool`) so call sites read
/// the same as they would against `rand::rngs::StdRng`.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Distinct seeds yield
    /// uncorrelated streams (the whole point of SplitMix64's design).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero. Uses the
    /// widening-multiply reduction, whose bias at 64-bit range widths is
    /// immaterial for workload generation.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from a range, mirroring `rand::Rng::gen_range`.
    /// Supports half-open and inclusive integer ranges plus `Range<f64>`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// A range [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize);

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample(self, rng: &mut SplitMix64) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl SampleRange for RangeInclusive<i32> {
    type Output = i32;
    fn sample(self, rng: &mut SplitMix64) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi as i64 - lo as i64) as u64 + 1;
        (lo as i64 + rng.below(span) as i64) as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference outputs of SplitMix64 with seed 1234567, from the
        // published algorithm; pins the stream against accidental edits.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 drawn");
        for _ in 0..200 {
            let w = rng.gen_range(1u32..=10);
            assert!((1..=10).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits} of ~3000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements virtually never stay put");
    }
}
