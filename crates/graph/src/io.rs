//! Plain-text graph and update-stream I/O.
//!
//! The format is the whitespace-separated edge list used by the SNAP /
//! KONECT dumps the paper's datasets come from, extended with optional
//! weights and a label header, so real downloads can be dropped in as a
//! replacement for the synthetic stand-ins:
//!
//! ```text
//! # comment lines start with '#'
//! % or '%' (KONECT style)
//! n <node-count>            (optional; otherwise inferred)
//! l <node-id> <label>       (optional label lines)
//! <src> <dst> [weight]      (edge lines; weight defaults to 1)
//! ```
//!
//! Update streams use one op per line: `+ src dst [weight]` or
//! `- src dst`.

use crate::ids::{NodeId, Weight};
use crate::store::DynamicGraph;
use crate::update::UpdateBatch;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parse error with line context.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from graph I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// Malformed input.
    Parse(ParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Parse(e) => write!(f, "parse: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Reads an edge-list graph.
pub fn read_graph<R: Read>(reader: R, directed: bool) -> Result<DynamicGraph, IoError> {
    let mut edges: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    let mut labels: Vec<(NodeId, u32)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    let mut max_node: NodeId = 0;

    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        // A trimmed non-empty line always yields a token, but a parse
        // error beats a panic if the filtering above ever drifts.
        let first = it
            .next()
            .ok_or_else(|| perr(lineno, "expected `n`, `l`, or an edge line"))?;
        match first {
            "n" => {
                let n: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| perr(lineno, "expected `n <count>`"))?;
                declared_n = Some(n);
            }
            "l" => {
                let v: NodeId = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| perr(lineno, "expected `l <node> <label>`"))?;
                let l: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| perr(lineno, "expected `l <node> <label>`"))?;
                labels.push((v, l));
                max_node = max_node.max(v);
            }
            tok => {
                let u: NodeId = tok
                    .parse()
                    .map_err(|_| perr(lineno, format!("bad node id `{tok}`")))?;
                let v: NodeId = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| perr(lineno, "expected `<src> <dst> [w]`"))?;
                let w: Weight = match it.next() {
                    Some(t) => t
                        .parse()
                        .map_err(|_| perr(lineno, format!("bad weight `{t}`")))?,
                    None => 1,
                };
                max_node = max_node.max(u).max(v);
                edges.push((u, v, w));
            }
        }
    }

    let n = declared_n.unwrap_or(0).max(max_node as usize + 1);
    let mut g = DynamicGraph::new(directed, n);
    for (v, l) in labels {
        g.set_label(v, l);
    }
    for (u, v, w) in edges {
        g.insert_edge(u, v, w);
    }
    Ok(g)
}

/// Writes a graph in the edge-list format (round-trips with
/// [`read_graph`]).
pub fn write_graph<W: Write>(g: &DynamicGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# incgraph edge list; directed={}", g.is_directed())?;
    writeln!(w, "n {}", g.node_count())?;
    for v in g.nodes() {
        if g.label(v) != 0 {
            writeln!(w, "l {} {}", v, g.label(v))?;
        }
    }
    for (u, v, wt) in g.edges() {
        writeln!(w, "{u} {v} {wt}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an update stream (`+ u v [w]` / `- u v` lines).
pub fn read_updates<R: Read>(reader: R) -> Result<UpdateBatch, IoError> {
    let mut batch = UpdateBatch::new();
    let mut r = BufReader::new(reader);
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        // Same defensive stance as `read_graph`: never panic on input.
        let op = it
            .next()
            .ok_or_else(|| perr(lineno, "expected `(+|-) <src> <dst> [w]`"))?;
        let u: NodeId = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| perr(lineno, "expected `(+|-) <src> <dst> [w]`"))?;
        let v: NodeId = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| perr(lineno, "expected `(+|-) <src> <dst> [w]`"))?;
        match op {
            "+" => {
                let w: Weight = match it.next() {
                    Some(t) => t
                        .parse()
                        .map_err(|_| perr(lineno, format!("bad weight `{t}`")))?,
                    None => 1,
                };
                batch.insert(u, v, w);
            }
            "-" => {
                batch.delete(u, v);
            }
            other => return Err(perr(lineno, format!("unknown op `{other}`"))),
        }
    }
    Ok(batch)
}

/// Writes an update stream (round-trips with [`read_updates`]).
pub fn write_updates<W: Write>(batch: &UpdateBatch, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for u in batch.updates() {
        match *u {
            crate::update::Update::Insert { src, dst, weight } => {
                writeln!(w, "+ {src} {dst} {weight}")?;
            }
            crate::update::Update::Delete { src, dst } => {
                writeln!(w, "- {src} {dst}")?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_roundtrip() {
        let mut g = DynamicGraph::new(true, 5);
        g.set_label(2, 7);
        g.insert_edge(0, 1, 3);
        g.insert_edge(4, 2, 9);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(&buf[..], true).unwrap();
        assert_eq!(h.node_count(), 5);
        assert_eq!(h.label(2), 7);
        assert_eq!(h.edge_weight(0, 1), Some(3));
        assert_eq!(h.edge_weight(4, 2), Some(9));
        assert_eq!(h.edge_count(), 2);
    }

    #[test]
    fn reads_snap_style_lists() {
        let text = "# Directed graph\n% konect header\n3 7\n7 3\n1 2 5\n";
        let g = read_graph(text.as_bytes(), true).unwrap();
        assert_eq!(g.node_count(), 8);
        assert!(g.has_edge(3, 7) && g.has_edge(7, 3));
        assert_eq!(g.edge_weight(1, 2), Some(5));
    }

    #[test]
    fn updates_roundtrip() {
        let mut b = UpdateBatch::new();
        b.insert(1, 2, 4).delete(3, 0).insert(0, 5, 1);
        let mut buf = Vec::new();
        write_updates(&b, &mut buf).unwrap();
        let b2 = read_updates(&buf[..]).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_graph("0 1\nnot-a-node x\n".as_bytes(), true).unwrap_err();
        match err {
            IoError::Parse(p) => assert_eq!(p.line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_updates("+ 0 1\n? 2 3\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse(p) => {
                assert_eq!(p.line, 2);
                assert!(p.message.contains("unknown op"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn declared_node_count_wins_when_larger() {
        let g = read_graph("n 10\n0 1\n".as_bytes(), false).unwrap();
        assert_eq!(g.node_count(), 10);
    }
}
