//! Immutable CSR (compressed sparse row) snapshots.
//!
//! The mutable [`DynamicGraph`](crate::store::DynamicGraph) pays one heap
//! allocation per adjacency list — the right trade for update streams,
//! the wrong one for read-heavy batch passes that scan the whole graph
//! (triangle counting, full fixpoint runs, analytics embedding this
//! library next to an existing batch pipeline). [`CsrSnapshot`] freezes a
//! graph into two flat arrays with `O(1)` row slicing; it is a *view*
//! type: take a snapshot, scan, drop.

use crate::ids::{Label, NodeId, Weight};
use crate::store::DynamicGraph;

/// An immutable CSR image of a graph's out-adjacency (plus in-adjacency
/// for directed graphs).
#[derive(Clone, Debug)]
pub struct CsrSnapshot {
    directed: bool,
    labels: Vec<Label>,
    out_offsets: Vec<usize>,
    out_targets: Vec<(NodeId, Weight)>,
    in_offsets: Vec<usize>,
    in_targets: Vec<(NodeId, Weight)>,
}

impl CsrSnapshot {
    /// Freezes `g` into CSR form.
    pub fn new(g: &DynamicGraph) -> Self {
        let n = g.node_count();
        // Exact arc counts up front: the row copies below must never
        // trigger a doubling realloc (they dominate snapshot cost on
        // batch-over-CSR paths).
        let arcs = if g.is_directed() {
            g.edge_count()
        } else {
            2 * g.edge_count()
        };
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(arcs);
        out_offsets.push(0);
        for v in 0..n as NodeId {
            out_targets.extend_from_slice(g.out_neighbors(v));
            out_offsets.push(out_targets.len());
        }
        let (in_offsets, in_targets) = if g.is_directed() {
            let mut offs = Vec::with_capacity(n + 1);
            let mut tgts = Vec::with_capacity(arcs);
            offs.push(0);
            for v in 0..n as NodeId {
                tgts.extend_from_slice(g.in_neighbors(v));
                offs.push(tgts.len());
            }
            (offs, tgts)
        } else {
            (Vec::new(), Vec::new())
        };
        CsrSnapshot {
            directed: g.is_directed(),
            labels: (0..n as NodeId).map(|v| g.label(v)).collect(),
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed arcs stored (undirected edges count twice).
    pub fn arc_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// Out-neighbors of `v`, sorted by target (a flat-array slice).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v` (same slice as out for undirected graphs).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        if self.directed {
            let v = v as usize;
            &self.in_targets[self.in_offsets[v]..self.in_offsets[v + 1]]
        } else {
            self.out_neighbors(v)
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// Resident bytes of the snapshot.
    pub fn space_bytes(&self) -> usize {
        use std::mem::size_of;
        self.labels.capacity() * size_of::<Label>()
            + (self.out_offsets.capacity() + self.in_offsets.capacity()) * size_of::<usize>()
            + (self.out_targets.capacity() + self.in_targets.capacity())
                * size_of::<(NodeId, Weight)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_adjacency() {
        let g = crate::gen::uniform(200, 900, true, 10, 5, 4);
        let csr = CsrSnapshot::new(&g);
        assert_eq!(csr.node_count(), 200);
        assert_eq!(csr.arc_count(), g.edge_count());
        for v in 0..200u32 {
            assert_eq!(csr.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(csr.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(csr.label(v), g.label(v));
            assert_eq!(csr.out_degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn undirected_snapshot_shares_out_and_in() {
        let g = crate::gen::grid(6, 6, 5, 1);
        let csr = CsrSnapshot::new(&g);
        assert!(!csr.is_directed());
        assert_eq!(csr.arc_count(), 2 * g.edge_count(), "mirrored arcs");
        for v in 0..36u32 {
            assert_eq!(csr.in_neighbors(v), csr.out_neighbors(v));
        }
    }

    #[test]
    fn snapshot_is_decoupled_from_source() {
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 9);
        let csr = CsrSnapshot::new(&g);
        g.delete_edge(0, 1);
        assert_eq!(csr.out_neighbors(0), &[(1, 9)], "snapshot unaffected");
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = DynamicGraph::new(false, 4);
        let csr = CsrSnapshot::new(&g);
        assert_eq!(csr.arc_count(), 0);
        assert!(csr.out_neighbors(2).is_empty());
    }
}
