//! One construction path for the seven query classes.
//!
//! Every driver in the repo — the CLI, the differential oracle, the
//! crash oracle, durable recovery — used to carry its own seven-way
//! `match` over the class enum to pick the right `batch`/`batch_par`
//! constructor and thread the policy/audit arguments through. This
//! module centralizes that: [`QueryClass`] names the class,
//! [`Session::builder`] collects the query parameters
//! (source, pattern, threads) and the execution options
//! ([`ExecOptions`]: policy, audit, shards), and [`Session::build`]
//! produces a ready state holding its own options.
//!
//! A [`Session`] is itself an [`IncrementalState`] (by delegation to the
//! concrete state), so everything that consumed
//! `Box<dyn IncrementalState>` — the durable pipeline, the crash oracle —
//! consumes a `Session` unchanged, and its durable essence is
//! byte-identical to the bare state's. On top of the trait it exposes
//! the class-aware extras the oracles need: [`Session::update_guarded`]
//! (the hardened path under the stored options) and [`Session::digest`]
//! (the canonical value digest the differential oracle compares).

use crate::{
    update_with, BcState, CcState, DfsState, ExecOptions, IncrementalState, LccState, ReachState,
    SimState, SsspState, StateLoadError,
};
use incgraph_core::audit::{AuditReport, FixpointAudit};
use incgraph_core::engine::RunStats;
use incgraph_core::fallback::FallbackPolicy;
use incgraph_core::metrics::BoundednessReport;
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId, Pattern};

/// The seven query classes, in canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryClass {
    /// Single-source shortest paths.
    Sssp,
    /// Connected components.
    Cc,
    /// Graph simulation.
    Sim,
    /// Source reachability.
    Reach,
    /// Local clustering coefficient.
    Lcc,
    /// Depth-first search forest.
    Dfs,
    /// Biconnectivity (lowpoints, articulation points, bridges).
    Bc,
}

impl QueryClass {
    /// All seven classes, canonical order.
    pub const ALL: [QueryClass; 7] = [
        QueryClass::Sssp,
        QueryClass::Cc,
        QueryClass::Sim,
        QueryClass::Reach,
        QueryClass::Lcc,
        QueryClass::Dfs,
        QueryClass::Bc,
    ];

    /// Short lowercase name, matching the CLI class argument.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Sssp => "sssp",
            QueryClass::Cc => "cc",
            QueryClass::Sim => "sim",
            QueryClass::Reach => "reach",
            QueryClass::Lcc => "lcc",
            QueryClass::Dfs => "dfs",
            QueryClass::Bc => "bc",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<QueryClass> {
        QueryClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Whether the class resumes through the sharded parallel engine
    /// (DFS and BC are inherently sequential).
    pub fn par_capable(self) -> bool {
        !matches!(self, QueryClass::Dfs | QueryClass::Bc)
    }

    /// Whether the class runs through the generic worklist engine, whose
    /// work accounting supports the strict `|AFF_diff| ≤ inspected`
    /// boundedness check (DFS/BC traverse outside the engine and report
    /// coarser counters).
    pub fn engine_backed(self) -> bool {
        self.par_capable()
    }

    /// Whether the class is only defined on undirected graphs (LCC's
    /// triangle counting and BC's biconnectivity both are).
    pub fn requires_undirected(self) -> bool {
        matches!(self, QueryClass::Lcc | QueryClass::Bc)
    }

    /// Whether the class is rooted at a source node (and so needs the
    /// builder's `source` to name a real node).
    pub fn source_rooted(self) -> bool {
        matches!(self, QueryClass::Sssp | QueryClass::Reach)
    }
}

/// Why a [`SessionBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// [`QueryClass::Sim`] needs a pattern; none was supplied.
    MissingPattern,
    /// The class is only defined on undirected graphs
    /// ([`QueryClass::requires_undirected`]) but the graph is directed.
    /// Every driver used to carry this gate itself; the builder now
    /// refuses instead of silently computing a meaningless answer.
    RequiresUndirected(QueryClass),
    /// A [`source_rooted`](QueryClass::source_rooted) class was given a
    /// source beyond the graph's node range. The per-class specs assert
    /// on this; the builder turns it into a typed refusal so a remote
    /// `REGISTER` with a bad source cannot panic the server.
    SourceOutOfRange { source: NodeId, nodes: usize },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingPattern => write!(f, "sim session built without a pattern"),
            SessionError::RequiresUndirected(c) => write!(
                f,
                "{} is only defined on undirected graphs, but the graph is directed",
                c.name()
            ),
            SessionError::SourceOutOfRange { source, nodes } => write!(
                f,
                "source {source} is out of range for a graph of {nodes} node(s)"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Collects a class's query parameters and execution options before the
/// batch fixpoint is run. See the module docs; obtained from
/// [`Session::builder`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    class: QueryClass,
    source: NodeId,
    pattern: Option<Pattern>,
    threads: usize,
    policy: FallbackPolicy,
    audit: Option<FixpointAudit>,
    micro_batch: bool,
}

impl SessionBuilder {
    /// Source node for SSSP/Reach (ignored by the other classes;
    /// defaults to node 0).
    pub fn source(mut self, source: NodeId) -> Self {
        self.source = source;
        self
    }

    /// Pattern for Sim (required for that class, ignored by the rest).
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Worker shards. `> 1` on a [`par_capable`](QueryClass::par_capable)
    /// class builds the initial fixpoint through the sharded parallel
    /// engine and keeps resuming on that many shards; otherwise the
    /// sequential engine runs (the default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Degradation policy for guarded updates (default
    /// [`FallbackPolicy::default`]).
    pub fn policy(mut self, policy: FallbackPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Post-update fixpoint audit for guarded updates (default: none).
    pub fn audit(mut self, audit: FixpointAudit) -> Self {
        self.audit = Some(audit);
        self
    }

    /// Canonicalize each presented ΔG through the micro-batch coalescer
    /// before the class update sees it (default: off). See
    /// [`ExecOptions::micro_batch`].
    pub fn micro_batch(mut self, on: bool) -> Self {
        self.micro_batch = on;
        self
    }

    /// Runs the batch fixpoint on `g` and returns the live session.
    pub fn build(self, g: &DynamicGraph) -> Result<Session, SessionError> {
        if self.class.requires_undirected() && g.is_directed() {
            return Err(SessionError::RequiresUndirected(self.class));
        }
        if self.class.source_rooted() && self.source as usize >= g.node_count() {
            return Err(SessionError::SourceOutOfRange {
                source: self.source,
                nodes: g.node_count(),
            });
        }
        let par = self.threads > 1 && self.class.par_capable();
        let state = match self.class {
            QueryClass::Sssp => {
                if par {
                    ClassState::Sssp(SsspState::batch_par(g, self.source, self.threads).0)
                } else {
                    ClassState::Sssp(SsspState::batch(g, self.source).0)
                }
            }
            QueryClass::Cc => {
                if par {
                    ClassState::Cc(CcState::batch_par(g, self.threads).0)
                } else {
                    ClassState::Cc(CcState::batch(g).0)
                }
            }
            QueryClass::Sim => {
                let p = self.pattern.ok_or(SessionError::MissingPattern)?;
                if par {
                    ClassState::Sim(SimState::batch_par(g, p, self.threads).0)
                } else {
                    ClassState::Sim(SimState::batch(g, p).0)
                }
            }
            QueryClass::Reach => {
                if par {
                    ClassState::Reach(ReachState::batch_par(g, self.source, self.threads).0)
                } else {
                    ClassState::Reach(ReachState::batch(g, self.source).0)
                }
            }
            QueryClass::Lcc => {
                if par {
                    ClassState::Lcc(LccState::batch_par(g, self.threads).0)
                } else {
                    ClassState::Lcc(LccState::batch(g).0)
                }
            }
            QueryClass::Dfs => ClassState::Dfs(DfsState::batch(g).0),
            QueryClass::Bc => ClassState::Bc(BcState::batch(g).0),
        };
        Ok(Session {
            class: self.class,
            // `batch_par` already configured the state's resume shards,
            // so the options don't need to re-apply them on every update.
            exec: ExecOptions {
                threads: None,
                policy: self.policy,
                audit: self.audit,
                micro_batch: self.micro_batch,
            },
            state,
        })
    }
}

/// One concrete algorithm state, tagged by class. Kept private: the
/// class-aware surface (digests, guarded updates) lives on [`Session`].
enum ClassState {
    Sssp(SsspState),
    Cc(CcState),
    Sim(SimState),
    Reach(ReachState),
    Lcc(LccState),
    Dfs(DfsState),
    Bc(BcState),
}

/// A live query-class state plus the [`ExecOptions`] it runs under.
/// Built by [`Session::builder`]; see the module docs.
pub struct Session {
    class: QueryClass,
    exec: ExecOptions,
    state: ClassState,
}

impl Session {
    /// Starts a builder for `class` with the defaults: source 0, no
    /// pattern, sequential, default policy, no audit.
    pub fn builder(class: QueryClass) -> SessionBuilder {
        SessionBuilder {
            class,
            source: 0,
            pattern: None,
            threads: 1,
            policy: FallbackPolicy::default(),
            audit: None,
            micro_batch: false,
        }
    }

    /// The session's query class.
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The execution options guarded updates run under.
    pub fn options(&self) -> &ExecOptions {
        &self.exec
    }

    /// Replaces the execution options for subsequent guarded updates.
    pub fn set_options(&mut self, exec: ExecOptions) {
        self.exec = exec;
    }

    /// One hardened incremental step under the stored options — the
    /// session-flavored [`update_with`](crate::update_with).
    pub fn update_guarded(
        &mut self,
        g: &DynamicGraph,
        applied: &AppliedBatch,
    ) -> BoundednessReport {
        let exec = self.exec;
        update_with(self, g, applied, &exec)
    }

    fn inner(&self) -> &dyn IncrementalState {
        match &self.state {
            ClassState::Sssp(s) => s,
            ClassState::Cc(s) => s,
            ClassState::Sim(s) => s,
            ClassState::Reach(s) => s,
            ClassState::Lcc(s) => s,
            ClassState::Dfs(s) => s,
            ClassState::Bc(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn IncrementalState {
        match &mut self.state {
            ClassState::Sssp(s) => s,
            ClassState::Cc(s) => s,
            ClassState::Sim(s) => s,
            ClassState::Reach(s) => s,
            ClassState::Lcc(s) => s,
            ClassState::Dfs(s) => s,
            ClassState::Bc(s) => s,
        }
    }

    /// Canonical value digest: one `u64` stream, index-aligned to the
    /// class's status variables where the class is engine-backed (the
    /// basis of the differential oracle's AFF diff), value-complete for
    /// all seven.
    pub fn digest(&self, g: &DynamicGraph) -> Vec<u64> {
        let n = g.node_count();
        match &self.state {
            ClassState::Sssp(s) => s.distances().to_vec(),
            ClassState::Cc(s) => s.components().iter().map(|&c| c as u64).collect(),
            ClassState::Sim(s) => {
                let q = s.pattern().node_count();
                let mut out = Vec::with_capacity(n * q);
                for v in 0..n as NodeId {
                    for u in 0..q {
                        out.push(s.matches(g, v, u) as u64);
                    }
                }
                out
            }
            ClassState::Reach(s) => s.reached().iter().map(|&b| b as u64).collect(),
            ClassState::Lcc(s) => (0..n as NodeId)
                .map(|v| (s.degree(v) << 32) | (s.triangles(v) & 0xffff_ffff))
                .collect(),
            ClassState::Dfs(s) => (0..n as NodeId)
                .flat_map(|v| [s.first(v) as u64, s.last(v) as u64, s.parent(v) as u64])
                .collect(),
            ClassState::Bc(s) => {
                let mut out: Vec<u64> = (0..n as NodeId)
                    .map(|v| ((s.low(v) as u64) << 1) | s.is_articulation(g, v) as u64)
                    .collect();
                for (a, b) in s.bridges(g) {
                    out.push(((a as u64) << 32) | b as u64);
                }
                out
            }
        }
    }
}

impl IncrementalState for Session {
    fn name(&self) -> &'static str {
        self.class.name()
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        self.inner().total_vars(g)
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.inner_mut().update(g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        self.inner_mut().recompute(g)
    }

    fn audit(&self, g: &DynamicGraph, audit: &FixpointAudit) -> AuditReport {
        self.inner().audit(g, audit)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.inner_mut().set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        self.inner_mut().set_threads(threads);
    }

    fn space_bytes(&self) -> usize {
        self.inner().space_bytes()
    }

    fn save_state(&self) -> Vec<u8> {
        self.inner().save_state()
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        self.inner_mut().load_state(g, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(false, n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, 1);
        }
        g.insert_edge(0, n as u32 / 2, 3);
        g
    }

    #[test]
    fn builder_covers_all_seven_classes() {
        let g = ring(12);
        for class in QueryClass::ALL {
            let session = Session::builder(class)
                .source(0)
                .pattern(Pattern::new(vec![0], &[]))
                .build(&g)
                .expect("build");
            assert_eq!(session.class(), class);
            assert_eq!(session.name(), class.name());
            assert!(!session.digest(&g).is_empty());
            assert!(session.space_bytes() > 0);
        }
    }

    #[test]
    fn sim_without_pattern_is_rejected() {
        let g = ring(8);
        assert_eq!(
            Session::builder(QueryClass::Sim).build(&g).err(),
            Some(SessionError::MissingPattern)
        );
    }

    #[test]
    fn parallel_build_matches_sequential_digest() {
        let g = ring(16);
        for class in QueryClass::ALL.into_iter().filter(|c| c.par_capable()) {
            let seq = Session::builder(class)
                .pattern(Pattern::new(vec![0], &[]))
                .build(&g)
                .unwrap();
            let par = Session::builder(class)
                .pattern(Pattern::new(vec![0], &[]))
                .threads(2)
                .build(&g)
                .unwrap();
            assert_eq!(seq.digest(&g), par.digest(&g), "{}", class.name());
        }
    }

    #[test]
    fn guarded_update_through_the_session_stays_incremental() {
        let g0 = ring(16);
        let mut g = g0.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 10, 2).delete(5, 6);
        let applied = batch.apply(&mut g);
        for class in QueryClass::ALL {
            let mut session = Session::builder(class)
                .pattern(Pattern::new(vec![0], &[]))
                .audit(FixpointAudit::full())
                .build(&g0)
                .unwrap();
            let report = session.update_guarded(&g, &applied);
            assert!(
                !report.fell_back(),
                "{}: {:?}",
                class.name(),
                report.fallback
            );
        }
    }

    #[test]
    fn session_essence_matches_the_bare_state() {
        // The durable pipeline swaps `Box<dyn IncrementalState>`s for
        // sessions; checkpoints written by one must restore via the other.
        let g = ring(10);
        let session = Session::builder(QueryClass::Cc).build(&g).unwrap();
        let bare = CcState::batch(&g).0;
        assert_eq!(session.save_state(), IncrementalState::save_state(&bare));
    }

    #[test]
    fn class_names_roundtrip() {
        for c in QueryClass::ALL {
            assert_eq!(QueryClass::from_name(c.name()), Some(c));
        }
        assert_eq!(QueryClass::from_name("nope"), None);
    }
}
