//! One construction path for the seven query classes.
//!
//! Every driver in the repo — the CLI, the differential oracle, the
//! crash oracle, durable recovery — used to carry its own seven-way
//! `match` over the class enum to pick the right `batch`/`batch_par`
//! constructor and thread the policy/audit arguments through. This
//! module centralizes that: [`QueryClass`] names the class,
//! [`Session::builder`] collects the query parameters
//! (source, pattern, threads) and the execution options
//! ([`ExecOptions`]: policy, audit, shards), and [`Session::build`]
//! produces a ready state holding its own options.
//!
//! A [`Session`] is itself an [`IncrementalState`] (by delegation to the
//! concrete state), so everything that consumed
//! `Box<dyn IncrementalState>` — the durable pipeline, the crash oracle —
//! consumes a `Session` unchanged, and its durable essence is
//! byte-identical to the bare state's. On top of the trait it exposes
//! the class-aware extras the oracles need: [`Session::update_guarded`]
//! (the hardened path under the stored options) and [`Session::digest`]
//! (the canonical value digest the differential oracle compares).

use crate::output::{NodeChange, OutputChange, OutputDelta, OutputSnapshot, TrackedUpdate};
use crate::{
    update_with, BcState, CcState, DfsState, ExecOptions, IncrementalState, LccState, ReachState,
    SimState, SsspState, StateLoadError,
};
use incgraph_core::audit::{AuditReport, FixpointAudit};
use incgraph_core::engine::RunStats;
use incgraph_core::fallback::FallbackPolicy;
use incgraph_core::metrics::BoundednessReport;
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId, Pattern};
use std::collections::BTreeMap;

/// The seven query classes, in canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryClass {
    /// Single-source shortest paths.
    Sssp,
    /// Connected components.
    Cc,
    /// Graph simulation.
    Sim,
    /// Source reachability.
    Reach,
    /// Local clustering coefficient.
    Lcc,
    /// Depth-first search forest.
    Dfs,
    /// Biconnectivity (lowpoints, articulation points, bridges).
    Bc,
}

impl QueryClass {
    /// All seven classes, canonical order.
    pub const ALL: [QueryClass; 7] = [
        QueryClass::Sssp,
        QueryClass::Cc,
        QueryClass::Sim,
        QueryClass::Reach,
        QueryClass::Lcc,
        QueryClass::Dfs,
        QueryClass::Bc,
    ];

    /// Short lowercase name, matching the CLI class argument.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Sssp => "sssp",
            QueryClass::Cc => "cc",
            QueryClass::Sim => "sim",
            QueryClass::Reach => "reach",
            QueryClass::Lcc => "lcc",
            QueryClass::Dfs => "dfs",
            QueryClass::Bc => "bc",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<QueryClass> {
        QueryClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Whether the class resumes through the sharded parallel engine
    /// (DFS and BC are inherently sequential).
    pub fn par_capable(self) -> bool {
        !matches!(self, QueryClass::Dfs | QueryClass::Bc)
    }

    /// Whether the class runs through the generic worklist engine, whose
    /// work accounting supports the strict `|AFF_diff| ≤ inspected`
    /// boundedness check (DFS/BC traverse outside the engine and report
    /// coarser counters).
    pub fn engine_backed(self) -> bool {
        self.par_capable()
    }

    /// Whether the class is only defined on undirected graphs (LCC's
    /// triangle counting and BC's biconnectivity both are).
    pub fn requires_undirected(self) -> bool {
        matches!(self, QueryClass::Lcc | QueryClass::Bc)
    }

    /// Whether the class is rooted at a source node (and so needs the
    /// builder's `source` to name a real node).
    pub fn source_rooted(self) -> bool {
        matches!(self, QueryClass::Sssp | QueryClass::Reach)
    }
}

/// Why a [`SessionBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// [`QueryClass::Sim`] needs a pattern; none was supplied.
    MissingPattern,
    /// The class is only defined on undirected graphs
    /// ([`QueryClass::requires_undirected`]) but the graph is directed.
    /// Every driver used to carry this gate itself; the builder now
    /// refuses instead of silently computing a meaningless answer.
    RequiresUndirected(QueryClass),
    /// A [`source_rooted`](QueryClass::source_rooted) class was given a
    /// source beyond the graph's node range. The per-class specs assert
    /// on this; the builder turns it into a typed refusal so a remote
    /// `REGISTER` with a bad source cannot panic the server.
    SourceOutOfRange { source: NodeId, nodes: usize },
    /// A builder option was supplied that the class does not consume —
    /// `source` on a class that is not [`source_rooted`]
    /// (QueryClass::source_rooted), or `pattern` on anything but
    /// [`QueryClass::Sim`]. The builder used to ignore these silently,
    /// which let a caller believe a parameter was in effect when it
    /// wasn't; it now refuses.
    OptionNotApplicable {
        /// The class being built.
        class: QueryClass,
        /// The offending option (`"source"` or `"pattern"`).
        option: &'static str,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingPattern => write!(f, "sim session built without a pattern"),
            SessionError::RequiresUndirected(c) => write!(
                f,
                "{} is only defined on undirected graphs, but the graph is directed",
                c.name()
            ),
            SessionError::SourceOutOfRange { source, nodes } => write!(
                f,
                "source {source} is out of range for a graph of {nodes} node(s)"
            ),
            SessionError::OptionNotApplicable { class, option } => {
                write!(f, "{} does not take a `{option}` option", class.name())
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Collects a class's query parameters and execution options before the
/// batch fixpoint is run. See the module docs; obtained from
/// [`Session::builder`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    class: QueryClass,
    source: Option<NodeId>,
    pattern: Option<Pattern>,
    threads: usize,
    policy: FallbackPolicy,
    audit: Option<FixpointAudit>,
    micro_batch: bool,
}

impl SessionBuilder {
    /// Source node for SSSP/Reach. Only valid on a
    /// [`source_rooted`](QueryClass::source_rooted) class — [`build`]
    /// (Self::build) refuses with [`SessionError::OptionNotApplicable`]
    /// otherwise. Source-rooted classes default to node 0 when unset.
    pub fn source(mut self, source: NodeId) -> Self {
        self.source = Some(source);
        self
    }

    /// Pattern for Sim (required for that class). Only valid on
    /// [`QueryClass::Sim`] — [`build`](Self::build) refuses with
    /// [`SessionError::OptionNotApplicable`] otherwise.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Worker shards. `> 1` on a [`par_capable`](QueryClass::par_capable)
    /// class builds the initial fixpoint through the sharded parallel
    /// engine and keeps resuming on that many shards; otherwise the
    /// sequential engine runs (the default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Degradation policy for guarded updates (default
    /// [`FallbackPolicy::default`]).
    pub fn policy(mut self, policy: FallbackPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Post-update fixpoint audit for guarded updates (default: none).
    pub fn audit(mut self, audit: FixpointAudit) -> Self {
        self.audit = Some(audit);
        self
    }

    /// Canonicalize each presented ΔG through the micro-batch coalescer
    /// before the class update sees it (default: off). See
    /// [`ExecOptions::micro_batch`].
    pub fn micro_batch(mut self, on: bool) -> Self {
        self.micro_batch = on;
        self
    }

    /// Runs the batch fixpoint on `g` and returns the live session.
    pub fn build(self, g: &DynamicGraph) -> Result<Session, SessionError> {
        if self.source.is_some() && !self.class.source_rooted() {
            return Err(SessionError::OptionNotApplicable {
                class: self.class,
                option: "source",
            });
        }
        if self.pattern.is_some() && self.class != QueryClass::Sim {
            return Err(SessionError::OptionNotApplicable {
                class: self.class,
                option: "pattern",
            });
        }
        if self.class.requires_undirected() && g.is_directed() {
            return Err(SessionError::RequiresUndirected(self.class));
        }
        let source = self.source.unwrap_or(0);
        if self.class.source_rooted() && source as usize >= g.node_count() {
            return Err(SessionError::SourceOutOfRange {
                source,
                nodes: g.node_count(),
            });
        }
        let par = self.threads > 1 && self.class.par_capable();
        let state = match self.class {
            QueryClass::Sssp => {
                if par {
                    ClassState::Sssp(SsspState::batch_par(g, source, self.threads).0)
                } else {
                    ClassState::Sssp(SsspState::batch(g, source).0)
                }
            }
            QueryClass::Cc => {
                if par {
                    ClassState::Cc(CcState::batch_par(g, self.threads).0)
                } else {
                    ClassState::Cc(CcState::batch(g).0)
                }
            }
            QueryClass::Sim => {
                let p = self.pattern.ok_or(SessionError::MissingPattern)?;
                if par {
                    ClassState::Sim(SimState::batch_par(g, p, self.threads).0)
                } else {
                    ClassState::Sim(SimState::batch(g, p).0)
                }
            }
            QueryClass::Reach => {
                if par {
                    ClassState::Reach(ReachState::batch_par(g, source, self.threads).0)
                } else {
                    ClassState::Reach(ReachState::batch(g, source).0)
                }
            }
            QueryClass::Lcc => {
                if par {
                    ClassState::Lcc(LccState::batch_par(g, self.threads).0)
                } else {
                    ClassState::Lcc(LccState::batch(g).0)
                }
            }
            QueryClass::Dfs => ClassState::Dfs(DfsState::batch(g).0),
            QueryClass::Bc => ClassState::Bc(BcState::batch(g).0),
        };
        let snap = compute_snapshot(self.class, &state, g);
        let drained_len = snap.digest_len();
        Ok(Session {
            class: self.class,
            // `batch_par` already configured the state's resume shards,
            // so the options don't need to re-apply them on every update.
            exec: ExecOptions {
                threads: None,
                policy: self.policy,
                audit: self.audit,
                micro_batch: self.micro_batch,
            },
            state,
            snap,
            pending_entries: BTreeMap::new(),
            pending_nodes: BTreeMap::new(),
            drained_len,
            cand_buf: Vec::new(),
        })
    }
}

/// One concrete algorithm state, tagged by class. Kept private: the
/// class-aware surface (digests, guarded updates) lives on [`Session`].
enum ClassState {
    Sssp(SsspState),
    Cc(CcState),
    Sim(SimState),
    Reach(ReachState),
    Lcc(LccState),
    Dfs(DfsState),
    Bc(BcState),
}

/// Builds the full [`OutputSnapshot`] of a class state — the historical
/// digest computation, split into the per-node entry stream and the
/// class-specific tail so the two concatenate byte-identically.
fn compute_snapshot(class: QueryClass, state: &ClassState, g: &DynamicGraph) -> OutputSnapshot {
    let n = g.node_count();
    match state {
        ClassState::Sssp(s) => OutputSnapshot::new(class, n, 1, s.distances().to_vec(), vec![]),
        ClassState::Cc(s) => OutputSnapshot::new(
            class,
            n,
            1,
            s.components().iter().map(|&c| c as u64).collect(),
            vec![],
        ),
        ClassState::Sim(s) => {
            let q = s.pattern().node_count();
            let mut out = Vec::with_capacity(n * q);
            for v in 0..n as NodeId {
                for u in 0..q {
                    out.push(s.matches(g, v, u) as u64);
                }
            }
            OutputSnapshot::new(class, n, q, out, vec![])
        }
        ClassState::Reach(s) => OutputSnapshot::new(
            class,
            n,
            1,
            s.reached().iter().map(|&b| b as u64).collect(),
            vec![],
        ),
        ClassState::Lcc(s) => OutputSnapshot::new(
            class,
            n,
            1,
            (0..n as NodeId)
                .map(|v| (s.degree(v) << 32) | (s.triangles(v) & 0xffff_ffff))
                .collect(),
            vec![],
        ),
        ClassState::Dfs(s) => OutputSnapshot::new(
            class,
            n,
            3,
            (0..n as NodeId)
                .flat_map(|v| [s.first(v) as u64, s.last(v) as u64, s.parent(v) as u64])
                .collect(),
            vec![],
        ),
        ClassState::Bc(s) => OutputSnapshot::new(
            class,
            n,
            1,
            (0..n as NodeId)
                .map(|v| ((s.low(v) as u64) << 1) | s.is_articulation(g, v) as u64)
                .collect(),
            s.bridges(g)
                .into_iter()
                .map(|(a, b)| ((a as u64) << 32) | b as u64)
                .collect(),
        ),
    }
}

/// Recomputes one digest entry of an engine-backed class from its state.
/// Only called on the candidate-restricted refresh path, which DFS and
/// BC (full-rescan classes) never take.
fn entry_value(state: &ClassState, g: &DynamicGraph, i: usize) -> u64 {
    match state {
        ClassState::Sssp(s) => s.distances()[i],
        ClassState::Cc(s) => s.components()[i] as u64,
        ClassState::Sim(s) => {
            let q = s.pattern().node_count();
            s.matches(g, (i / q) as NodeId, i % q) as u64
        }
        ClassState::Reach(s) => s.reached()[i] as u64,
        ClassState::Lcc(s) => {
            let v = i as NodeId;
            (s.degree(v) << 32) | (s.triangles(v) & 0xffff_ffff)
        }
        ClassState::Dfs(_) | ClassState::Bc(_) => unreachable!("full-rescan classes"),
    }
}

/// A live query-class state plus the [`ExecOptions`] it runs under.
/// Built by [`Session::builder`]; see the module docs.
///
/// The session keeps its [`OutputSnapshot`] materialized and coherent:
/// every mutation routes through the [`IncrementalState`] impl (the
/// concrete state is private), whose overrides refresh the snapshot —
/// from the engine's changed-set after an incremental update, by full
/// rescan after a recompute, load, or geometry change — and accumulate
/// the net changes for the next [`take_delta`](Session::take_delta).
pub struct Session {
    class: QueryClass,
    exec: ExecOptions,
    state: ClassState,
    /// The materialized output, always current.
    snap: OutputSnapshot,
    /// Digest entry index → value at the last drain point, recorded on
    /// the entry's *first* change since that drain (so self-cancelling
    /// changes net out to nothing at drain time).
    pending_entries: BTreeMap<u32, u64>,
    /// Node → σ_x at the last drain point (`None` = node did not exist).
    pending_nodes: BTreeMap<u32, Option<u64>>,
    /// Digest length at the last drain point; a differing current length
    /// means the geometry changed and entry diffs are meaningless.
    drained_len: usize,
    /// Reusable candidate buffer for the restricted refresh.
    cand_buf: Vec<usize>,
}

impl Session {
    /// Starts a builder for `class` with the defaults: no source, no
    /// pattern, sequential, default policy, no audit.
    pub fn builder(class: QueryClass) -> SessionBuilder {
        SessionBuilder {
            class,
            source: None,
            pattern: None,
            threads: 1,
            policy: FallbackPolicy::default(),
            audit: None,
            micro_batch: false,
        }
    }

    /// The session's query class.
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The execution options guarded updates run under.
    pub fn options(&self) -> &ExecOptions {
        &self.exec
    }

    /// Replaces the execution options for subsequent guarded updates.
    pub fn set_options(&mut self, exec: ExecOptions) {
        self.exec = exec;
    }

    /// One hardened incremental step under the stored options — the
    /// session-flavored [`update_with`](crate::update_with) — returning
    /// both the boundedness report and the typed [`OutputDelta`] of the
    /// step. Fallback paths (budget abort → recompute, failed audit →
    /// recompute) still produce the correct *net* delta: each inner
    /// mutation accumulates into the pending maps and the drain compares
    /// first-old against last-new.
    pub fn update_guarded(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> TrackedUpdate {
        let exec = self.exec;
        let report = update_with(self, g, applied, &exec);
        TrackedUpdate {
            report,
            delta: self.take_delta(),
        }
    }

    /// The materialized output snapshot (always current).
    pub fn output(&self) -> &OutputSnapshot {
        &self.snap
    }

    /// Drains the changes accumulated since the previous drain point
    /// (session construction, the last `take_delta`, or the last
    /// [`update_guarded`](Self::update_guarded), which drains internally)
    /// into one net [`OutputDelta`]. Entries and nodes whose value
    /// returned to the drained-point value are filtered out, so a
    /// self-cancelling update yields an empty delta — matching the old
    /// "digests compare equal" behavior bit for bit.
    pub fn take_delta(&mut self) -> OutputDelta {
        let cur_len = self.snap.digest_len();
        let resync = (cur_len != self.drained_len).then_some(cur_len);
        let mut changes = Vec::new();
        if resync.is_none() {
            for (&i, &old) in &self.pending_entries {
                let new = self.snap.entry(i as usize);
                if new != old {
                    changes.push(OutputChange { index: i, old, new });
                }
            }
        }
        let mut nodes = Vec::new();
        for (&v, &old) in &self.pending_nodes {
            if (v as usize) < self.snap.nodes() {
                let new = self.snap.node_value(v as usize);
                if old != Some(new) {
                    nodes.push(NodeChange { node: v, old, new });
                }
            }
        }
        self.pending_entries.clear();
        self.pending_nodes.clear();
        self.drained_len = cur_len;
        OutputDelta {
            changes,
            nodes,
            resync,
        }
    }

    /// Refreshes the snapshot after an inner incremental update: the
    /// candidate-restricted path when the class is engine-backed and the
    /// geometry is unchanged (candidates = scope ∪ engine changed-set, a
    /// safe superset — see the per-class `delta_candidates`), a full
    /// rescan otherwise (DFS/BC, node growth).
    fn refresh_after_update(&mut self, g: &DynamicGraph) {
        let geometry_ok = self.snap.nodes() == g.node_count();
        let mut cand = std::mem::take(&mut self.cand_buf);
        cand.clear();
        if geometry_ok {
            match &self.state {
                ClassState::Sssp(s) => s.delta_candidates(&mut cand),
                ClassState::Cc(s) => s.delta_candidates(&mut cand),
                ClassState::Sim(s) => s.delta_candidates(&mut cand),
                ClassState::Reach(s) => s.delta_candidates(&mut cand),
                ClassState::Lcc(s) => s.delta_candidates(&mut cand),
                ClassState::Dfs(_) | ClassState::Bc(_) => {}
            }
        }
        if geometry_ok && !matches!(self.state, ClassState::Dfs(_) | ClassState::Bc(_)) {
            cand.sort_unstable();
            cand.dedup();
            let stride = self.snap.stride();
            for &i in &cand {
                if i >= self.snap.entries().len() {
                    continue; // stale log entry beyond the current stream
                }
                let new = entry_value(&self.state, g, i);
                let old = self.snap.entries()[i];
                if new != old {
                    let v = (i / stride) as u32;
                    self.pending_nodes
                        .entry(v)
                        .or_insert_with(|| Some(self.snap.node_value(v as usize)));
                    self.pending_entries.entry(i as u32).or_insert(old);
                    self.snap.set_entry(i, new);
                }
            }
        } else {
            self.full_refresh(g);
        }
        self.cand_buf = cand;
    }

    /// Recomputes the snapshot from scratch and accumulates every
    /// difference into the pending maps — the path for full-rescan
    /// classes, recomputes, state loads, and geometry changes.
    fn full_refresh(&mut self, g: &DynamicGraph) {
        let fresh = compute_snapshot(self.class, &self.state, g);
        let old = &self.snap;
        let common = old.digest_len().min(fresh.digest_len());
        for i in 0..common {
            if old.entry(i) != fresh.entry(i) {
                self.pending_entries.entry(i as u32).or_insert(old.entry(i));
            }
        }
        for v in 0..fresh.nodes() {
            let newv = fresh.node_value(v);
            let oldv = (v < old.nodes()).then(|| old.node_value(v));
            if oldv != Some(newv) {
                self.pending_nodes.entry(v as u32).or_insert(oldv);
            }
        }
        self.snap = fresh;
    }

    fn inner(&self) -> &dyn IncrementalState {
        match &self.state {
            ClassState::Sssp(s) => s,
            ClassState::Cc(s) => s,
            ClassState::Sim(s) => s,
            ClassState::Reach(s) => s,
            ClassState::Lcc(s) => s,
            ClassState::Dfs(s) => s,
            ClassState::Bc(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn IncrementalState {
        match &mut self.state {
            ClassState::Sssp(s) => s,
            ClassState::Cc(s) => s,
            ClassState::Sim(s) => s,
            ClassState::Reach(s) => s,
            ClassState::Lcc(s) => s,
            ClassState::Dfs(s) => s,
            ClassState::Bc(s) => s,
        }
    }

    /// Canonical value digest: one `u64` stream, index-aligned to the
    /// class's status variables where the class is engine-backed (the
    /// basis of the differential oracle's AFF diff), value-complete for
    /// all seven. A thin shim over the maintained [`OutputSnapshot`] —
    /// byte-identical to the historical per-call computation.
    pub fn digest(&self, _g: &DynamicGraph) -> Vec<u64> {
        self.snap.to_digest()
    }
}

impl IncrementalState for Session {
    fn name(&self) -> &'static str {
        self.class.name()
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        self.inner().total_vars(g)
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        let report = self.inner_mut().update(g, applied);
        self.refresh_after_update(g);
        report
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let stats = self.inner_mut().recompute(g);
        self.full_refresh(g);
        stats
    }

    fn audit(&self, g: &DynamicGraph, audit: &FixpointAudit) -> AuditReport {
        self.inner().audit(g, audit)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.inner_mut().set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        self.inner_mut().set_threads(threads);
    }

    fn space_bytes(&self) -> usize {
        self.inner().space_bytes()
    }

    fn save_state(&self) -> Vec<u8> {
        self.inner().save_state()
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        self.inner_mut().load_state(g, bytes)?;
        self.full_refresh(g);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(false, n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, 1);
        }
        g.insert_edge(0, n as u32 / 2, 3);
        g
    }

    /// Builder with exactly the options `class` consumes.
    fn builder_for(class: QueryClass) -> SessionBuilder {
        let mut b = Session::builder(class);
        if class.source_rooted() {
            b = b.source(0);
        }
        if class == QueryClass::Sim {
            b = b.pattern(Pattern::new(vec![0], &[]));
        }
        b
    }

    #[test]
    fn builder_covers_all_seven_classes() {
        let g = ring(12);
        for class in QueryClass::ALL {
            let session = builder_for(class).build(&g).expect("build");
            assert_eq!(session.class(), class);
            assert_eq!(session.name(), class.name());
            assert!(!session.digest(&g).is_empty());
            assert!(session.space_bytes() > 0);
        }
    }

    #[test]
    fn inapplicable_options_are_refused() {
        let g = ring(8);
        for class in QueryClass::ALL {
            if !class.source_rooted() {
                assert_eq!(
                    Session::builder(class).source(0).build(&g).err(),
                    Some(SessionError::OptionNotApplicable {
                        class,
                        option: "source"
                    }),
                    "{}",
                    class.name()
                );
            }
            if class != QueryClass::Sim {
                assert_eq!(
                    Session::builder(class)
                        .pattern(Pattern::new(vec![0], &[]))
                        .build(&g)
                        .err(),
                    Some(SessionError::OptionNotApplicable {
                        class,
                        option: "pattern"
                    }),
                    "{}",
                    class.name()
                );
            }
        }
    }

    #[test]
    fn sim_without_pattern_is_rejected() {
        let g = ring(8);
        assert_eq!(
            Session::builder(QueryClass::Sim).build(&g).err(),
            Some(SessionError::MissingPattern)
        );
    }

    #[test]
    fn parallel_build_matches_sequential_digest() {
        let g = ring(16);
        for class in QueryClass::ALL.into_iter().filter(|c| c.par_capable()) {
            let seq = builder_for(class).build(&g).unwrap();
            let par = builder_for(class).threads(2).build(&g).unwrap();
            assert_eq!(seq.digest(&g), par.digest(&g), "{}", class.name());
        }
    }

    #[test]
    fn guarded_update_through_the_session_stays_incremental() {
        let g0 = ring(16);
        let mut g = g0.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 10, 2).delete(5, 6);
        let applied = batch.apply(&mut g);
        for class in QueryClass::ALL {
            let mut session = builder_for(class)
                .audit(FixpointAudit::full())
                .build(&g0)
                .unwrap();
            let tracked = session.update_guarded(&g, &applied);
            assert!(
                !tracked.report.fell_back(),
                "{}: {:?}",
                class.name(),
                tracked.report.fallback
            );
        }
    }

    /// The delta contract, pinned against the ground truth the old
    /// callers computed by hand: applying the entry-level changes to the
    /// previous digest must reproduce the new digest exactly, for every
    /// class, across a multi-round churn schedule.
    #[test]
    fn output_delta_replays_the_digest_diff_for_all_classes() {
        use incgraph_graph::rng::SplitMix64;
        let g0 = ring(14);
        for class in QueryClass::ALL {
            let mut g = g0.clone();
            let mut session = builder_for(class).build(&g).unwrap();
            let mut prev = session.digest(&g);
            let mut rng = SplitMix64::seed_from_u64(0xD1F7 + class as u64);
            for round in 0..12 {
                let mut batch = UpdateBatch::new();
                for _ in 0..3 {
                    let u = rng.gen_range(0..14) as u32;
                    let v = rng.gen_range(0..14) as u32;
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v, 1 + rng.gen_range(0..4) as u32);
                    } else {
                        batch.delete(u, v);
                    }
                }
                let applied = batch.apply(&mut g);
                let tracked = session.update_guarded(&g, &applied);
                let now = session.digest(&g);
                let delta = &tracked.delta;
                if let Some(len) = delta.resync {
                    assert_eq!(len, now.len(), "{} round {round}", class.name());
                } else {
                    assert_eq!(prev.len(), now.len());
                    let mut replay = prev.clone();
                    for c in &delta.changes {
                        assert_eq!(replay[c.index as usize], c.old, "{}", class.name());
                        replay[c.index as usize] = c.new;
                    }
                    assert_eq!(replay, now, "{} round {round}", class.name());
                }
                // Node-level changes must agree with the snapshot's
                // per-node values on both ends.
                let snap = session.output();
                for nc in &delta.nodes {
                    assert_eq!(nc.new, snap.node_value(nc.node as usize));
                }
                assert_eq!(session.output().to_digest(), now);
                prev = now;
            }
        }
    }

    /// A self-cancelling guarded update (insert then delete of the same
    /// edge in one batch) produces an empty delta — the behavior DELTA
    /// consumers relied on when they compared digests.
    #[test]
    fn self_cancelling_update_yields_an_empty_delta() {
        let g0 = ring(10);
        for class in QueryClass::ALL {
            let mut g = g0.clone();
            let mut session = builder_for(class).build(&g).unwrap();
            let mut batch = UpdateBatch::new();
            batch.insert(1, 4, 2).delete(1, 4);
            let applied = batch.apply(&mut g);
            let tracked = session.update_guarded(&g, &applied);
            assert!(
                tracked.delta.is_empty(),
                "{}: {:?}",
                class.name(),
                tracked.delta
            );
        }
    }

    /// Parallel shards must produce the same delta as the sequential
    /// engine (the changed-set instrumentation covers both paths).
    #[test]
    fn parallel_update_produces_the_same_delta() {
        let g0 = ring(16);
        let mut g = g0.clone();
        let mut batch = UpdateBatch::new();
        batch.delete(3, 4).insert(0, 9, 1);
        let applied = batch.apply(&mut g);
        for class in QueryClass::ALL.into_iter().filter(|c| c.par_capable()) {
            let mut seq = builder_for(class).build(&g0).unwrap();
            let mut par = builder_for(class).threads(2).build(&g0).unwrap();
            let d_seq = seq.update_guarded(&g, &applied).delta;
            let d_par = par.update_guarded(&g, &applied).delta;
            assert_eq!(d_seq, d_par, "{}", class.name());
        }
    }

    #[test]
    fn session_essence_matches_the_bare_state() {
        // The durable pipeline swaps `Box<dyn IncrementalState>`s for
        // sessions; checkpoints written by one must restore via the other.
        let g = ring(10);
        let session = Session::builder(QueryClass::Cc).build(&g).unwrap();
        let bare = CcState::batch(&g).0;
        assert_eq!(session.save_state(), IncrementalState::save_state(&bare));
    }

    #[test]
    fn class_names_roundtrip() {
        for c in QueryClass::ALL {
            assert_eq!(QueryClass::from_name(c.name()), Some(c));
        }
        assert_eq!(QueryClass::from_name("nope"), None);
    }
}
