//! Local clustering coefficient: the `LCC_fp` fixpoint (paper §5.3) and
//! its deducible incremental algorithm `IncLCC`.
//!
//! Each node `v` carries **two** status variables: its degree `d_v` and
//! its triangle count `λ_v`; the coefficient is
//! `γ_v = 2 λ_v / (d_v (d_v − 1))`. Both update functions are pure
//! functions of the graph (their input sets contain no other status
//! variables), so the dependency graph has no edges and the fixpoint
//! converges in one round.
//!
//! LCC is **not** contracting (counts move both ways), so Theorem 3 does
//! not apply; instead `IncLCC` is deduced by the Theorem 1 PE-variable
//! strategy: for each changed edge `(u, v)`, the variables `d_u`, `d_v`
//! and `λ_w` for every `w` within one hop of `u` or `v` are marked PE and
//! re-evaluated by the unchanged step function. Because the dependency
//! graph is edgeless, the PE flood is exactly the one-hop ball — bounded
//! by construction, which is why `IncLCC` is deducible *and* relatively
//! bounded without timestamps.

use crate::persist::{self, StateLoadError};
use incgraph_core::engine::{Engine, RunStats};
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::par::ParEngine;
use incgraph_core::scope::ScopeStats;
use incgraph_core::spec::FixpointSpec;
use incgraph_core::status::Status;
use incgraph_graph::{AppliedBatch, CsrSnapshot, DynamicGraph, GraphView, NodeId, Weight};

/// Count type for degrees and triangle counts.
pub type Count = u64;

/// Number of common neighbors of two sorted adjacency slices.
pub(crate) fn sorted_intersect_count(a: &[(NodeId, Weight)], b: &[(NodeId, Weight)]) -> Count {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The LCC fixpoint specification over an undirected graph snapshot,
/// generic over the storage layout (live adjacency, CSR, CSR + overlay).
/// Variable `2v` is `d_v`; variable `2v + 1` is `λ_v`.
pub struct LccSpec<'g, G: GraphView = DynamicGraph> {
    g: &'g G,
}

impl<'g, G: GraphView> LccSpec<'g, G> {
    /// Specification over `g`, which must be undirected.
    pub fn new(g: &'g G) -> Self {
        assert!(!g.is_directed(), "LCC is defined on undirected graphs");
        LccSpec { g }
    }
}

impl<G: GraphView> FixpointSpec for LccSpec<'_, G> {
    type Value = Count;

    fn num_vars(&self) -> usize {
        self.g.node_count() * 2
    }

    fn bottom(&self, _x: usize) -> Count {
        0
    }

    fn eval<R: FnMut(usize) -> Count>(&self, x: usize, _read: &mut R) -> Count {
        let v = (x / 2) as NodeId;
        if x.is_multiple_of(2) {
            // f_{d_v}: the degree.
            self.g.degree(v) as Count
        } else {
            // f_{λ_v}: triangles at v. Each triangle (v, a, b) is found at
            // both a and b when intersecting N(v) with N(a) and N(b).
            let nv = self.g.out_neighbors(v);
            let mut twice: Count = 0;
            for &(a, _) in nv {
                twice += sorted_intersect_count(nv, self.g.out_neighbors(a));
            }
            twice / 2
        }
    }

    fn dependents<P: FnMut(usize)>(&self, _x: usize, _push: &mut P) {
        // d and λ feed only the derived γ; no status variable depends on
        // another, so change propagation is empty.
    }

    fn preceq(&self, a: &Count, b: &Count) -> bool {
        a <= b
    }

    fn is_contracting(&self) -> bool {
        false
    }
}

/// Reusable flat scratch for the `IncLCC` delta path: the batch-edge
/// timeline overlay plus the λ delta accumulator. All lookups are binary
/// searches over sorted arrays — no hashing — and every vector keeps its
/// high-water capacity, so steady-state updates allocate nothing.
#[derive(Clone, Debug, Default)]
struct LccScratch {
    /// Sorted canonical `(min << 32) | max` keys of the batch's edges.
    keys: Vec<u64>,
    /// Present/absent in the current timeline view, parallel to `keys`.
    present: Vec<bool>,
    /// Batch incidences `(node, partner, key index)`, sorted by node, so
    /// batch-edge partners of a node are one range scan.
    incid: Vec<(NodeId, NodeId, u32)>,
    /// Accumulated `λ` deltas `(node, ±count)`, merged and applied once.
    deltas: Vec<(NodeId, i64)>,
    /// Distinct endpoint nodes of the batch (degree refresh).
    endpoints: Vec<NodeId>,
}

impl LccScratch {
    fn space_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.present.capacity()
            + self.incid.capacity() * std::mem::size_of::<(NodeId, NodeId, u32)>()
            + self.deltas.capacity() * std::mem::size_of::<(NodeId, i64)>()
            + self.endpoints.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// Canonical undirected key of `(a, b)`.
#[inline]
fn lcc_key(a: NodeId, b: NodeId) -> u64 {
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    ((x as u64) << 32) | y as u64
}

/// Whether edge `(a, b)` exists in the current timeline view: batch edges
/// answer from the overlay, every other edge is identical in all views
/// and answers from the final graph.
#[inline]
fn edge_in_view(g: &DynamicGraph, keys: &[u64], present: &[bool], a: NodeId, b: NodeId) -> bool {
    match keys.binary_search(&lcc_key(a, b)) {
        Ok(i) => present[i],
        Err(_) => g.has_edge(a, b),
    }
}

/// LCC state: the previous counts plus the reusable engine.
pub struct LccState {
    status: Status<Count>,
    engine: Engine,
    threads: usize,
    par: Option<ParEngine>,
    /// Flat scratch of the delta update path.
    scratch: LccScratch,
}

impl LccState {
    /// Runs batch `LCC_fp`.
    pub fn batch(g: &DynamicGraph) -> (Self, RunStats) {
        let spec = LccSpec::new(g);
        let mut status = Status::init(&spec, false);
        let mut engine = Engine::new(spec.num_vars());
        let stats = engine.run(&spec, &mut status, 0..spec.num_vars());
        (
            LccState {
                status,
                engine,
                threads: 1,
                par: None,
                scratch: LccScratch::default(),
            },
            stats,
        )
    }

    /// Runs batch `LCC_fp` with the sharded parallel engine over a flat
    /// CSR snapshot of `g` (the triangle-counting scans benefit most from
    /// the flat layout); subsequent updates keep using `threads` shards.
    pub fn batch_par(g: &DynamicGraph, threads: usize) -> (Self, RunStats) {
        let threads = threads.max(1);
        let csr = CsrSnapshot::new(g);
        let spec = LccSpec::new(&csr);
        let mut status = Status::init(&spec, false);
        let mut par = ParEngine::new(spec.num_vars(), threads);
        let stats = par.run(&spec, &mut status, 0..spec.num_vars());
        (
            LccState {
                status,
                engine: Engine::new(g.node_count() * 2),
                threads,
                par: Some(par),
                scratch: LccScratch::default(),
            },
            stats,
        )
    }

    /// Sets the number of worker shards for subsequent fixpoint runs
    /// (1 = the sequential engine).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Resumes the step function over `scope` on the configured engine:
    /// the parallel engine when `threads > 1` or one is already attached
    /// (inline bucket-queue at 1 shard), the sequential heap otherwise.
    fn resume<G: GraphView>(&mut self, spec: &LccSpec<'_, G>, scope: &[usize]) -> RunStats {
        if self.threads > 1 || self.par.is_some() {
            let fresh = !matches!(&self.par,
                Some(p) if p.num_vars() == spec.num_vars() && p.nthreads() == self.threads);
            if fresh {
                self.par = Some(ParEngine::new(spec.num_vars(), self.threads));
            }
            let par = self.par.as_mut().expect("just ensured");
            par.set_work_budget(self.engine.work_budget());
            let stats = par.run(spec, &mut self.status, scope.iter().copied());
            if !stats.poisoned {
                return stats;
            }
            // A shard panicked; nothing was written back. Degrade to the
            // sequential engine permanently and resume from the same
            // pre-run state (C2 gives the same fixpoint); `poisoned`
            // survives in the merged stats.
            self.par = None;
            self.threads = 1;
            let mut out = stats;
            out.merge(
                &self
                    .engine
                    .run(spec, &mut self.status, scope.iter().copied()),
            );
            out
        } else {
            self.engine
                .run(spec, &mut self.status, scope.iter().copied())
        }
    }

    /// Extends `out` with every *node* whose packed LCC value the last
    /// update may have changed. The default delta path writes the status
    /// directly (no engine), so its candidates come from the scratch's
    /// accumulated λ deltas and degree-refresh endpoints; the engine logs
    /// cover the re-evaluation ablation path. Always a superset of the
    /// truly changed nodes.
    pub(crate) fn delta_candidates(&self, out: &mut Vec<usize>) {
        out.extend(self.scratch.deltas.iter().map(|&(w, _)| w as usize));
        out.extend(self.scratch.endpoints.iter().map(|&e| e as usize));
        // Engine paths use the 2-per-node variable layout (2v = degree,
        // 2v+1 = triangles); fold both back to the node.
        out.extend(self.engine.changed_vars().iter().map(|&x| x / 2));
        if let Some(p) = &self.par {
            out.extend(p.changed_vars().iter().map(|&x| x / 2));
        }
    }

    /// Degree of `v` as maintained by the fixpoint.
    pub fn degree(&self, v: NodeId) -> Count {
        self.status.get(v as usize * 2)
    }

    /// Triangle count of `v`.
    pub fn triangles(&self, v: NodeId) -> Count {
        self.status.get(v as usize * 2 + 1)
    }

    /// Local clustering coefficient `γ_v ∈ \[0, 1\]`.
    pub fn coefficient(&self, v: NodeId) -> f64 {
        let d = self.degree(v);
        if d < 2 {
            0.0
        } else {
            2.0 * self.triangles(v) as f64 / (d as f64 * (d - 1) as f64)
        }
    }

    /// All coefficients, in node order.
    pub fn coefficients(&self) -> Vec<f64> {
        (0..self.status.len() / 2)
            .map(|v| self.coefficient(v as NodeId))
            .collect()
    }

    /// `IncLCC`, delta form: instead of re-evaluating `f_{λ_w}` (a full
    /// neighborhood-intersection scan per affected node), maintain the
    /// triangle counts *arithmetically*. A changed edge `(u, v)` with `c`
    /// common neighbors in the graph state it was applied to changes
    /// `λ_u` and `λ_v` by `±c` and each common neighbor's `λ_w` by `±1`;
    /// degrees are re-read from the final graph. This is value-identical
    /// to the re-evaluation path (kept as
    /// [`update_reeval`](Self::update_reeval), the `abl` baseline) but
    /// does one intersection per changed edge instead of one per affected
    /// node — the difference between `O(Δ·d)` and `O(Δ·d²)` per batch.
    ///
    /// Intermediate graph states inside the batch are reconstructed by
    /// walking the effective ops in *reverse* from the final graph with a
    /// flat timeline overlay over just the batch's edges (everything else
    /// is identical in every intermediate state). Deltas accumulate as
    /// signed counts and are applied once at the end, so a transient
    /// negative running sum (deltas arrive in reverse order) never
    /// touches the unsigned status.
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.ensure_size(g);
        let n_vars = g.node_count() * 2;

        let s = &mut self.scratch;
        s.keys.clear();
        s.present.clear();
        s.incid.clear();
        s.deltas.clear();
        s.endpoints.clear();
        for op in applied.ops() {
            s.keys.push(lcc_key(op.src, op.dst));
        }
        s.keys.sort_unstable();
        s.keys.dedup();
        for (i, &k) in s.keys.iter().enumerate() {
            let a = (k >> 32) as NodeId;
            let b = (k & 0xffff_ffff) as NodeId;
            s.present.push(g.has_edge(a, b));
            s.incid.push((a, b, i as u32));
            s.incid.push((b, a, i as u32));
        }
        s.incid.sort_unstable();

        let mut reads = 0u64;
        for op in applied.ops().iter().rev() {
            let (u, v) = (op.src, op.dst);
            s.endpoints.push(u);
            s.endpoints.push(v);
            let ki = s
                .keys
                .binary_search(&lcc_key(u, v))
                .expect("batch edge is keyed");
            if !op.inserted {
                // Undo the delete first: its Δ was computed on the
                // pre-delete view. (The (u,v) edge itself never counts —
                // no self-loops on undirected graphs.)
                s.present[ki] = true;
            }
            let sign: i64 = if op.inserted { 1 } else { -1 };

            // Probe the endpoint with the smaller candidate set: final
            // adjacency plus batch partners.
            let range = |x: NodeId| {
                let lo = s.incid.partition_point(|&(n, _, _)| n < x);
                let hi = s.incid.partition_point(|&(n, _, _)| n <= x);
                lo..hi
            };
            let (ru, rv) = (range(u), range(v));
            let (probe, other, rp) = if g.out_degree(u) + ru.len() <= g.out_degree(v) + rv.len() {
                (u, v, ru)
            } else {
                (v, u, rv)
            };
            let mut c: i64 = 0;
            for &(w, _) in g.out_neighbors(probe) {
                if w == other {
                    continue;
                }
                reads += 1;
                if edge_in_view(g, &s.keys, &s.present, probe, w)
                    && edge_in_view(g, &s.keys, &s.present, other, w)
                {
                    c += 1;
                    s.deltas.push((w, sign));
                }
            }
            // Batch partners absent from the final graph can still be
            // neighbors in this view; partners present in the final graph
            // were already scanned above.
            for idx in rp {
                let (_, w, kw) = s.incid[idx];
                if w == other || g.has_edge(probe, w) {
                    continue;
                }
                reads += 1;
                if s.present[kw as usize] && edge_in_view(g, &s.keys, &s.present, other, w) {
                    c += 1;
                    s.deltas.push((w, sign));
                }
            }
            if c != 0 {
                s.deltas.push((u, sign * c));
                s.deltas.push((v, sign * c));
            }
            if op.inserted {
                s.present[ki] = false; // undo the insert
            }
        }

        // Apply: merge λ deltas per node, then refresh endpoint degrees.
        let mut changed = 0u64;
        let mut lambda_vars = 0u64;
        s.deltas.sort_unstable_by_key(|&(w, _)| w);
        let mut i = 0;
        while i < s.deltas.len() {
            let w = s.deltas[i].0;
            let mut d = 0i64;
            while i < s.deltas.len() && s.deltas[i].0 == w {
                d += s.deltas[i].1;
                i += 1;
            }
            lambda_vars += 1;
            if d != 0 {
                let x = w as usize * 2 + 1;
                let old = self.status.get(x) as i64;
                // `old + d ≥ 0` whenever the applied ops match the graph;
                // saturate instead of asserting so an injected-fault ΔG
                // (oracle campaigns doctor batches on purpose) degrades to
                // a wrong value the differential oracle can observe,
                // rather than a panic.
                self.status.set_unstamped(x, (old + d).max(0) as Count);
                changed += 1;
            }
        }
        s.endpoints.sort_unstable();
        s.endpoints.dedup();
        for &e in s.endpoints.iter() {
            let x = e as usize * 2;
            let new = g.degree(e) as Count;
            if self.status.get(x) != new {
                self.status.set_unstamped(x, new);
                changed += 1;
            }
        }

        // Every variable the delta path wrote or considered is counted as
        // inspected, so the strict `|AFF_diff| ≤ inspected` boundedness
        // accounting holds exactly as for the engine-backed path.
        let distinct = s.endpoints.len() as u64 + lambda_vars;
        let run = RunStats {
            pops: applied.len() as u64,
            evals: distinct,
            changes: changed,
            reads,
            distinct_vars: distinct,
            ..RunStats::default()
        };
        BoundednessReport::new(n_vars, distinct as usize, ScopeStats::default(), run)
    }

    /// `IncLCC`, re-evaluation form (the PR 2–6 implementation, kept as
    /// the ablation baseline and differential cross-check): mark the PE
    /// variables of each changed edge and re-run the unchanged step
    /// function on them.
    ///
    /// The PE set per changed edge `(u, v)` is the *exact* affected set:
    /// `d_u`, `d_v`, `λ_u`, `λ_v`, plus `λ_w` for every common neighbor
    /// `w` of `u` and `v` — only nodes adjacent to both endpoints gain or
    /// lose a triangle (a refinement of the paper's conservative one-hop
    /// marking that keeps `H⁰ ⊆ AFF` tight). Common neighbors are taken
    /// over the new adjacency *plus* the batch's deleted incidences
    /// (tracked in a sorted flat pair list, not a hash map), so triangles
    /// destroyed by multiple deletions in one batch are still caught.
    pub fn update_reeval(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.ensure_size(g);
        let spec = LccSpec::new(g);

        // Batch-local deleted incidences: old-only adjacency, as sorted
        // (node, partner) pairs.
        let mut deleted: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v, _) in applied.deleted() {
            deleted.push((u, v));
            deleted.push((v, u));
        }
        deleted.sort_unstable();
        deleted.dedup();
        let deleted_range = |x: NodeId| {
            let lo = deleted.partition_point(|&(n, _)| n < x);
            let hi = deleted.partition_point(|&(n, _)| n <= x);
            lo..hi
        };
        let neighbor = |x: NodeId, y: NodeId| -> bool {
            g.has_edge(x, y) || deleted.binary_search(&(x, y)).is_ok()
        };

        let mut scope: Vec<usize> = Vec::new();
        for op in applied.ops() {
            let (u, v) = (op.src, op.dst);
            for &e in &[u, v] {
                scope.push(e as usize * 2); // d_e
                scope.push(e as usize * 2 + 1); // λ_e
            }
            // Common neighbors over new ∪ batch-deleted adjacency: probe
            // the smaller incidence list of u against v.
            let (ru, rv) = (deleted_range(u), deleted_range(v));
            let du = g.out_degree(u) + ru.len();
            let dv = g.out_degree(v) + rv.len();
            let (probe, other, rp) = if du <= dv { (u, v, ru) } else { (v, u, rv) };
            for &(w, _) in g.out_neighbors(probe) {
                if neighbor(w, other) {
                    scope.push(w as usize * 2 + 1);
                }
            }
            for idx in rp {
                let (_, w) = deleted[idx];
                if neighbor(w, other) {
                    scope.push(w as usize * 2 + 1);
                }
            }
        }
        scope.sort_unstable();
        scope.dedup();
        let scope_len = scope.len();
        let run = self.resume(&spec, &scope);
        BoundednessReport::new(spec.num_vars(), scope_len, ScopeStats::default(), run)
    }

    /// Resident bytes of the algorithm's state (Fig. 8). No timestamps —
    /// IncLCC is deducible.
    pub fn space_bytes(&self) -> usize {
        self.status.space_bytes()
            + self.engine.space_bytes()
            + self.par.as_ref().map_or(0, |p| p.space_bytes())
            + self.scratch.space_bytes()
    }

    /// Serializes the durable essence (`SaveState`): the interleaved
    /// degree/triangle status. Deducible — no timestamps.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = persist::header("lcc");
        persist::put_status(&mut out, &self.status, |c| c);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without running any fixpoint (`LoadState`).
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, StateLoadError> {
        if g.is_directed() {
            return Err(StateLoadError::Malformed(
                "LCC is defined on undirected graphs".into(),
            ));
        }
        let mut r = persist::expect_header("lcc", bytes)?;
        let status = persist::read_status(&mut r, Ok)?;
        r.finish()?;
        let expected = g.node_count() * 2;
        if status.len() != expected {
            return Err(StateLoadError::SizeMismatch {
                expected,
                found: status.len(),
            });
        }
        if status.tracks_stamps() {
            return Err(StateLoadError::Malformed(
                "lcc is deducible and stores no timestamps".into(),
            ));
        }
        Ok(LccState {
            status,
            engine: Engine::new(expected),
            threads: 1,
            par: None,
            scratch: LccScratch::default(),
        })
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count() * 2;
        if n > self.status.len() {
            self.status.extend_to(n, |_| 0);
            self.engine = Engine::new(n);
        }
    }
}

impl crate::IncrementalState for LccState {
    fn name(&self) -> &'static str {
        "lcc"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        g.node_count() * 2
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        LccState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let threads = self.threads;
        let (fresh, stats) = LccState::batch(g);
        *self = fresh;
        self.threads = threads; // a fallback must not undo the thread config
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        audit.run(&LccSpec::new(g), &self.status)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.engine.set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        LccState::set_threads(self, threads);
    }

    fn space_bytes(&self) -> usize {
        LccState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        LccState::save_state(self)
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        let threads = self.threads;
        *self = LccState::restore(g, bytes)?;
        self.threads = threads;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    /// Brute-force reference: O(n³) triangle enumeration.
    fn lcc_reference(g: &DynamicGraph) -> Vec<(Count, Count)> {
        let n = g.node_count();
        let mut out = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            let d = g.degree(v) as Count;
            let mut t = 0u64;
            let nv = g.out_neighbors(v);
            for i in 0..nv.len() {
                for j in i + 1..nv.len() {
                    if g.has_edge(nv[i].0, nv[j].0) {
                        t += 1;
                    }
                }
            }
            out.push((d, t));
        }
        out
    }

    fn assert_matches_reference(state: &LccState, g: &DynamicGraph) {
        for (v, &(d, t)) in lcc_reference(g).iter().enumerate() {
            assert_eq!(state.degree(v as NodeId), d, "degree of {v}");
            assert_eq!(state.triangles(v as NodeId), t, "triangles of {v}");
        }
    }

    /// The undirected view of the paper's Fig. 2(a) graph.
    fn paper_graph_undirected() -> DynamicGraph {
        let mut g = DynamicGraph::new(false, 8);
        for (u, v) in [
            (0u32, 1u32),
            (0, 2),
            (2, 1),
            (1, 4),
            (1, 5),
            (2, 5),
            (4, 3),
            (3, 1),
            (4, 5),
            (4, 6),
            (5, 6),
            (6, 7),
            (2, 7),
        ] {
            g.insert_edge(u, v, 1);
        }
        g
    }

    #[test]
    fn batch_matches_paper_figure_3d() {
        let g = paper_graph_undirected();
        let (state, _) = LccState::batch(&g);
        // Fig. 3(d), G columns (rows 0..4 are printed in the paper).
        let expect_d = [2u64, 5, 4, 2, 4];
        let expect_l = [1u64, 4, 2, 1, 3];
        for v in 0..5u32 {
            assert_eq!(state.degree(v), expect_d[v as usize], "d_{v}");
            assert_eq!(state.triangles(v), expect_l[v as usize], "λ_{v}");
        }
        assert_matches_reference(&state, &g);
    }

    #[test]
    fn incremental_matches_paper_example_8() {
        let mut g = paper_graph_undirected();
        let (mut state, _) = LccState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(5, 6).insert(5, 3, 1);
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        // Fig. 3(d), G ⊕ ΔG columns.
        let expect_d = [2u64, 5, 4, 3, 4];
        let expect_l = [1u64, 5, 2, 3, 3];
        for v in 0..5u32 {
            assert_eq!(state.degree(v), expect_d[v as usize], "d_{v}");
            assert_eq!(state.triangles(v), expect_l[v as usize], "λ_{v}");
        }
        assert_matches_reference(&state, &g);
        // The scope is the one-hop ball: d for {3,5,6}, λ for the ball.
        assert!(report.scope_size <= 16);
    }

    #[test]
    fn coefficient_formula() {
        // Triangle graph: every γ = 1.
        let mut g = DynamicGraph::new(false, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        g.insert_edge(0, 2, 1);
        let (state, _) = LccState::batch(&g);
        assert_eq!(state.coefficients(), vec![1.0, 1.0, 1.0]);
        // Path graph: every γ = 0 (degree-1 ends defined as 0).
        let mut p = DynamicGraph::new(false, 3);
        p.insert_edge(0, 1, 1);
        p.insert_edge(1, 2, 1);
        let (ps, _) = LccState::batch(&p);
        assert_eq!(ps.coefficients(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn random_rounds_match_reference() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(80, 400, false, 1, 1, 12);
        let (mut state, _) = LccState::batch(&g);
        let mut rng = SplitMix64::seed_from_u64(8);
        for round in 0..15 {
            let mut batch = UpdateBatch::new();
            for _ in 0..10 {
                let u = rng.gen_range(0..80) as NodeId;
                let v = rng.gen_range(0..80) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            for (v, &(d, t)) in lcc_reference(&g).iter().enumerate() {
                assert_eq!(state.degree(v as NodeId), d, "round {round} d_{v}");
                assert_eq!(state.triangles(v as NodeId), t, "round {round} λ_{v}");
            }
        }
    }

    #[test]
    fn update_inspects_only_the_ball() {
        // A long path plus one triangle at the end; touching the far end
        // must not inspect the path.
        let mut g = DynamicGraph::new(false, 1000);
        for i in 0..999u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (mut state, _) = LccState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.insert(997, 999, 1);
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        assert!(report.inspected_vars <= 12, "got {}", report.inspected_vars);
        assert_eq!(state.triangles(998), 1);
    }

    #[test]
    fn delta_path_matches_reeval_path() {
        // The arithmetic delta path and the PE re-evaluation ablation must
        // land on identical counts after every round, including batches
        // that churn the same edge repeatedly (timeline overlay) and
        // batches that delete whole triangles.
        use incgraph_graph::rng::SplitMix64;
        let mut g1 = incgraph_graph::gen::uniform(60, 300, false, 1, 1, 44);
        let mut g2 = g1.clone();
        let (mut delta, _) = LccState::batch(&g1);
        let (mut reeval, _) = LccState::batch(&g2);
        let mut rng = SplitMix64::seed_from_u64(21);
        for round in 0..15 {
            let mut batch = UpdateBatch::new();
            for _ in 0..12 {
                let u = rng.gen_range(0..60) as NodeId;
                let v = rng.gen_range(0..60) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            // Churn one edge inside the same batch: ins/del/ins runs.
            batch.delete(1, 2).insert(1, 2, 1).delete(1, 2);
            let a1 = batch.clone().apply(&mut g1);
            let a2 = batch.apply(&mut g2);
            assert_eq!(a1.ops(), a2.ops());
            delta.update(&g1, &a1);
            reeval.update_reeval(&g2, &a2);
            assert_eq!(
                delta.status.values(),
                reeval.status.values(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn vertex_insertion_extends_state() {
        let mut g = DynamicGraph::new(false, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        g.insert_edge(0, 2, 1);
        let (mut state, _) = LccState::batch(&g);
        let v = g.add_node(0);
        let mut batch = UpdateBatch::new();
        batch.insert(0, v, 1).insert(1, v, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_matches_reference(&state, &g);
        assert_eq!(state.triangles(v), 1);
    }

    #[test]
    fn intersect_count_basics() {
        let a = [(1u32, 0u32), (3, 0), (5, 0), (9, 0)];
        let b = [(2u32, 0u32), (3, 0), (9, 0)];
        assert_eq!(sorted_intersect_count(&a, &b), 2);
        assert_eq!(sorted_intersect_count(&a, &[]), 0);
    }
}
