//! Connected components: min-label propagation `CC_fp` (paper Example 2)
//! and its **weakly deducible** incremental algorithm `IncCC`
//! (paper Example 5).
//!
//! Status variable `x_v` = the component id of `v`, initialized to `v`'s
//! own id; the update function takes the minimum over the neighborhood,
//! so the final value is the minimum node id of `v`'s component. `⪯` is
//! `≤` on ids — contracting and monotonic.
//!
//! `IncCC` keeps **timestamps** (the one auxiliary structure weak
//! deducibility permits): the order `<_C` is the change order of the batch
//! run, and the anchor set of `x_w` consists of the neighbors whose label
//! settled *earlier* (smaller stamp). This is what makes a unit edge
//! deletion inside a stable component cheap — only the endpoint with the
//! larger timestamp can be truly affected — in contrast to the Theorem 1
//! PE-reset strategy of Example 2, which floods the entire component.
//! Both strategies are exposed; the PE one backs the `abl-scope`/`abl-ts`
//! ablations.

use crate::persist::{self, StateLoadError};
use incgraph_core::engine::{Engine, RunStats};
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::par::ParEngine;
use incgraph_core::scope::{bounded_scope_in, pe_reset_scope_in, ContributorOracle, ScopeScratch};
use incgraph_core::spec::{FixpointSpec, Relax};
use incgraph_core::status::Status;
use incgraph_graph::{AppliedBatch, CsrSnapshot, DynamicGraph, GraphView, NodeId};

/// Component label type (a node id).
pub type CompId = u32;

/// The CC fixpoint specification over an (undirected) graph snapshot,
/// generic over the storage layout (live adjacency, CSR, CSR + overlay).
pub struct CcSpec<'g, G: GraphView = DynamicGraph> {
    g: &'g G,
}

impl<'g, G: GraphView> CcSpec<'g, G> {
    /// Specification over `g`. CC is defined on undirected graphs; for a
    /// directed graph this computes weakly connected components using the
    /// union of both adjacency directions.
    pub fn new(g: &'g G) -> Self {
        CcSpec { g }
    }

    fn neighbors(&self, v: usize, mut f: impl FnMut(usize)) {
        for &(u, _) in self.g.out_neighbors(v as NodeId) {
            f(u as usize);
        }
        if self.g.is_directed() {
            for &(u, _) in self.g.in_neighbors(v as NodeId) {
                f(u as usize);
            }
        }
    }
}

impl<G: GraphView> FixpointSpec for CcSpec<'_, G> {
    type Value = CompId;

    fn num_vars(&self) -> usize {
        self.g.node_count()
    }

    fn bottom(&self, x: usize) -> CompId {
        x as CompId
    }

    fn eval<R: FnMut(usize) -> CompId>(&self, x: usize, read: &mut R) -> CompId {
        // f_{x_v}(Y) = min({v} ∪ Y): the self term is folded in as the
        // constant `v` (see the FixpointSpec contract on self-reads).
        let mut m = x as CompId;
        self.neighbors(x, |u| m = m.min(read(u)));
        m
    }

    fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
        self.neighbors(x, push);
    }

    fn preceq(&self, a: &CompId, b: &CompId) -> bool {
        a <= b
    }

    fn relax(&self, _z: usize, z_val: &CompId, _trigger: usize, tv: &CompId) -> Relax<CompId> {
        // Min-label propagation: a neighbor's drop to `tv` can only pull
        // the label down to `tv`.
        if tv < z_val {
            Relax::Set(*tv)
        } else {
            Relax::Skip
        }
    }

    fn rank(&self, _x: usize, v: &CompId) -> u64 {
        *v as u64
    }

    fn push_rank(&self, _z: usize, _zv: &CompId, _t: usize, tv: &CompId) -> u64 {
        *tv as u64
    }
}

/// `IncCC`'s contributor oracle: order `<_C` from timestamps. A neighbor
/// `z` has `x` in its anchor set only if `z`'s label was *witnessed* by
/// `x` — same old value, later stamp (for min-propagation every anchor is
/// an equal-valued, earlier-settled neighbor), so `contributes_to(x)`
/// pushes exactly those.
struct CcOracle<'a> {
    g: &'a DynamicGraph,
}

impl CcOracle<'_> {
    fn neighbors(&self, v: usize, mut f: impl FnMut(usize)) {
        for &(u, _) in self.g.out_neighbors(v as NodeId) {
            f(u as usize);
        }
        if self.g.is_directed() {
            for &(u, _) in self.g.in_neighbors(v as NodeId) {
                f(u as usize);
            }
        }
    }
}

impl ContributorOracle<CompId> for CcOracle<'_> {
    fn order_key(&self, x: usize, status: &Status<CompId>) -> u64 {
        status.stamp(x)
    }

    fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<CompId>, push: &mut P) {
        // Pre-raise value of x (contributes_to runs before the raise):
        // witnesses carry the same label with a later stamp.
        let sx = status.stamp(x);
        let vx = status.get(x);
        self.neighbors(x, |z| {
            if status.stamp(z) > sx && status.get(z) == vx {
                push(z);
            }
        });
    }
}

/// CC state: previous fixpoint (with timestamps) plus the reusable engine.
pub struct CcState {
    status: Status<CompId>,
    engine: Engine,
    threads: usize,
    par: Option<ParEngine>,
    /// Reusable arena for the scope function: epoch-reset bitmaps and
    /// high-water vectors make steady-state updates allocation-free.
    scratch: ScopeScratch,
}

impl CcState {
    /// Runs batch `CC_fp`.
    pub fn batch(g: &DynamicGraph) -> (Self, RunStats) {
        let spec = CcSpec::new(g);
        // Weakly deducible: timestamps on.
        let mut status = Status::init(&spec, true);
        let mut engine = Engine::new(spec.num_vars());
        let stats = engine.run(&spec, &mut status, 0..spec.num_vars());
        (
            CcState {
                status,
                engine,
                threads: 1,
                par: None,
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Runs batch `CC_fp` with the sharded parallel engine over a flat
    /// CSR snapshot of `g`; subsequent updates keep using `threads`
    /// shards. Fixpoint values are identical to [`batch`](Self::batch).
    pub fn batch_par(g: &DynamicGraph, threads: usize) -> (Self, RunStats) {
        let threads = threads.max(1);
        let csr = CsrSnapshot::new(g);
        let spec = CcSpec::new(&csr);
        let mut status = Status::init(&spec, true);
        let mut par = ParEngine::new(spec.num_vars(), threads);
        let stats = par.run(&spec, &mut status, 0..spec.num_vars());
        (
            CcState {
                status,
                engine: Engine::new(g.node_count()),
                threads,
                par: Some(par),
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Sets the number of worker shards for subsequent fixpoint runs
    /// (1 = the sequential engine).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Resumes the step function over `scope` on the configured engine:
    /// the parallel engine when `threads > 1` or one is already attached
    /// (inline bucket-queue at 1 shard), the sequential heap otherwise.
    fn resume<G: GraphView>(&mut self, spec: &CcSpec<'_, G>, scope: &[usize]) -> RunStats {
        if self.threads > 1 || self.par.is_some() {
            let fresh = !matches!(&self.par,
                Some(p) if p.num_vars() == spec.num_vars() && p.nthreads() == self.threads);
            if fresh {
                self.par = Some(ParEngine::new(spec.num_vars(), self.threads));
            }
            let par = self.par.as_mut().expect("just ensured");
            par.set_work_budget(self.engine.work_budget());
            let stats = par.run(spec, &mut self.status, scope.iter().copied());
            if !stats.poisoned {
                return stats;
            }
            // A shard panicked; nothing was written back. Degrade to the
            // sequential engine permanently and resume from the same
            // pre-run state (C2 gives the same fixpoint); `poisoned`
            // survives in the merged stats.
            self.par = None;
            self.threads = 1;
            let mut out = stats;
            out.merge(
                &self
                    .engine
                    .run(spec, &mut self.status, scope.iter().copied()),
            );
            out
        } else {
            self.engine
                .run(spec, &mut self.status, scope.iter().copied())
        }
    }

    /// Extends `out` with every status variable the last update *may*
    /// have changed: the initial scope `H⁰` plus the engines' changed-set
    /// logs. Always a superset of the truly changed variables (the run
    /// pushes dependents beyond `H⁰`, which the logs capture; stale log
    /// entries from earlier runs merely cost a value comparison).
    pub(crate) fn delta_candidates(&self, out: &mut Vec<usize>) {
        out.extend_from_slice(&self.scratch.scope);
        out.extend_from_slice(self.engine.changed_vars());
        if let Some(p) = &self.par {
            out.extend_from_slice(p.changed_vars());
        }
    }

    /// Component id (= minimum node id of the component) of every node.
    pub fn components(&self) -> &[CompId] {
        self.status.values()
    }

    /// Component id of one node.
    pub fn component(&self, v: NodeId) -> CompId {
        self.status.get(v as usize)
    }

    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        let mut ids: Vec<CompId> = self.status.values().to_vec();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// `IncCC` (Example 5): timestamps determine `<_C`; the bounded scope
    /// function of Fig. 4 adjusts the previous fixpoint, and the unchanged
    /// step function is resumed.
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.ensure_size(g);
        let spec = CcSpec::new(g);
        // Endpoints of changed edges, filtered as in the paper's
        // Example 5. A deleted edge can only invalidate a label that was
        // *witnessed* across it: both endpoints carry the same old label
        // and only the one with the larger timestamp may be truly
        // affected. An inserted edge can only lower the endpoint with the
        // larger old label. Equal-label insertions and distinct-label
        // deletions provably change nothing.
        self.scratch.touched.clear();
        for op in applied.ops() {
            let (a, b) = (op.src as usize, op.dst as usize);
            let (va, vb) = (self.status.get(a), self.status.get(b));
            if op.inserted {
                match va.cmp(&vb) {
                    std::cmp::Ordering::Less => self.scratch.touched.push(b),
                    std::cmp::Ordering::Greater => self.scratch.touched.push(a),
                    std::cmp::Ordering::Equal => {}
                }
            } else if va == vb {
                let e = if self.status.stamp(a) >= self.status.stamp(b) {
                    a
                } else {
                    b
                };
                if self.status.get(e) != e as CompId {
                    self.scratch.touched.push(e);
                }
            }
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();
        // Weakly deducible: <_C comes from the live timestamps (h never
        // restamps, so these are the previous run's); no snapshots.
        let oracle = CcOracle { g };
        let stats = bounded_scope_in(&spec, &oracle, &mut self.status, &mut self.scratch);
        let scope = std::mem::take(&mut self.scratch.scope);
        let run = self.resume(&spec, &scope);
        let report = BoundednessReport::new(spec.num_vars(), scope.len(), stats, run);
        self.scratch.scope = scope;
        report
    }

    /// The deducible-but-unbounded strategy of Example 2 (Theorem 1):
    /// flood PE variables and reset them, using no timestamps. Kept as the
    /// ablation baseline contrasting Theorem 1 with Theorem 3.
    pub fn update_pe_reset(
        &mut self,
        g: &DynamicGraph,
        applied: &AppliedBatch,
    ) -> BoundednessReport {
        self.ensure_size(g);
        let spec = CcSpec::new(g);
        self.scratch.touched.clear();
        self.scratch.touched.extend(
            applied
                .ops()
                .iter()
                .flat_map(|o| [o.src as usize, o.dst as usize]),
        );
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();
        let stats = pe_reset_scope_in(&spec, &mut self.status, &mut self.scratch);
        let scope = std::mem::take(&mut self.scratch.scope);
        let run = self.resume(&spec, &scope);
        let report = BoundednessReport::new(spec.num_vars(), scope.len(), stats, run);
        self.scratch.scope = scope;
        report
    }

    /// Resident bytes of the algorithm's state (Fig. 8). Includes the
    /// timestamp array — the weakly-deducible overhead.
    pub fn space_bytes(&self) -> usize {
        self.status.space_bytes()
            + self.engine.space_bytes()
            + self.par.as_ref().map_or(0, |p| p.space_bytes())
            + self.scratch.space_bytes()
    }

    /// Serializes the durable essence (`SaveState`): the label status
    /// *with its timestamps* — `IncCC` derives `<_C` from them, so a
    /// restore that dropped stamps would corrupt every later update.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = persist::header("cc");
        persist::put_status(&mut out, &self.status, |v| v as u64);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without running any fixpoint (`LoadState`).
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, StateLoadError> {
        let mut r = persist::expect_header("cc", bytes)?;
        let status = persist::read_status(&mut r, |b| {
            u32::try_from(b)
                .map_err(|_| StateLoadError::Malformed(format!("label {b} exceeds u32")))
        })?;
        r.finish()?;
        let n = g.node_count();
        if status.len() != n {
            return Err(StateLoadError::SizeMismatch {
                expected: n,
                found: status.len(),
            });
        }
        if !status.tracks_stamps() {
            return Err(StateLoadError::Malformed(
                "cc is weakly deducible and requires timestamps".into(),
            ));
        }
        if status.values().iter().any(|&v| v as usize >= n) {
            return Err(StateLoadError::Malformed("label beyond node range".into()));
        }
        Ok(CcState {
            status,
            engine: Engine::new(n),
            threads: 1,
            par: None,
            scratch: ScopeScratch::new(),
        })
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count();
        if n > self.status.len() {
            self.status.extend_to(n, |i| i as CompId);
            self.engine = Engine::new(n);
        }
    }
}

impl crate::IncrementalState for CcState {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        g.node_count()
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        CcState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let threads = self.threads;
        let (fresh, stats) = CcState::batch(g);
        *self = fresh;
        self.threads = threads; // a fallback must not undo the thread config
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        audit.run(&CcSpec::new(g), &self.status)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.engine.set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        CcState::set_threads(self, threads);
    }

    fn space_bytes(&self) -> usize {
        CcState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        CcState::save_state(self)
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        let threads = self.threads;
        *self = CcState::restore(g, bytes)?;
        self.threads = threads;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    /// Reference: BFS labeling with min id per component.
    fn cc_reference(g: &DynamicGraph) -> Vec<CompId> {
        let n = g.node_count();
        let mut label = vec![CompId::MAX; n];
        for start in 0..n {
            if label[start] != CompId::MAX {
                continue;
            }
            // BFS; the component minimum is the smallest unvisited seed,
            // which is `start` itself since we scan in id order.
            let mut queue = vec![start];
            label[start] = start as CompId;
            while let Some(v) = queue.pop() {
                let mut visit = |u: usize| {
                    if label[u] == CompId::MAX {
                        label[u] = start as CompId;
                        queue.push(u);
                    }
                };
                for &(u, _) in g.out_neighbors(v as NodeId) {
                    visit(u as usize);
                }
                if g.is_directed() {
                    for &(u, _) in g.in_neighbors(v as NodeId) {
                        visit(u as usize);
                    }
                }
            }
        }
        label
    }

    #[test]
    fn batch_labels_components_with_min_id() {
        let mut g = DynamicGraph::new(false, 6);
        g.insert_edge(1, 3, 1);
        g.insert_edge(3, 5, 1);
        g.insert_edge(2, 4, 1);
        let (state, _) = CcState::batch(&g);
        assert_eq!(state.components(), &[0, 1, 2, 1, 2, 1]);
        assert_eq!(state.component_count(), 3);
    }

    #[test]
    fn unit_deletion_in_stable_component_is_cheap() {
        // Example 5's point: deleting a non-bridge edge of one component
        // must not flood it.
        let mut g = DynamicGraph::new(false, 100);
        for i in 0..99u32 {
            g.insert_edge(i, i + 1, 1);
        }
        g.insert_edge(40, 60, 1); // chord: (50,51) deletion keeps connectivity
        let (mut state, _) = CcState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(50, 51);
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        assert_eq!(state.components(), cc_reference(&g).as_slice());
        assert!(
            report.inspected_vars < 50,
            "stable component flooded: {} vars",
            report.inspected_vars
        );
    }

    #[test]
    fn pe_reset_floods_but_is_correct() {
        let mut g = DynamicGraph::new(false, 100);
        for i in 0..99u32 {
            g.insert_edge(i, i + 1, 1);
        }
        g.insert_edge(40, 60, 1);
        let (mut state, _) = CcState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(50, 51);
        let applied = batch.apply(&mut g);
        let report = state.update_pe_reset(&g, &applied);
        assert_eq!(state.components(), cc_reference(&g).as_slice());
        assert_eq!(
            report.scope_size, 100,
            "Theorem 1 strategy floods the whole component"
        );
    }

    #[test]
    fn bridge_deletion_splits_component() {
        let mut g = DynamicGraph::new(false, 6);
        for i in 0..5u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (mut state, _) = CcState::batch(&g);
        assert_eq!(state.component_count(), 1);
        let mut batch = UpdateBatch::new();
        batch.delete(2, 3);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.components(), &[0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn insertion_merges_components() {
        let mut g = DynamicGraph::new(false, 6);
        g.insert_edge(0, 1, 1);
        g.insert_edge(4, 5, 1);
        let (mut state, _) = CcState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.insert(1, 4, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.components(), &[0, 0, 2, 3, 0, 0]);
    }

    #[test]
    fn successive_bridge_deletions_keep_stamps_honest() {
        // Found by `incgraph fuzz` (minimized to 2 updates; see
        // tests/corpus/). Edges 0-2, 1-5, 2-5: one component labeled 0.
        // Deleting 0-2 makes {1,2,5} re-label to 1; the scope function
        // raises 1 and 5 to values the engine then confirms unchanged.
        // If those raises had kept the refined value with its stale
        // timestamp, the change order would claim 5 settled before its
        // witness 1, and the next deletion (1-5) would pick node 1 as the
        // only possibly-affected endpoint, leaving 5's label stale at 1
        // instead of 2.
        let mut g = DynamicGraph::new(false, 6);
        g.insert_edge(0, 2, 2);
        g.insert_edge(1, 5, 1);
        g.insert_edge(2, 5, 6);
        let (mut state, _) = CcState::batch(&g);
        for (u, v) in [(0, 2), (1, 5)] {
            let mut batch = UpdateBatch::new();
            batch.delete(u, v);
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            assert_eq!(
                state.components(),
                cc_reference(&g).as_slice(),
                "divergence after deleting ({u}, {v})"
            );
        }
    }

    #[test]
    fn repeated_rounds_stay_correct() {
        // Multi-round incremental runs exercise timestamp maintenance
        // across rounds (stamp drift would silently corrupt later rounds).
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(120, 200, false, 1, 1, 31);
        let (mut state, _) = CcState::batch(&g);
        let mut rng = SplitMix64::seed_from_u64(5);
        for round in 0..25 {
            let mut batch = UpdateBatch::new();
            for _ in 0..8 {
                let u = rng.gen_range(0..120) as NodeId;
                let v = rng.gen_range(0..120) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            assert_eq!(
                state.components(),
                cc_reference(&g).as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn directed_graphs_use_weak_connectivity() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(1, 0, 1);
        g.insert_edge(2, 3, 1);
        let (mut state, _) = CcState::batch(&g);
        assert_eq!(state.components(), &[0, 0, 2, 2]);
        let mut batch = UpdateBatch::new();
        batch.insert(3, 1, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.components(), &[0, 0, 0, 0]);
    }

    #[test]
    fn vertex_insertion_extends_state() {
        let mut g = DynamicGraph::new(false, 2);
        g.insert_edge(0, 1, 1);
        let (mut state, _) = CcState::batch(&g);
        let v = g.add_node(0);
        let mut batch = UpdateBatch::new();
        batch.insert(1, v, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.components(), &[0, 0, 0]);
    }
}
