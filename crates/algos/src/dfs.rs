//! Depth-first search: the `DFS_fp` interval fixpoint (paper §5.2) and
//! its **deducible** incremental algorithm `IncDFS`.
//!
//! Each node's status variable is the interval `x_v = [v.first, v.last]`
//! of its entry/exit timestamps in the DFS traversal from a virtual root
//! `r` connected to every node (so the result is an ordered spanning
//! forest covering all of `V`). The batch traversal is deterministic:
//! root children are attempted in node-id order and out-neighbors in
//! adjacency (id) order, which pins down a unique DFS tree — the paper's
//! correctness equation `Q(G ⊕ ΔG) = Q(G) ⊕ A_Δ(…)` then means the
//! incremental algorithm must reproduce *exactly* the intervals and
//! parents the batch run would produce on the updated graph.
//!
//! `IncDFS` follows the paper's `h`-plus-resume recipe with the order
//! `<_C` given by `v.first` and anchor set = the parent: the scope phase
//! marks the nodes whose input sets evolved (endpoints of `ΔG`) and the
//! old-tree ancestors whose subtrees contain them; the resume phase
//! re-runs the traversal but **skips over any subtree whose replay is
//! provably identical** (entered at the same timestamp from the same
//! parent, with no affected node inside, while the traversal prefix is
//! still identical to the old run). Skipped subtrees keep their old
//! intervals untouched, so the re-traversal cost tracks the affected
//! area — which for DFS is everything after the first divergence point,
//! exactly the behaviour the paper reports (IncDFS wins for small `ΔG`
//! and loses to batch beyond ~4%).
//!
//! DFS's update functions are not pure functions of a static input set
//! (a node's interval depends on how many timestamps its earlier siblings
//! consumed), so this module implements the step function directly rather
//! than through the generic [`incgraph_core::FixpointSpec`]; the two-phase
//! structure and the accounting are the same.

use incgraph_core::engine::RunStats;
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::scope::ScopeStats;
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId};
use std::collections::HashSet;

/// Parent sentinel for roots of the DFS forest (children of the virtual
/// root `r`).
pub const ROOT: NodeId = NodeId::MAX;

/// DFS state: the interval labelling and tree of the previous run, plus
/// the scratch needed to replay updates cheaply.
pub struct DfsState {
    first: Vec<u32>,
    last: Vec<u32>,
    parent: Vec<NodeId>,
    /// Epoch-versioned visited marks for incremental replays.
    visited_mark: Vec<u32>,
    epoch: u32,
}

impl DfsState {
    /// Runs batch `DFS_fp` on `g`.
    pub fn batch(g: &DynamicGraph) -> (Self, RunStats) {
        let n = g.node_count();
        let mut state = DfsState {
            first: vec![0; n],
            last: vec![0; n],
            parent: vec![ROOT; n],
            visited_mark: vec![0; n],
            epoch: 0,
        };
        let stats = state.traverse(g, &HashSet::new(), false);
        (state, stats)
    }

    /// Entry (preorder) timestamp of `v`.
    pub fn first(&self, v: NodeId) -> u32 {
        self.first[v as usize]
    }

    /// Exit (postorder) timestamp of `v`.
    pub fn last(&self, v: NodeId) -> u32 {
        self.last[v as usize]
    }

    /// Parent of `v` in the DFS tree ([`ROOT`] for forest roots).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// The intervals `[first, last]` of every node.
    pub fn intervals(&self) -> Vec<(u32, u32)> {
        self.first
            .iter()
            .zip(&self.last)
            .map(|(&f, &l)| (f, l))
            .collect()
    }

    /// Whether `u` is an ancestor of `v` in the DFS tree (interval
    /// nesting; a node is its own ancestor).
    pub fn is_ancestor(&self, u: NodeId, v: NodeId) -> bool {
        self.first[u as usize] <= self.first[v as usize]
            && self.last[v as usize] <= self.last[u as usize]
    }

    /// `IncDFS`: adjust via the affected-subtree scope phase, then resume
    /// the traversal with identical-subtree skipping.
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.ensure_size(g);
        let mut scope_stats = ScopeStats::default();

        // h phase: classify each op against the old traversal. An op is
        // *inert* — provably replayed identically — when it is an inserted
        // back/cross edge to an earlier-visited target (the scan finds the
        // target already visited, exactly as not scanning it at all) or a
        // deleted non-tree edge (the scan simply no longer sees an edge it
        // skipped anyway). Structural ops mark the old-tree ancestor
        // chains of both endpoints: any subtree containing one may replay
        // differently.
        let mut aff_sub: HashSet<NodeId> = HashSet::new();
        {
            let mut mark_chain = |state: &Self, v: NodeId| {
                let mut cur = v;
                loop {
                    scope_stats.pops += 1;
                    if !aff_sub.insert(cur) {
                        break;
                    }
                    scope_stats.raised += 1;
                    let p = state.parent[cur as usize];
                    if p == ROOT {
                        break;
                    }
                    cur = p;
                }
            };
            // An inserted edge (u, v) with v inside u's old subtree only
            // changes the traversal if u's scan reaches the new target
            // before the branch that already leads to v. The scan walks
            // the sorted adjacency, so with c = the child of u whose
            // subtree contains v: structural iff v < c in id order.
            let insert_structural = |state: &Self, u: NodeId, v: NodeId| -> bool {
                let (fu, lu) = (state.first[u as usize], state.last[u as usize]);
                let fv = state.first[v as usize];
                if fv < fu {
                    return false; // back/cross to an earlier node: inert
                }
                if fv > lu {
                    return true; // forward-cross past u's subtree
                }
                // Descendant: locate the branch child.
                for &(c, _) in g.out_neighbors(u) {
                    if state.parent[c as usize] == u
                        && state.first[c as usize] <= fv
                        && fv <= state.last[c as usize]
                    {
                        return v < c;
                    }
                }
                true // branch child not in current adjacency: be conservative
            };
            for op in applied.ops() {
                let (u, v) = (op.src, op.dst);
                let structural = if op.inserted {
                    insert_structural(self, u, v)
                        || (!g.is_directed() && insert_structural(self, v, u))
                } else {
                    self.parent[v as usize] == u
                        || (!g.is_directed() && self.parent[u as usize] == v)
                };
                if structural {
                    mark_chain(self, u);
                    mark_chain(self, v);
                }
            }
        }
        let scope_size = aff_sub.len();

        // Every op inert ⇒ the replay is provably identical; skip the
        // traversal (and its old-state snapshot) entirely. This is what
        // makes the common unit update — a back/cross insertion or a
        // non-tree deletion — effectively free.
        if aff_sub.is_empty() {
            return BoundednessReport::new(g.node_count(), 0, scope_stats, RunStats::default());
        }

        let run = self.traverse(g, &aff_sub, true);
        BoundednessReport::new(g.node_count(), scope_size, scope_stats, run)
    }

    /// Resident bytes of the algorithm's state (Fig. 8). No timestamps
    /// beyond the intervals themselves — IncDFS is deducible.
    pub fn space_bytes(&self) -> usize {
        (self.first.capacity() + self.last.capacity() + self.visited_mark.capacity()) * 4
            + self.parent.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Audit helper shared with BC: compare this forest against the
    /// canonical batch forest on `g`, one violation per diverging node.
    /// DFS intervals are not pure functions of a static input set, so the
    /// generic `σ_x` re-check does not apply; determinism of the batch
    /// traversal makes recompute-and-compare an exact substitute.
    pub(crate) fn audit_against_batch(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        use incgraph_core::audit::{AuditMode, AuditReport, AuditViolation};
        let (fresh, _) = DfsState::batch(g);
        let n = g.node_count();
        let (stride, start) = match audit.mode {
            AuditMode::Full => (1, 0),
            AuditMode::Sample { stride, offset } => (stride, offset % stride),
        };
        let mut report = AuditReport {
            checked: 0,
            total_vars: n,
            violations: Vec::new(),
            truncated: false,
        };
        let mut x = start;
        while x < n {
            report.checked += 1;
            let v = x as NodeId;
            let stored = (self.first(v), self.last(v), self.parent(v));
            let expect = (fresh.first(v), fresh.last(v), fresh.parent(v));
            if stored != expect {
                if report.violations.len() < audit.max_violations {
                    report.violations.push(AuditViolation {
                        var: x,
                        detail: format!("stored {stored:?}, batch DFS gives {expect:?}"),
                    });
                } else {
                    report.truncated = true;
                }
            }
            x += stride;
        }
        report
    }

    /// The step function: a DFS replay. With `incremental` set, subtrees
    /// whose replay is provably identical to the previous run are skipped
    /// in O(1) (plus an O(log #skips) membership structure).
    fn traverse(
        &mut self,
        g: &DynamicGraph,
        aff_sub: &HashSet<NodeId>,
        incremental: bool,
    ) -> RunStats {
        let n = g.node_count();
        let mut stats = RunStats::default();
        self.epoch += 1;
        let epoch = self.epoch;

        // Old-run snapshot for skip decisions and visited queries. The
        // clone is O(n) but costs a fraction of a full re-traversal; the
        // skipped subtrees' entries double as the new values.
        let (old_first, old_last, old_parent) = if incremental {
            (self.first.clone(), self.last.clone(), self.parent.clone())
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        // Sorted, disjoint old-time intervals of skipped subtrees.
        let mut skipped: Vec<(u32, u32)> = Vec::new();
        let in_skipped = |skipped: &[(u32, u32)], of: u32| -> bool {
            let i = skipped.partition_point(|&(_, l)| l < of);
            i < skipped.len() && skipped[i].0 <= of
        };

        let mut time: u32 = 0;
        // `identical` = every timestamp assigned so far equals the old
        // run's; the precondition for any further skipping.
        let mut identical = incremental;
        // Explicit stack of (node, next-out-neighbor index).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();

        macro_rules! visited {
            ($w:expr) => {
                self.visited_mark[$w as usize] == epoch
                    || (incremental && in_skipped(&skipped, old_first[$w as usize]))
            };
        }

        for r in 0..n as NodeId {
            if visited!(r) {
                continue;
            }
            // Try to skip the whole old subtree rooted at this forest root.
            if identical
                && old_first[r as usize] == time
                && old_parent[r as usize] == ROOT
                && !aff_sub.contains(&r)
            {
                skipped.push((old_first[r as usize], old_last[r as usize]));
                time = old_last[r as usize] + 1;
                continue;
            }
            // Normal entry.
            if identical && (old_first[r as usize] != time || old_parent[r as usize] != ROOT) {
                identical = false;
            }
            self.enter(r, ROOT, &mut time, epoch, &mut stats);
            stack.push((r, 0));

            'frames: while let Some(&(v, idx0)) = stack.last() {
                let adj = g.out_neighbors(v);
                let mut idx = idx0;
                while idx < adj.len() {
                    let w = adj[idx].0;
                    idx += 1;
                    stats.reads += 1;
                    if visited!(w) {
                        continue;
                    }
                    if identical
                        && old_first[w as usize] == time
                        && old_parent[w as usize] == v
                        && !aff_sub.contains(&w)
                    {
                        skipped.push((old_first[w as usize], old_last[w as usize]));
                        time = old_last[w as usize] + 1;
                        continue;
                    }
                    if identical && (old_first[w as usize] != time || old_parent[w as usize] != v) {
                        identical = false;
                    }
                    stack.last_mut().expect("frame exists").1 = idx;
                    self.enter(w, v, &mut time, epoch, &mut stats);
                    stack.push((w, 0));
                    continue 'frames;
                }
                // Out-neighbors exhausted: close v.
                if identical && old_last[v as usize] != time {
                    identical = false;
                }
                self.last[v as usize] = time;
                time += 1;
                stack.pop();
            }
        }
        stats
    }

    fn enter(&mut self, v: NodeId, p: NodeId, time: &mut u32, epoch: u32, stats: &mut RunStats) {
        if self.first[v as usize] != *time || self.parent[v as usize] != p {
            stats.changes += 1;
        }
        self.first[v as usize] = *time;
        self.parent[v as usize] = p;
        self.visited_mark[v as usize] = epoch;
        *time += 1;
        stats.pops += 1;
        stats.evals += 1;
        stats.distinct_vars += 1;
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count();
        if n > self.first.len() {
            // Fresh nodes get sentinel intervals past any real timestamp,
            // so they can never be mistaken for part of the old traversal.
            self.first.resize(n, u32::MAX);
            self.last.resize(n, u32::MAX);
            self.parent.resize(n, ROOT);
            self.visited_mark.resize(n, 0);
        }
    }

    /// Writes the durable payload (intervals + parents); the visited
    /// marks and epoch are replay scratch and restart at zero. Shared
    /// with BC, whose blob embeds its DFS substrate.
    pub(crate) fn save_payload(&self, out: &mut Vec<u8>) {
        crate::persist::put_u64(out, self.first.len() as u64);
        for &f in &self.first {
            crate::persist::put_u32(out, f);
        }
        for &l in &self.last {
            crate::persist::put_u32(out, l);
        }
        for &p in &self.parent {
            crate::persist::put_u32(out, p);
        }
    }

    /// Reads a payload written by [`save_payload`](Self::save_payload).
    pub(crate) fn restore_payload(
        r: &mut crate::persist::ByteReader<'_>,
        n: usize,
    ) -> Result<Self, crate::persist::StateLoadError> {
        let stored = r.len(12)?;
        if stored != n {
            return Err(crate::persist::StateLoadError::SizeMismatch {
                expected: n,
                found: stored,
            });
        }
        let read_vec = |r: &mut crate::persist::ByteReader<'_>| {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()?);
            }
            Ok::<_, crate::persist::StateLoadError>(v)
        };
        let first = read_vec(r)?;
        let last = read_vec(r)?;
        let parent = read_vec(r)?;
        Ok(DfsState {
            first,
            last,
            parent,
            visited_mark: vec![0; n],
            epoch: 0,
        })
    }

    /// Serializes the durable essence (`SaveState`): the interval
    /// labelling and the tree. Deducible — the preorder numbers *are* the
    /// order `<_C`.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = crate::persist::header("dfs");
        self.save_payload(&mut out);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without re-traversing (`LoadState`).
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, crate::persist::StateLoadError> {
        let mut r = crate::persist::expect_header("dfs", bytes)?;
        let state = Self::restore_payload(&mut r, g.node_count())?;
        r.finish()?;
        Ok(state)
    }
}

impl crate::IncrementalState for DfsState {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        g.node_count()
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        DfsState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let (fresh, stats) = DfsState::batch(g);
        *self = fresh;
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        self.audit_against_batch(g, audit)
    }

    /// No engine, no budget: `update_guarded`'s post-run scope check is
    /// the only degradation trigger for DFS.
    fn set_work_budget(&mut self, _budget: Option<u64>) {}

    fn space_bytes(&self) -> usize {
        DfsState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        DfsState::save_state(self)
    }

    fn load_state(
        &mut self,
        g: &DynamicGraph,
        bytes: &[u8],
    ) -> Result<(), crate::persist::StateLoadError> {
        *self = DfsState::restore(g, bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn assert_same_as_batch(state: &DfsState, g: &DynamicGraph) {
        let (fresh, _) = DfsState::batch(g);
        assert_eq!(state.first, fresh.first, "first timestamps diverge");
        assert_eq!(state.last, fresh.last, "last timestamps diverge");
        assert_eq!(state.parent, fresh.parent, "parents diverge");
    }

    #[test]
    fn batch_on_a_path_numbers_sequentially() {
        let mut g = DynamicGraph::new(true, 4);
        for i in 0..3u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (s, _) = DfsState::batch(&g);
        assert_eq!(s.intervals(), vec![(0, 7), (1, 6), (2, 5), (3, 4)]);
        assert_eq!(s.parent(0), ROOT);
        assert_eq!(s.parent(3), 2);
    }

    #[test]
    fn forest_roots_follow_id_order() {
        let mut g = DynamicGraph::new(true, 5);
        g.insert_edge(3, 4, 1);
        let (s, _) = DfsState::batch(&g);
        // Components {0},{1},{2},{3,4} visited in id order.
        assert_eq!(s.intervals(), vec![(0, 1), (2, 3), (4, 5), (6, 9), (7, 8)]);
    }

    #[test]
    fn dfs_invariant_no_forward_cross_edges() {
        // Tarjan's invariant: for every edge (u,v), NOT(u.last < v.first)
        // — i.e. no edge jumps forward across finished subtrees.
        let g = incgraph_graph::gen::uniform(150, 700, true, 1, 1, 4);
        let (s, _) = DfsState::batch(&g);
        for (u, v, _) in g.edges() {
            assert!(
                s.last(u) > s.first(v) || s.first(v) <= s.first(u),
                "forward-cross edge ({u},{v})"
            );
        }
    }

    #[test]
    fn interval_nesting_is_laminar() {
        let g = incgraph_graph::gen::uniform(100, 400, true, 1, 1, 9);
        let (s, _) = DfsState::batch(&g);
        for v in 0..100u32 {
            assert!(s.first(v) < s.last(v));
            let p = s.parent(v);
            if p != ROOT {
                assert!(s.is_ancestor(p, v), "child interval not nested");
            }
        }
    }

    #[test]
    fn incremental_equals_batch_on_paper_style_update() {
        let mut g = crate::sssp::tests::paper_graph();
        let (mut s, _) = DfsState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(5, 6).insert(5, 3, 1);
        let applied = batch.apply(&mut g);
        s.update(&g, &applied);
        assert_same_as_batch(&s, &g);
    }

    #[test]
    fn untouched_prefix_subtrees_are_skipped() {
        // 100 disjoint 10-node chains; an update inside the last chain
        // must skip the 99 earlier subtrees wholesale.
        let mut g = DynamicGraph::new(true, 1000);
        for k in 0..100u32 {
            for i in 0..9u32 {
                g.insert_edge(k * 10 + i, k * 10 + i + 1, 1);
            }
        }
        let (mut s, _) = DfsState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(990, 991);
        let applied = batch.apply(&mut g);
        let report = s.update(&g, &applied);
        assert_same_as_batch(&s, &g);
        assert!(
            report.run_stats.distinct_vars <= 20,
            "re-traversed {} nodes",
            report.run_stats.distinct_vars
        );
    }

    #[test]
    fn single_chain_update_reaches_everything() {
        // The pathological flip side: on one long chain, deleting a late
        // edge changes every node's exit time — the affected area IS the
        // whole graph, and the replay must still be exactly right.
        let mut g = DynamicGraph::new(true, 300);
        for i in 0..299u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (mut s, _) = DfsState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(290, 291);
        let applied = batch.apply(&mut g);
        s.update(&g, &applied);
        assert_same_as_batch(&s, &g);
        // 291 is now a forest root, entered after the prefix closes.
        assert_eq!(s.parent(291), ROOT);
    }

    #[test]
    fn early_update_forces_wide_replay_but_stays_correct() {
        let mut g = DynamicGraph::new(true, 200);
        for i in 0..199u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (mut s, _) = DfsState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);
        s.update(&g, &applied);
        assert_same_as_batch(&s, &g);
    }

    #[test]
    fn random_rounds_equal_batch() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(120, 500, true, 1, 1, 21);
        let (mut s, _) = DfsState::batch(&g);
        let mut rng = SplitMix64::seed_from_u64(77);
        for round in 0..20 {
            let mut batch = UpdateBatch::new();
            for _ in 0..6 {
                let u = rng.gen_range(0..120) as NodeId;
                let v = rng.gen_range(0..120) as NodeId;
                if u == v {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            s.update(&g, &applied);
            let (fresh, _) = DfsState::batch(&g);
            assert_eq!(s.first, fresh.first, "round {round}");
            assert_eq!(s.last, fresh.last, "round {round}");
            assert_eq!(s.parent, fresh.parent, "round {round}");
        }
    }

    #[test]
    fn vertex_insertion_extends_state() {
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 1);
        let (mut s, _) = DfsState::batch(&g);
        let v = g.add_node(0);
        let mut batch = UpdateBatch::new();
        batch.insert(1, v, 1);
        let applied = batch.apply(&mut g);
        s.update(&g, &applied);
        assert_same_as_batch(&s, &g);
    }

    #[test]
    fn noop_update_skips_everything() {
        let mut g = DynamicGraph::new(true, 500);
        for i in 0..499u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (mut s, _) = DfsState::batch(&g);
        let applied = UpdateBatch::new().apply(&mut g);
        let report = s.update(&g, &applied);
        assert_eq!(report.run_stats.distinct_vars, 0, "everything skipped");
        assert_same_as_batch(&s, &g);
    }
}
