//! Graph simulation: the `Sim_fp` fixpoint \[HHK95, paper §5.1\] and its
//! **weakly deducible** incremental algorithm `IncSim`.
//!
//! A Boolean status variable `x[v, u]` says whether data node `v` matches
//! pattern node `u`. `⊥` is the label test `L(v) = L_Q(u)`; the update
//! function re-checks the simulation condition
//!
//! ```text
//! x[v,u] = L(v)=L_Q(u) ∧ ∀ (u,u') ∈ E_Q ∃ (v,v') ∈ E : x[v',u']
//! ```
//!
//! With the order `false ⪯ true`, runs are contracting (matches are only
//! retracted) and the condition is monotone, so Theorem 3 applies. As in
//! the paper, `IncSim` records a **timestamp** on each variable when it
//! turns false; the order `<_C` is "turned false earlier", with
//! still-true variables ordered last (key `∞`) — this is what resolves
//! anchor sets on *cyclic* patterns, where mutually-supporting false
//! variables would otherwise be indistinguishable.
//!
//! The union of all true variables at the fixpoint is the unique maximum
//! simulation `Q(G)`.

use crate::persist::{self, StateLoadError};
use incgraph_core::engine::{Engine, RunStats};
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::par::ParEngine;
use incgraph_core::scope::{bounded_scope_in, pe_reset_scope_in, ContributorOracle, ScopeScratch};
use incgraph_core::spec::FixpointSpec;
use incgraph_core::status::Status;
use incgraph_graph::{AppliedBatch, CsrSnapshot, DynamicGraph, GraphView, NodeId, Pattern};

/// The Sim fixpoint specification over a graph + pattern snapshot,
/// generic over the storage layout (live adjacency, CSR, CSR + overlay).
pub struct SimSpec<'g, 'p, G: GraphView = DynamicGraph> {
    g: &'g G,
    q: &'p Pattern,
}

impl<'g, 'p, G: GraphView> SimSpec<'g, 'p, G> {
    /// Specification for matching pattern `q` in (directed) graph `g`.
    pub fn new(g: &'g G, q: &'p Pattern) -> Self {
        assert!(q.node_count() > 0, "empty pattern");
        SimSpec { g, q }
    }

    #[inline]
    fn nq(&self) -> usize {
        self.q.node_count()
    }

    /// Packs `(v, u)` into a dense variable index.
    #[inline]
    pub fn var(&self, v: NodeId, u: usize) -> usize {
        v as usize * self.nq() + u
    }

    /// Unpacks a variable index into `(v, u)`.
    #[inline]
    pub fn unvar(&self, x: usize) -> (NodeId, usize) {
        ((x / self.nq()) as NodeId, x % self.nq())
    }
}

impl<G: GraphView> FixpointSpec for SimSpec<'_, '_, G> {
    type Value = bool;

    fn num_vars(&self) -> usize {
        self.g.node_count() * self.nq()
    }

    fn bottom(&self, x: usize) -> bool {
        let (v, u) = self.unvar(x);
        self.g.label(v) == self.q.label(u)
    }

    fn eval<R: FnMut(usize) -> bool>(&self, x: usize, read: &mut R) -> bool {
        let (v, u) = self.unvar(x);
        if self.g.label(v) != self.q.label(u) {
            return false;
        }
        // ∀ pattern successor u' of u, ∃ graph successor v' of v matching u'.
        'succ: for &u_next in self.q.out_neighbors(u) {
            for &(v_next, _) in self.g.out_neighbors(v) {
                if read(self.var(v_next, u_next)) {
                    continue 'succ;
                }
            }
            return false;
        }
        true
    }

    fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
        let (v, u) = self.unvar(x);
        for &(v_prev, _) in self.g.in_neighbors(v) {
            for &u_prev in self.q.in_neighbors(u) {
                push(self.var(v_prev, u_prev));
            }
        }
    }

    fn preceq(&self, a: &bool, b: &bool) -> bool {
        // false ⪯ true: matches only get retracted during a run.
        !a || *b
    }
}

/// `IncSim`'s contributor oracle: order `<_C` from turn-false timestamps;
/// still-true variables sort last.
struct SimOracle<'a> {
    spec: &'a SimSpec<'a, 'a>,
}

impl ContributorOracle<bool> for SimOracle<'_> {
    fn order_key(&self, x: usize, status: &Status<bool>) -> u64 {
        if status.get(x) {
            u64::MAX
        } else {
            status.stamp(x)
        }
    }

    fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<bool>, push: &mut P) {
        // Pre-raise: x is false here; its fall time orders the anchors.
        let kx = status.stamp(x);
        self.spec.dependents(x, &mut |z| {
            // Only false variables that fell *after* x can have relied on
            // x's falseness; true variables cannot be raised further.
            if !status.get(z) && status.stamp(z) > kx {
                push(z);
            }
        });
    }
}

/// Sim state: the pattern, the previous fixpoint (with timestamps) and the
/// reusable engine.
pub struct SimState {
    q: Pattern,
    status: Status<bool>,
    engine: Engine,
    threads: usize,
    par: Option<ParEngine>,
    /// Reusable arena for the scope function: epoch-reset bitmaps and
    /// high-water vectors make steady-state updates allocation-free.
    scratch: ScopeScratch,
}

impl SimState {
    /// Runs batch `Sim_fp`: computes the maximum simulation of `q` in `g`.
    pub fn batch(g: &DynamicGraph, q: Pattern) -> (Self, RunStats) {
        let spec = SimSpec::new(g, &q);
        let mut status = Status::init(&spec, true);
        let mut engine = Engine::new(spec.num_vars());
        // Only label-matching variables can violate σ initially; the rest
        // start false and stay false.
        let scope: Vec<usize> = (0..spec.num_vars()).filter(|&x| status.get(x)).collect();
        let stats = engine.run(&spec, &mut status, scope);
        (
            SimState {
                q,
                status,
                engine,
                threads: 1,
                par: None,
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Runs batch `Sim_fp` with the sharded parallel engine over a flat
    /// CSR snapshot of `g`; subsequent updates keep using `threads`
    /// shards. Fixpoint values are identical to [`batch`](Self::batch).
    pub fn batch_par(g: &DynamicGraph, q: Pattern, threads: usize) -> (Self, RunStats) {
        let threads = threads.max(1);
        let csr = CsrSnapshot::new(g);
        let spec = SimSpec::new(&csr, &q);
        let mut status = Status::init(&spec, true);
        let mut par = ParEngine::new(spec.num_vars(), threads);
        let scope: Vec<usize> = (0..spec.num_vars()).filter(|&x| status.get(x)).collect();
        let stats = par.run(&spec, &mut status, scope);
        let num_vars = spec.num_vars();
        (
            SimState {
                q,
                status,
                engine: Engine::new(num_vars),
                threads,
                par: Some(par),
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Sets the number of worker shards for subsequent fixpoint runs
    /// (1 = the sequential engine).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Resumes the step function over `scope` on the configured engine:
    /// the parallel engine when `threads > 1` or one is already attached
    /// (inline bucket-queue at 1 shard), the sequential heap otherwise.
    fn resume<G: GraphView>(&mut self, spec: &SimSpec<'_, '_, G>, scope: &[usize]) -> RunStats {
        if self.threads > 1 || self.par.is_some() {
            let fresh = !matches!(&self.par,
                Some(p) if p.num_vars() == spec.num_vars() && p.nthreads() == self.threads);
            if fresh {
                self.par = Some(ParEngine::new(spec.num_vars(), self.threads));
            }
            let par = self.par.as_mut().expect("just ensured");
            par.set_work_budget(self.engine.work_budget());
            let stats = par.run(spec, &mut self.status, scope.iter().copied());
            if !stats.poisoned {
                return stats;
            }
            // A shard panicked; nothing was written back. Degrade to the
            // sequential engine permanently and resume from the same
            // pre-run state (C2 gives the same fixpoint); `poisoned`
            // survives in the merged stats.
            self.par = None;
            self.threads = 1;
            let mut out = stats;
            out.merge(
                &self
                    .engine
                    .run(spec, &mut self.status, scope.iter().copied()),
            );
            out
        } else {
            self.engine
                .run(spec, &mut self.status, scope.iter().copied())
        }
    }

    /// Extends `out` with every status variable the last update *may*
    /// have changed: the initial scope `H⁰` plus the engines' changed-set
    /// logs (always a superset of the truly changed variables; stale log
    /// entries merely cost a value comparison).
    pub(crate) fn delta_candidates(&self, out: &mut Vec<usize>) {
        out.extend_from_slice(&self.scratch.scope);
        out.extend_from_slice(self.engine.changed_vars());
        if let Some(p) = &self.par {
            out.extend_from_slice(p.changed_vars());
        }
    }

    /// The pattern being matched.
    pub fn pattern(&self) -> &Pattern {
        &self.q
    }

    /// Whether data node `v` matches pattern node `u`.
    pub fn matches(&self, g: &DynamicGraph, v: NodeId, u: usize) -> bool {
        let _ = g;
        self.status.get(v as usize * self.q.node_count() + u)
    }

    /// The maximum simulation relation as `(v, u)` pairs.
    pub fn relation(&self) -> Vec<(NodeId, usize)> {
        let nq = self.q.node_count();
        (0..self.status.len())
            .filter(|&x| self.status.get(x))
            .map(|x| ((x / nq) as NodeId, x % nq))
            .collect()
    }

    /// Number of matching pairs `|Q(G)|`.
    pub fn match_count(&self) -> usize {
        (0..self.status.len())
            .filter(|&x| self.status.get(x))
            .count()
    }

    /// `IncSim`: bounded scope function over the timestamp order, then the
    /// unchanged step function.
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        let nq = self.q.node_count();
        self.ensure_size(g);
        let q = self.q.clone();
        let spec = SimSpec::new(g, &q);

        // Evolved input sets: Y_{x[v,u]} ranges over out_nbr(v), so every
        // changed edge (a, b) touches the tail's variables {x[a, u]} —
        // and on undirected graphs both endpoints are tails. Most of
        // those provably cannot change and are filtered out up front:
        // a deletion only retracts matches (skip already-false vars), an
        // insertion only adds them (skip already-true vars and label
        // mismatches), and either way the edge is irrelevant to `x[a, u]`
        // unless some pattern successor of `u` carries `b`'s label.
        self.scratch.touched.clear();
        {
            let status = &self.status;
            let touched = &mut self.scratch.touched;
            let mut consider = |tail: NodeId, head: NodeId, inserted: bool| {
                let head_label = g.label(head);
                for u in 0..nq {
                    if !q
                        .out_neighbors(u)
                        .iter()
                        .any(|&u2| q.label(u2) == head_label)
                    {
                        continue;
                    }
                    let x = spec.var(tail, u);
                    let cur = status.get(x);
                    let keep = if inserted {
                        !cur && g.label(tail) == q.label(u)
                    } else {
                        cur
                    };
                    if keep {
                        touched.push(x);
                    }
                }
            };
            for op in applied.ops() {
                consider(op.src, op.dst, op.inserted);
                if !g.is_directed() {
                    consider(op.dst, op.src, op.inserted);
                }
            }
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();

        // Weakly deducible: <_C from the live timestamps; no snapshots.
        let oracle = SimOracle { spec: &spec };
        let stats = bounded_scope_in(&spec, &oracle, &mut self.status, &mut self.scratch);
        let scope = std::mem::take(&mut self.scratch.scope);
        let run = self.resume(&spec, &scope);
        let report = BoundednessReport::new(spec.num_vars(), scope.len(), stats, run);
        self.scratch.scope = scope;
        report
    }

    /// The Theorem 1 construction for Sim (ablation `abl-ts`): flood PE
    /// variables backward through dependency edges, reset them to their
    /// label-match value, and re-run — no timestamps consulted. Correct
    /// but floods far beyond the anchor-bounded scope of
    /// [`update`](Self::update).
    pub fn update_pe_reset(
        &mut self,
        g: &DynamicGraph,
        applied: &AppliedBatch,
    ) -> BoundednessReport {
        let nq = self.q.node_count();
        self.ensure_size(g);
        let q = self.q.clone();
        let spec = SimSpec::new(g, &q);
        self.scratch.touched.clear();
        for op in applied.ops() {
            for u in 0..nq {
                self.scratch.touched.push(spec.var(op.src, u));
                if !g.is_directed() {
                    self.scratch.touched.push(spec.var(op.dst, u));
                }
            }
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();
        let stats = pe_reset_scope_in(&spec, &mut self.status, &mut self.scratch);
        let scope = std::mem::take(&mut self.scratch.scope);
        let run = self.resume(&spec, &scope);
        let report = BoundednessReport::new(spec.num_vars(), scope.len(), stats, run);
        self.scratch.scope = scope;
        report
    }

    /// Resident bytes of the algorithm's state (Fig. 8): the Boolean
    /// match matrix plus its timestamps plus the engine scratch.
    pub fn space_bytes(&self) -> usize {
        self.status.space_bytes()
            + self.engine.space_bytes()
            + self.par.as_ref().map_or(0, |p| p.space_bytes())
            + self.scratch.space_bytes()
    }

    /// Serializes the durable essence (`SaveState`): the pattern plus the
    /// match matrix with its turn-false timestamps.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = persist::header("sim");
        let nq = self.q.node_count();
        persist::put_u32(&mut out, nq as u32);
        for u in 0..nq {
            persist::put_u32(&mut out, self.q.label(u));
        }
        let edges: Vec<(usize, usize)> = self.q.edges().collect();
        persist::put_u32(&mut out, edges.len() as u32);
        for (u, v) in edges {
            persist::put_u32(&mut out, u as u32);
            persist::put_u32(&mut out, v as u32);
        }
        persist::put_status(&mut out, &self.status, |b| b as u64);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without running any fixpoint (`LoadState`).
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, StateLoadError> {
        let mut r = persist::expect_header("sim", bytes)?;
        let nq = r.u32()? as usize;
        if nq == 0 {
            return Err(StateLoadError::Malformed("empty pattern".into()));
        }
        let mut labels = Vec::with_capacity(nq);
        for _ in 0..nq {
            labels.push(r.u32()?);
        }
        let ne = r.u32()? as usize;
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let u = r.u32()? as usize;
            let v = r.u32()? as usize;
            if u >= nq || v >= nq {
                return Err(StateLoadError::Malformed(
                    "pattern edge beyond pattern nodes".into(),
                ));
            }
            edges.push((u, v));
        }
        {
            let mut sorted = edges.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != edges.len() {
                return Err(StateLoadError::Malformed("duplicate pattern edge".into()));
            }
        }
        let status = persist::read_status(&mut r, persist::dec_bool)?;
        r.finish()?;
        let expected = g.node_count() * nq;
        if status.len() != expected {
            return Err(StateLoadError::SizeMismatch {
                expected,
                found: status.len(),
            });
        }
        if !status.tracks_stamps() {
            return Err(StateLoadError::Malformed(
                "sim is weakly deducible and requires timestamps".into(),
            ));
        }
        Ok(SimState {
            q: Pattern::new(labels, &edges),
            status,
            engine: Engine::new(expected),
            threads: 1,
            par: None,
            scratch: ScopeScratch::new(),
        })
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count() * self.q.node_count();
        if n > self.status.len() {
            let nq = self.q.node_count();
            let q = self.q.clone();
            let labels: Vec<_> = (0..g.node_count()).map(|v| g.label(v as NodeId)).collect();
            self.status
                .extend_to(n, |x| labels[x / nq] == q.label(x % nq));
            self.engine = Engine::new(n);
        }
    }
}

impl crate::IncrementalState for SimState {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        g.node_count() * self.q.node_count()
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        SimState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let threads = self.threads;
        let (fresh, stats) = SimState::batch(g, self.q.clone());
        *self = fresh;
        self.threads = threads; // a fallback must not undo the thread config
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        audit.run(&SimSpec::new(g, &self.q), &self.status)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.engine.set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        SimState::set_threads(self, threads);
    }

    fn space_bytes(&self) -> usize {
        SimState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        SimState::save_state(self)
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        let threads = self.threads;
        *self = SimState::restore(g, bytes)?;
        self.threads = threads;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    #[test]
    fn undirected_insertion_matches_the_dst_side() {
        // Regression: on undirected graphs both endpoints of a changed
        // edge are tails of evolved input sets, so an insert op oriented
        // (1, 0) must also reconsider node 0's variables. Found by the
        // post-run fixpoint audit in the fault-injection suite.
        let mut g = DynamicGraph::with_labels(false, vec![0, 1]);
        let q = Pattern::new(vec![0, 1], &[(0, 1)]);
        let (mut state, _) = SimState::batch(&g, q.clone());
        assert!(!state.matches(&g, 0, 0));
        let mut b = UpdateBatch::new();
        b.insert(1, 0, 1);
        let applied = b.apply(&mut g);
        state.update(&g, &applied);
        assert!(state.matches(&g, 0, 0), "0 now simulates pattern node 0");
        let (fresh, _) = SimState::batch(&g, q);
        assert_eq!(state.relation(), fresh.relation());
    }

    /// Reference: naive simulation fixpoint, O(rounds · n·nq · checks).
    fn sim_reference(g: &DynamicGraph, q: &Pattern) -> Vec<bool> {
        let nq = q.node_count();
        let n = g.node_count();
        let mut m: Vec<bool> = (0..n * nq)
            .map(|x| g.label((x / nq) as NodeId) == q.label(x % nq))
            .collect();
        loop {
            let mut changed = false;
            for v in 0..n {
                for u in 0..nq {
                    if !m[v * nq + u] {
                        continue;
                    }
                    let ok = q.out_neighbors(u).iter().all(|&u2| {
                        g.out_neighbors(v as NodeId)
                            .iter()
                            .any(|&(v2, _)| m[v2 as usize * nq + u2])
                    });
                    if !ok {
                        m[v * nq + u] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                return m;
            }
        }
    }

    fn assert_matches_reference(state: &SimState, g: &DynamicGraph) {
        let expect = sim_reference(g, state.pattern());
        assert_eq!(state.status.values(), expect.as_slice());
    }

    fn tri_pattern() -> Pattern {
        // a -> b -> c with back edge c -> b (cyclic, label-distinct).
        Pattern::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 1)])
    }

    #[test]
    fn batch_on_matching_cycle() {
        // Data: 0(a) -> 1(b) -> 2(c) -> 3(b) -> 4(c) -> 3 ...
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2, 1, 2]);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 3)] {
            g.insert_edge(u, v, 1);
        }
        let (state, _) = SimState::batch(&g, tri_pattern());
        assert_matches_reference(&state, &g);
        // The cycle 3 -> 4 -> 3 sustains (3,b),(4,c); 1 matches b via 2,
        // whose (2,c) needs an out-edge to a b-match: 2 -> 3 exists.
        assert!(state.matches(&g, 3, 1));
        assert!(state.matches(&g, 4, 2));
        assert!(state.matches(&g, 0, 0));
    }

    #[test]
    fn batch_retracts_unsupported_matches() {
        // 0(a) -> 1(b), but 1 has no c-successor: nothing matches a or b.
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2]);
        g.insert_edge(0, 1, 1);
        let (state, _) = SimState::batch(&g, tri_pattern());
        assert!(!state.matches(&g, 0, 0));
        assert!(!state.matches(&g, 1, 1));
        // Node 2 is a c-labelled sink; pattern c has an out-edge to b, so
        // it does not match either.
        assert!(!state.matches(&g, 2, 2));
        assert_matches_reference(&state, &g);
    }

    #[test]
    fn insertion_restores_matches() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2, 1]);
        g.insert_edge(0, 1, 1);
        g.insert_edge(2, 3, 1); // c -> b
        g.insert_edge(3, 2, 1); // b -> c : cycle sustains (2,c),(3,b)
        let (mut state, _) = SimState::batch(&g, tri_pattern());
        assert!(!state.matches(&g, 1, 1), "1 lacks a c-successor");
        let mut batch = UpdateBatch::new();
        batch.insert(1, 2, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_matches_reference(&state, &g);
        assert!(state.matches(&g, 1, 1));
        assert!(state.matches(&g, 0, 0));
    }

    #[test]
    fn deletion_retracts_matches() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2, 1]);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 2)] {
            g.insert_edge(u, v, 1);
        }
        let (mut state, _) = SimState::batch(&g, tri_pattern());
        assert!(state.matches(&g, 0, 0));
        let mut batch = UpdateBatch::new();
        batch.delete(1, 2);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_matches_reference(&state, &g);
        assert!(!state.matches(&g, 0, 0));
        assert!(!state.matches(&g, 1, 1));
        // The 2 <-> 3 cycle is self-sustaining and must survive.
        assert!(state.matches(&g, 2, 2));
        assert!(state.matches(&g, 3, 1));
    }

    #[test]
    fn repeated_rounds_match_reference() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(60, 240, true, 1, 3, 77);
        let q = tri_pattern();
        let (mut state, _) = SimState::batch(&g, q);
        let mut rng = SplitMix64::seed_from_u64(13);
        for round in 0..20 {
            let mut batch = UpdateBatch::new();
            for _ in 0..6 {
                let u = rng.gen_range(0..60) as NodeId;
                let v = rng.gen_range(0..60) as NodeId;
                if rng.gen_bool(0.55) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            let expect = sim_reference(&g, state.pattern());
            assert_eq!(
                state.status.values(),
                expect.as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn cyclic_pattern_on_cyclic_data_rounds() {
        // Stress the cyclic-anchor case the paper singles out: pattern
        // cycle b <-> c, data cycles breaking and reforming.
        use incgraph_graph::rng::SplitMix64;
        let q = Pattern::new(vec![1, 2], &[(0, 1), (1, 0)]);
        let mut g = DynamicGraph::with_labels(true, (0..40).map(|i| 1 + (i % 2) as u32).collect());
        let mut rng = SplitMix64::seed_from_u64(3);
        for i in 0..40u32 {
            g.insert_edge(i, (i + 1) % 40, 1);
        }
        let (mut state, _) = SimState::batch(&g, q);
        for round in 0..25 {
            let mut batch = UpdateBatch::new();
            for _ in 0..4 {
                let u = rng.gen_range(0..40) as NodeId;
                let v = rng.gen_range(0..40) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            let expect = sim_reference(&g, state.pattern());
            assert_eq!(
                state.status.values(),
                expect.as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn match_count_and_relation_agree() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2]);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        g.insert_edge(2, 1, 1);
        let (state, _) = SimState::batch(&g, tri_pattern());
        let rel = state.relation();
        assert_eq!(rel.len(), state.match_count());
        assert!(rel.contains(&(0, 0)));
    }

    #[test]
    fn vertex_insertion_extends_state() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1]);
        g.insert_edge(0, 1, 1);
        let (mut state, _) = SimState::batch(&g, tri_pattern());
        assert!(!state.matches(&g, 0, 0));
        let v = g.add_node(2); // a c-labelled node
        let mut batch = UpdateBatch::new();
        batch.insert(1, v, 1).insert(v, 1, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_matches_reference(&state, &g);
        assert!(state.matches(&g, 0, 0), "b now has a c-successor cycle");
    }
}
