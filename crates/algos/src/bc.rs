//! Biconnectivity: the sixth query class the paper names as
//! fixpoint-expressible (§3: "SSSP, CC, Sim, DFS, LCC, and
//! biconnectivity (BC) \[43\]").
//!
//! BC is the canonical *layered* fixpoint: it runs on top of the DFS
//! substrate. Given the DFS forest of an undirected graph, each node
//! carries the **lowpoint** status variable
//!
//! ```text
//! low_v = min( first_v,
//!              first_w  for every back edge (v, w),
//!              low_c    for every tree child c )
//! ```
//!
//! — a contracting, monotonic min-fixpoint over the tree (`⊥ = first_v`,
//! values only decrease, `dependents(v) = {parent(v)}`). Articulation
//! points and bridges are read off `low` and the tree:
//!
//! * `v` is an articulation point iff it is a root with ≥ 2 tree
//!   children, or a non-root with a child `c` such that `low_c ≥ first_v`;
//! * tree edge `(parent(c), c)` is a bridge iff `low_c > first_{parent}`.
//!
//! `IncBC` composes the deduced `IncDFS` (which keeps the canonical DFS
//! forest fresh) with a Theorem 1 PE-phase for `low`: the variables whose
//! *constants* changed (DFS numbers, adjacency) are reset to `⊥` together
//! with their new-tree ancestor chains, and the unchanged step function
//! re-lowers them — bottom-up, children before parents, by ranking on the
//! (negated) preorder number.

use crate::dfs::{DfsState, ROOT};
use crate::persist::{self, StateLoadError};
use incgraph_core::engine::{Engine, RunStats};
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::scope::ScopeStats;
use incgraph_core::spec::FixpointSpec;
use incgraph_core::status::Status;
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId};
use std::collections::HashSet;

/// The lowpoint fixpoint specification over a graph + DFS-forest snapshot.
pub struct LowSpec<'a> {
    g: &'a DynamicGraph,
    dfs: &'a DfsState,
}

impl<'a> LowSpec<'a> {
    /// Specification over `g` (undirected) and its DFS forest.
    pub fn new(g: &'a DynamicGraph, dfs: &'a DfsState) -> Self {
        assert!(!g.is_directed(), "BC is defined on undirected graphs");
        LowSpec { g, dfs }
    }
}

impl FixpointSpec for LowSpec<'_> {
    type Value = u32;

    fn num_vars(&self) -> usize {
        self.g.node_count()
    }

    fn bottom(&self, x: usize) -> u32 {
        self.dfs.first(x as NodeId)
    }

    fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
        let v = x as NodeId;
        let mut low = self.dfs.first(v);
        let parent = self.dfs.parent(v);
        for &(w, _) in self.g.out_neighbors(v) {
            if self.dfs.parent(w) == v {
                // Tree child: take its lowpoint.
                low = low.min(read(w as usize));
            } else if w != parent {
                // Back edge (undirected DFS leaves no cross edges).
                low = low.min(self.dfs.first(w));
            }
        }
        low
    }

    fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
        let p = self.dfs.parent(x as NodeId);
        if p != ROOT {
            push(p as usize);
        }
    }

    fn preceq(&self, a: &u32, b: &u32) -> bool {
        a <= b
    }

    fn rank(&self, _x: usize, _v: &u32) -> u64 {
        0
    }

    fn push_rank(&self, z: usize, _zv: &u32, _t: usize, _tv: &u32) -> u64 {
        // Children before parents: deeper preorder numbers pop first.
        u64::MAX - 1 - self.dfs.first(z as NodeId) as u64
    }
}

/// BC state: the DFS substrate plus the lowpoint fixpoint.
pub struct BcState {
    dfs: DfsState,
    low: Status<u32>,
    engine: Engine,
}

impl BcState {
    /// Runs batch BC: DFS forest, then the lowpoint fixpoint.
    pub fn batch(g: &DynamicGraph) -> (Self, RunStats) {
        let (dfs, mut stats) = DfsState::batch(g);
        let (low, engine, low_stats) = Self::low_from_scratch(g, &dfs);
        stats.merge(&low_stats);
        (BcState { dfs, low, engine }, stats)
    }

    fn low_from_scratch(g: &DynamicGraph, dfs: &DfsState) -> (Status<u32>, Engine, RunStats) {
        let spec = LowSpec::new(g, dfs);
        let mut low = Status::init(&spec, false);
        let mut engine = Engine::new(spec.num_vars());
        // Seed bottom-up so most lowpoints settle in one pass.
        let mut order: Vec<usize> = (0..spec.num_vars()).collect();
        order.sort_unstable_by_key(|&x| std::cmp::Reverse(dfs.first(x as NodeId)));
        let stats = engine.run(&spec, &mut low, order);
        (low, engine, stats)
    }

    /// The underlying DFS forest.
    pub fn dfs(&self) -> &DfsState {
        &self.dfs
    }

    /// Lowpoint of `v`.
    pub fn low(&self, v: NodeId) -> u32 {
        self.low.get(v as usize)
    }

    /// Whether `v` is an articulation (cut) point.
    pub fn is_articulation(&self, g: &DynamicGraph, v: NodeId) -> bool {
        let first_v = self.dfs.first(v);
        let mut children = 0usize;
        let mut cut = false;
        for &(w, _) in g.out_neighbors(v) {
            if self.dfs.parent(w) == v {
                children += 1;
                if self.low(w) >= first_v {
                    cut = true;
                }
            }
        }
        if self.dfs.parent(v) == ROOT {
            children >= 2
        } else {
            cut
        }
    }

    /// All articulation points, ascending.
    pub fn articulation_points(&self, g: &DynamicGraph) -> Vec<NodeId> {
        (0..g.node_count() as NodeId)
            .filter(|&v| self.is_articulation(g, v))
            .collect()
    }

    /// All bridges as `(parent, child)` tree edges with `low_child >
    /// first_parent`, ascending by child.
    pub fn bridges(&self, g: &DynamicGraph) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for c in 0..g.node_count() as NodeId {
            let p = self.dfs.parent(c);
            if p != ROOT && self.low(c) > self.dfs.first(p) {
                out.push((p, c));
            }
        }
        out
    }

    /// `IncBC`: refresh the DFS forest with `IncDFS`, then re-lower the
    /// lowpoints of the affected region (PE reset over the new-tree
    /// ancestor closure).
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        // Snapshot the DFS numbers that the low constants derive from.
        let n = g.node_count();
        self.ensure_size(n);
        let old_first: Vec<u32> = (0..n as NodeId).map(|v| self.dfs.first(v)).collect();
        let old_parent: Vec<NodeId> = (0..n as NodeId).map(|v| self.dfs.parent(v)).collect();

        let dfs_report = self.dfs.update(g, applied);

        // PE seeds: nodes whose DFS assignment changed (their constants
        // moved), their neighbors (who read those constants), and the
        // endpoints of ΔG (whose back-edge sets changed).
        let mut pe: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = Vec::new();
        let seed = |x: usize, pe: &mut HashSet<usize>, stack: &mut Vec<usize>| {
            if pe.insert(x) {
                stack.push(x);
            }
        };
        for v in 0..n {
            if self.dfs.first(v as NodeId) != old_first[v]
                || self.dfs.parent(v as NodeId) != old_parent[v]
            {
                seed(v, &mut pe, &mut stack);
                for &(w, _) in g.out_neighbors(v as NodeId) {
                    seed(w as usize, &mut pe, &mut stack);
                }
            }
        }
        for op in applied.ops() {
            for e in [op.src, op.dst] {
                if (e as usize) < n {
                    seed(e as usize, &mut pe, &mut stack);
                    for &(w, _) in g.out_neighbors(e) {
                        seed(w as usize, &mut pe, &mut stack);
                    }
                }
            }
        }
        // Upward closure: a changed lowpoint can raise every new-tree
        // ancestor, and the contracting engine cannot raise — so reset
        // the whole chain.
        let mut scope_stats = ScopeStats::default();
        while let Some(x) = stack.pop() {
            scope_stats.pops += 1;
            let p = self.dfs.parent(x as NodeId);
            if p != ROOT && pe.insert(p as usize) {
                stack.push(p as usize);
            }
        }

        let spec = LowSpec::new(g, &self.dfs);
        let mut scope: Vec<usize> = pe.into_iter().collect();
        scope.sort_unstable();
        for &x in &scope {
            let bot = spec.bottom(x);
            if self.low.get(x) != bot {
                self.low.set_unstamped(x, bot);
                scope_stats.raised += 1;
            }
        }
        let mut run = self.engine.run(&spec, &mut self.low, scope.iter().copied());
        run.merge(&dfs_report.run_stats);
        let scope_len = scope.len().max(dfs_report.scope_size);
        // The variable universe spans both layers: n interval variables
        // (DFS) plus n lowpoint variables.
        BoundednessReport::new(2 * n, scope_len, scope_stats, run)
    }

    /// Resident bytes (no timestamps: BC is deducible).
    pub fn space_bytes(&self) -> usize {
        self.dfs.space_bytes() + self.low.space_bytes() + self.engine.space_bytes()
    }

    fn ensure_size(&mut self, n: usize) {
        if n > self.low.len() {
            self.low.extend_to(n, |_| u32::MAX);
            self.engine = Engine::new(n);
        }
    }

    /// Serializes the durable essence (`SaveState`): the DFS substrate
    /// plus the lowpoint status. Deducible — no timestamps.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = persist::header("bc");
        self.dfs.save_payload(&mut out);
        persist::put_status(&mut out, &self.low, |v| v as u64);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without re-traversing or re-lowering (`LoadState`).
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, StateLoadError> {
        if g.is_directed() {
            return Err(StateLoadError::Malformed(
                "BC is defined on undirected graphs".into(),
            ));
        }
        let n = g.node_count();
        let mut r = persist::expect_header("bc", bytes)?;
        let dfs = DfsState::restore_payload(&mut r, n)?;
        let low = persist::read_status(&mut r, |b| {
            u32::try_from(b)
                .map_err(|_| StateLoadError::Malformed(format!("lowpoint {b} exceeds u32")))
        })?;
        r.finish()?;
        if low.len() != n {
            return Err(StateLoadError::SizeMismatch {
                expected: n,
                found: low.len(),
            });
        }
        if low.tracks_stamps() {
            return Err(StateLoadError::Malformed(
                "bc is deducible and stores no timestamps".into(),
            ));
        }
        Ok(BcState {
            dfs,
            low,
            engine: Engine::new(n),
        })
    }
}

impl crate::IncrementalState for BcState {
    fn name(&self) -> &'static str {
        "bc"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        2 * g.node_count()
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        BcState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let (fresh, stats) = BcState::batch(g);
        *self = fresh;
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        // Both layers: the DFS substrate by recompute-and-compare, the
        // lowpoint fixpoint by the generic σ_x re-check. Lowpoint
        // violations keep their variable index; DFS interval variables
        // are reported shifted by n into the second half of the 2n
        // universe.
        let n = g.node_count();
        let mut report = audit.run(&LowSpec::new(g, &self.dfs), &self.low);
        let dfs_report = self.dfs.audit_against_batch(g, audit);
        report.checked += dfs_report.checked;
        report.total_vars = 2 * n;
        report.truncated |= dfs_report.truncated;
        for mut v in dfs_report.violations {
            if report.violations.len() >= audit.max_violations {
                report.truncated = true;
                break;
            }
            v.var += n;
            report.violations.push(v);
        }
        report
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.engine.set_work_budget(budget);
    }

    fn space_bytes(&self) -> usize {
        BcState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        BcState::save_state(self)
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        *self = BcState::restore(g, bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    /// Reference: recursive Tarjan articulation points / bridges.
    fn reference(g: &DynamicGraph) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
        let n = g.node_count();
        let mut first = vec![u32::MAX; n];
        let mut low = vec![u32::MAX; n];
        let mut parent = vec![ROOT; n];
        let mut time = 0u32;
        let mut aps: HashSet<NodeId> = HashSet::new();
        let mut bridges: Vec<(NodeId, NodeId)> = Vec::new();

        // Iterative Tarjan with explicit stack.
        for r in 0..n as NodeId {
            if first[r as usize] != u32::MAX {
                continue;
            }
            let mut root_children = 0usize;
            let mut stack: Vec<(NodeId, usize)> = Vec::new();
            first[r as usize] = time;
            low[r as usize] = time;
            time += 1;
            stack.push((r, 0));
            'frames: while let Some(&(v, i0)) = stack.last() {
                let adj = g.out_neighbors(v);
                let mut i = i0;
                while i < adj.len() {
                    let w = adj[i].0;
                    i += 1;
                    if first[w as usize] == u32::MAX {
                        parent[w as usize] = v;
                        if v == r {
                            root_children += 1;
                        }
                        first[w as usize] = time;
                        low[w as usize] = time;
                        time += 1;
                        stack.last_mut().expect("frame").1 = i;
                        stack.push((w, 0));
                        continue 'frames;
                    } else if w != parent[v as usize] {
                        low[v as usize] = low[v as usize].min(first[w as usize]);
                    }
                }
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if p != r && low[v as usize] >= first[p as usize] {
                        aps.insert(p);
                    }
                    if low[v as usize] > first[p as usize] {
                        bridges.push((p, v));
                    }
                }
            }
            if root_children >= 2 {
                aps.insert(r);
            }
        }
        let mut aps: Vec<NodeId> = aps.into_iter().collect();
        aps.sort_unstable();
        bridges.sort_unstable_by_key(|&(_, c)| c);
        (aps, bridges)
    }

    fn assert_matches_reference(state: &BcState, g: &DynamicGraph) {
        let (aps, bridges) = reference(g);
        assert_eq!(state.articulation_points(g), aps, "articulation points");
        let mut got = state.bridges(g);
        got.sort_unstable_by_key(|&(_, c)| c);
        assert_eq!(got, bridges, "bridges");
    }

    #[test]
    fn path_graph_interior_nodes_are_cuts() {
        let mut g = DynamicGraph::new(false, 5);
        for i in 0..4u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (bc, _) = BcState::batch(&g);
        assert_eq!(bc.articulation_points(&g), vec![1, 2, 3]);
        assert_eq!(bc.bridges(&g).len(), 4, "every path edge is a bridge");
    }

    #[test]
    fn cycle_has_no_cuts_or_bridges() {
        let mut g = DynamicGraph::new(false, 6);
        for i in 0..6u32 {
            g.insert_edge(i, (i + 1) % 6, 1);
        }
        let (bc, _) = BcState::batch(&g);
        assert!(bc.articulation_points(&g).is_empty());
        assert!(bc.bridges(&g).is_empty());
    }

    #[test]
    fn barbell_center_is_a_cut() {
        // Two triangles joined by a bridge through node 2-3.
        let mut g = DynamicGraph::new(false, 6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            g.insert_edge(u, v, 1);
        }
        let (bc, _) = BcState::batch(&g);
        assert_eq!(bc.articulation_points(&g), vec![2, 3]);
        assert_eq!(bc.bridges(&g), vec![(2, 3)]);
        assert_matches_reference(&bc, &g);
    }

    #[test]
    fn batch_matches_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = incgraph_graph::gen::uniform(60, 120, false, 1, 1, seed);
            let (bc, _) = BcState::batch(&g);
            assert_matches_reference(&bc, &g);
        }
    }

    #[test]
    fn insertion_closes_a_cycle_and_clears_cuts() {
        let mut g = DynamicGraph::new(false, 4);
        for i in 0..3u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let (mut bc, _) = BcState::batch(&g);
        assert_eq!(bc.articulation_points(&g), vec![1, 2]);
        let mut b = UpdateBatch::new();
        b.insert(3, 0, 1);
        let applied = b.apply(&mut g);
        bc.update(&g, &applied);
        assert!(bc.articulation_points(&g).is_empty());
        assert_matches_reference(&bc, &g);
    }

    #[test]
    fn deletion_creates_bridges() {
        let mut g = DynamicGraph::new(false, 5);
        for i in 0..5u32 {
            g.insert_edge(i, (i + 1) % 5, 1);
        }
        let (mut bc, _) = BcState::batch(&g);
        assert!(bc.bridges(&g).is_empty());
        let mut b = UpdateBatch::new();
        b.delete(2, 3);
        let applied = b.apply(&mut g);
        bc.update(&g, &applied);
        assert_eq!(bc.bridges(&g).len(), 4);
        assert_matches_reference(&bc, &g);
    }

    #[test]
    fn random_rounds_match_reference() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(50, 110, false, 1, 1, 77);
        let (mut bc, _) = BcState::batch(&g);
        let mut rng = SplitMix64::seed_from_u64(31);
        for round in 0..20 {
            let mut batch = UpdateBatch::new();
            for _ in 0..5 {
                let u = rng.gen_range(0..50) as NodeId;
                let v = rng.gen_range(0..50) as NodeId;
                if u == v {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            bc.update(&g, &applied);
            let (aps, bridges) = reference(&g);
            assert_eq!(
                bc.articulation_points(&g),
                aps,
                "articulation points diverged at round {round}"
            );
            let mut got = bc.bridges(&g);
            got.sort_unstable_by_key(|&(_, c)| c);
            assert_eq!(got, bridges, "bridges diverged at round {round}");
        }
    }

    #[test]
    fn lowpoints_match_fresh_batch_after_updates() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(40, 90, false, 1, 1, 5);
        let (mut bc, _) = BcState::batch(&g);
        let mut rng = SplitMix64::seed_from_u64(8);
        for round in 0..15 {
            let mut batch = UpdateBatch::new();
            for _ in 0..4 {
                let u = rng.gen_range(0..40) as NodeId;
                let v = rng.gen_range(0..40) as NodeId;
                if u == v {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            bc.update(&g, &applied);
            let (fresh, _) = BcState::batch(&g);
            for v in 0..40u32 {
                assert_eq!(bc.low(v), fresh.low(v), "low_{v} diverged at round {round}");
            }
        }
    }

    #[test]
    fn localized_update_stays_local() {
        // A forest of 100 disjoint 10-node triangles-with-tails; an
        // update inside the last tree must skip the 99 earlier subtrees
        // (IncDFS) and re-lower only that tree's lowpoints.
        let mut g = DynamicGraph::new(false, 1000);
        for k in 0..100u32 {
            let base = k * 10;
            g.insert_edge(base, base + 1, 1);
            g.insert_edge(base + 1, base + 2, 1);
            g.insert_edge(base + 2, base, 1); // triangle
            for i in 2..9 {
                g.insert_edge(base + i, base + i + 1, 1); // tail
            }
        }
        let (mut bc, _) = BcState::batch(&g);
        let mut b = UpdateBatch::new();
        b.delete(997, 998);
        let applied = b.apply(&mut g);
        let report = bc.update(&g, &applied);
        assert_matches_reference(&bc, &g);
        assert!(
            report.inspected_vars < 100,
            "inspected {}",
            report.inspected_vars
        );
    }
}
