//! `SaveState`/`LoadState`: byte codecs for the durable essence of each
//! incremental state.
//!
//! A state's *durable essence* is exactly what the paper's incremental
//! model needs to resume after a restart: the stored query parameters
//! (SSSP/Reach source, Sim pattern) plus the status `D^r` — values, and
//! for the weakly deducible classes the timestamps and logical clock that
//! linearize the contributor order `<_C`. Engine scratch (worklists,
//! epoch arrays, parallel shards) is rebuildable and deliberately **not**
//! serialized; a restored state starts on a fresh sequential engine with
//! `threads = 1` until the caller reconfigures it.
//!
//! The encoding is a little-endian, length-prefixed byte stream with a
//! magic word and an embedded class name, so blobs are self-describing
//! and a blob fed to the wrong class fails loudly instead of
//! reinterpreting bytes. Integrity (checksums) is the caller's job — the
//! durability layer CRCs whole checkpoint files; this codec only
//! validates structure and semantic invariants (sizes against the graph,
//! stamp/clock consistency).

use incgraph_core::status::Status;

/// Magic word opening every state blob (`"IST1"` little-endian).
pub(crate) const MAGIC: u32 = 0x3154_5349;

/// Why a state blob could not be loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateLoadError {
    /// The blob ended before the declared structure did.
    Truncated,
    /// The magic word is wrong — not a state blob at all.
    BadMagic,
    /// The blob belongs to a different query class.
    WrongClass {
        /// Class the caller asked for.
        expected: String,
        /// Class named inside the blob.
        found: String,
    },
    /// A stored size disagrees with the graph being restored against.
    SizeMismatch {
        /// Size implied by the graph.
        expected: usize,
        /// Size found in the blob.
        found: usize,
    },
    /// A structural or semantic invariant is violated.
    Malformed(String),
}

impl std::fmt::Display for StateLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateLoadError::Truncated => write!(f, "state blob truncated"),
            StateLoadError::BadMagic => write!(f, "not a state blob (bad magic)"),
            StateLoadError::WrongClass { expected, found } => {
                write!(
                    f,
                    "state blob is for class `{found}`, expected `{expected}`"
                )
            }
            StateLoadError::SizeMismatch { expected, found } => {
                write!(f, "state sized for {found} vars, graph implies {expected}")
            }
            StateLoadError::Malformed(detail) => write!(f, "malformed state blob: {detail}"),
        }
    }
}

impl std::error::Error for StateLoadError {}

/// Little-endian primitive writers.
pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Opens a blob with the magic word and the class name.
pub(crate) fn header(name: &str) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, MAGIC);
    debug_assert!(name.len() <= u8::MAX as usize);
    put_u8(&mut out, name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    out
}

/// A bounds-checked little-endian reader over a state blob.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateLoadError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(StateLoadError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StateLoadError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StateLoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StateLoadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length declared in the blob, guarding against lengths that
    /// could not possibly fit in the remaining bytes (corrupt blobs must
    /// fail, not allocate).
    pub(crate) fn len(&mut self, elem_bytes: usize) -> Result<usize, StateLoadError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes as u64)
            .is_none_or(|b| b > remaining)
        {
            return Err(StateLoadError::Truncated);
        }
        Ok(n as usize)
    }

    /// The blob must be fully consumed — trailing garbage is corruption.
    pub(crate) fn finish(self) -> Result<(), StateLoadError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StateLoadError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Checks the magic word and the class name, returning a reader
/// positioned at the class payload.
pub(crate) fn expect_header<'a>(
    name: &str,
    bytes: &'a [u8],
) -> Result<ByteReader<'a>, StateLoadError> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != MAGIC {
        return Err(StateLoadError::BadMagic);
    }
    let n = r.u8()? as usize;
    let found = std::str::from_utf8(r.take(n)?)
        .map_err(|_| StateLoadError::Malformed("class name is not utf-8".into()))?;
    if found != name {
        return Err(StateLoadError::WrongClass {
            expected: name.into(),
            found: found.into(),
        });
    }
    Ok(r)
}

/// Peeks the class name of a blob without decoding the payload — the
/// dispatcher's routing key.
pub fn peek_class(bytes: &[u8]) -> Result<String, StateLoadError> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != MAGIC {
        return Err(StateLoadError::BadMagic);
    }
    let n = r.u8()? as usize;
    Ok(std::str::from_utf8(r.take(n)?)
        .map_err(|_| StateLoadError::Malformed("class name is not utf-8".into()))?
        .to_string())
}

/// Serializes a status: length, stamp flag, packed values, stamps, clock.
pub(crate) fn put_status<V: Copy + PartialEq>(
    out: &mut Vec<u8>,
    s: &Status<V>,
    enc: impl Fn(V) -> u64,
) {
    put_u64(out, s.len() as u64);
    put_u8(out, s.tracks_stamps() as u8);
    for x in 0..s.len() {
        put_u64(out, enc(s.get(x)));
    }
    if s.tracks_stamps() {
        for &st in s.stamps() {
            put_u64(out, st);
        }
        put_u64(out, s.clock());
    }
}

/// Deserializes a status written by [`put_status`]; `dec` rejects value
/// encodings outside the class's domain.
pub(crate) fn read_status<V: Copy + PartialEq>(
    r: &mut ByteReader<'_>,
    dec: impl Fn(u64) -> Result<V, StateLoadError>,
) -> Result<Status<V>, StateLoadError> {
    let n = r.len(8)?;
    let tracked = match r.u8()? {
        0 => false,
        1 => true,
        b => return Err(StateLoadError::Malformed(format!("stamp flag {b}"))),
    };
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(dec(r.u64()?)?);
    }
    let (stamps, clock) = if tracked {
        let mut stamps = Vec::with_capacity(n);
        for _ in 0..n {
            stamps.push(r.u64()?);
        }
        let clock = r.u64()?;
        if stamps.iter().any(|&s| s > clock) {
            return Err(StateLoadError::Malformed(
                "timestamp beyond the logical clock".into(),
            ));
        }
        (stamps, clock)
    } else {
        (Vec::new(), 0)
    };
    Ok(Status::from_parts(vals, stamps, clock))
}

/// Decoder for Boolean statuses: any bit pattern other than 0/1 is
/// corruption.
pub(crate) fn dec_bool(bits: u64) -> Result<bool, StateLoadError> {
    match bits {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(StateLoadError::Malformed(format!("boolean encoded as {b}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut out = Vec::new();
        put_u64(&mut out, 7);
        let mut r = ByteReader::new(&out[..4]);
        assert_eq!(r.u64(), Err(StateLoadError::Truncated));
        let r2 = ByteReader::new(&out);
        assert!(matches!(r2.finish(), Err(StateLoadError::Malformed(_))));
    }

    #[test]
    fn header_roundtrip_and_class_mismatch() {
        let h = header("sssp");
        assert_eq!(peek_class(&h).unwrap(), "sssp");
        assert!(expect_header("sssp", &h).is_ok());
        assert!(matches!(
            expect_header("cc", &h),
            Err(StateLoadError::WrongClass { .. })
        ));
        assert!(matches!(
            expect_header("cc", b"junk"),
            Err(StateLoadError::BadMagic)
        ));
    }

    #[test]
    fn status_roundtrip_with_and_without_stamps() {
        let plain = Status::from_values(vec![3u64, 9, 1]);
        let mut out = Vec::new();
        put_status(&mut out, &plain, |v| v);
        let mut r = ByteReader::new(&out);
        let back = read_status::<u64>(&mut r, Ok).unwrap();
        r.finish().unwrap();
        assert_eq!(back.values(), plain.values());
        assert!(!back.tracks_stamps());

        let stamped = Status::from_parts(vec![true, false], vec![2, 0], 2);
        let mut out = Vec::new();
        put_status(&mut out, &stamped, |v| v as u64);
        let mut r = ByteReader::new(&out);
        let back = read_status(&mut r, dec_bool).unwrap();
        r.finish().unwrap();
        assert_eq!(back.values(), stamped.values());
        assert_eq!(back.stamps(), stamped.stamps());
        assert_eq!(back.clock(), 2);
    }

    #[test]
    fn oversized_length_fails_instead_of_allocating() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.len(8), Err(StateLoadError::Truncated));
    }
}
