//! Single-source shortest paths: Dijkstra as a fixpoint algorithm
//! (paper Fig. 1) and its deduced incremental algorithm `IncSSSP`
//! (paper Fig. 5 / Example 4).
//!
//! Status variable `x_v` = shortest distance from the source to `v`,
//! `⊥ = ∞`. The update function is
//! `f_{x_v}(Y) = min_{u ∈ in_nbr(v)} (x_u + L(u, v))`, the partial order
//! `⪯` is `≤` on distances (values only decrease during a run —
//! contracting — and `min` of sums is monotone), and the worklist rank is
//! the distance itself, which makes the generic engine behave exactly like
//! Dijkstra's priority queue on non-negative weights.
//!
//! `IncSSSP` is **deducible**: the order `<_C` is read off the final
//! distances (`x_u <_C x_v ⟺ x_u < x_v`, Example 3), so no timestamps are
//! kept. Its anchor sets are exactly `C_{x_v} = {x_u ∈ Y | x_u + L(u,v) =
//! x_v}` (Example 3): the contributor oracle pushes only the tightly
//! supported out-neighbors.

use crate::persist::{self, StateLoadError};
use incgraph_core::engine::{Engine, RunStats};
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::par::ParEngine;
use incgraph_core::scope::{bounded_scope_in, pe_reset_scope_in, ContributorOracle, ScopeScratch};
use incgraph_core::spec::{FixpointSpec, Relax};
use incgraph_core::status::Status;
use incgraph_graph::ids::{Dist, INF_DIST};
use incgraph_graph::{AppliedBatch, CsrSnapshot, DynamicGraph, GraphView, NodeId};

/// The SSSP fixpoint specification over a graph snapshot.
///
/// Generic over the storage layout: the incremental path runs it on the
/// live [`DynamicGraph`], the parallel batch path on a flat
/// [`CsrSnapshot`] (or a [`CsrOverlay`](incgraph_graph::CsrOverlay)).
/// Exposed so the bench crate can drive the raw engine (`bench_engine`);
/// normal users go through [`SsspState`].
pub struct SsspSpec<'g, G: GraphView = DynamicGraph> {
    g: &'g G,
    source: NodeId,
}

impl<'g, G: GraphView> SsspSpec<'g, G> {
    /// Specification for the given graph and source.
    pub fn new(g: &'g G, source: NodeId) -> Self {
        assert!((source as usize) < g.node_count(), "source out of range");
        SsspSpec { g, source }
    }
}

impl<G: GraphView> FixpointSpec for SsspSpec<'_, G> {
    type Value = Dist;

    fn num_vars(&self) -> usize {
        self.g.node_count()
    }

    fn bottom(&self, x: usize) -> Dist {
        if x == self.source as usize {
            0
        } else {
            INF_DIST
        }
    }

    fn eval<R: FnMut(usize) -> Dist>(&self, x: usize, read: &mut R) -> Dist {
        if x == self.source as usize {
            return 0;
        }
        let mut best = INF_DIST;
        for &(u, w) in self.g.in_neighbors(x as NodeId) {
            let du = read(u as usize);
            if du != INF_DIST {
                best = best.min(du + w as Dist);
            }
        }
        best
    }

    fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
        for &(v, _) in self.g.out_neighbors(x as NodeId) {
            push(v as usize);
        }
    }

    fn preceq(&self, a: &Dist, b: &Dist) -> bool {
        a <= b
    }

    fn relax(&self, z: usize, z_val: &Dist, trigger: usize, tv: &Dist) -> Relax<Dist> {
        // The relaxation of the paper's Fig. 1, line 7: when the tail's
        // distance drops to `tv`, the head's candidate is `tv + L(u, v)`.
        if z == self.source as usize || *tv == INF_DIST {
            return Relax::Skip;
        }
        let w = self
            .g
            .edge_weight(trigger as NodeId, z as NodeId)
            .expect("dependent implies an edge") as Dist;
        let cand = tv + w;
        if cand < *z_val {
            Relax::Set(cand)
        } else {
            Relax::Skip
        }
    }

    fn rank(&self, _x: usize, v: &Dist) -> u64 {
        *v
    }

    fn push_rank(&self, _z: usize, _zv: &Dist, _t: usize, tv: &Dist) -> u64 {
        // Process a relaxed node no earlier than the distance that
        // triggered it: pops then happen in near-final distance order.
        *tv
    }
}

/// Contributor oracle of `IncSSSP`: the order `<_C` is the old distance
/// value, and the anchor sets are exactly the paper's Example 3
/// (`C_{x_v} = {x_u ∈ Y | x_u + L(u,v) = x_v}`): a raised variable `x`
/// can only invalidate the out-neighbors whose old distance it *tightly*
/// supported.
struct SsspOracle<'a> {
    g: &'a DynamicGraph,
}

impl ContributorOracle<Dist> for SsspOracle<'_> {
    fn order_key(&self, x: usize, status: &Status<Dist>) -> u64 {
        status.get(x)
    }

    fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<Dist>, push: &mut P) {
        // Called before x's raise lands, so this is x's pre-raise (old
        // fixpoint) distance; an anchored out-neighbor is exactly tight.
        let dx = status.get(x);
        if dx == u64::MAX {
            return;
        }
        for &(z, w) in self.g.out_neighbors(x as NodeId) {
            if status.get(z as usize) == dx + w as Dist {
                push(z as usize);
            }
        }
    }
}

/// SSSP state: the previous fixpoint plus the reusable engine, i.e.
/// everything `A_Δ` is allowed to keep between updates.
pub struct SsspState {
    source: NodeId,
    status: Status<Dist>,
    engine: Engine,
    threads: usize,
    par: Option<ParEngine>,
    /// Reusable arena for the scope function: epoch-reset bitmaps and
    /// high-water vectors make steady-state updates allocation-free.
    scratch: ScopeScratch,
}

impl SsspState {
    /// Runs batch Dijkstra (the fixpoint formulation) from `source`.
    pub fn batch(g: &DynamicGraph, source: NodeId) -> (Self, RunStats) {
        let spec = SsspSpec::new(g, source);
        // Deducible: no timestamps.
        let mut status = Status::init(&spec, false);
        let mut engine = Engine::new(spec.num_vars());
        // Initially only the source's out-neighbors can violate σ.
        let scope: Vec<usize> = g
            .out_neighbors(source)
            .iter()
            .map(|&(v, _)| v as usize)
            .collect();
        let stats = engine.run(&spec, &mut status, scope);
        (
            SsspState {
                source,
                status,
                engine,
                threads: 1,
                par: None,
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Runs the batch fixpoint with the sharded parallel engine over a
    /// flat CSR snapshot of `g`, and leaves the state configured to keep
    /// using `threads` shards for subsequent updates. The fixpoint values
    /// are identical to [`batch`](Self::batch) (C2 uniqueness).
    pub fn batch_par(g: &DynamicGraph, source: NodeId, threads: usize) -> (Self, RunStats) {
        let threads = threads.max(1);
        let csr = CsrSnapshot::new(g);
        let spec = SsspSpec::new(&csr, source);
        let mut status = Status::init(&spec, false);
        let mut par = ParEngine::new(spec.num_vars(), threads);
        let scope: Vec<usize> = csr
            .out_neighbors(source)
            .iter()
            .map(|&(v, _)| v as usize)
            .collect();
        let stats = par.run(&spec, &mut status, scope);
        (
            SsspState {
                source,
                status,
                engine: Engine::new(g.node_count()),
                threads,
                par: Some(par),
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Sets the number of worker shards for subsequent fixpoint runs
    /// (1 = the sequential engine).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Resumes the step function over `scope` on the configured engine:
    /// the sharded parallel engine when `threads > 1` or when a parallel
    /// engine is already attached (a `batch_par(_, 1)` state keeps its
    /// inline bucket-queue engine rather than falling back to the binary
    /// heap), the sequential worklist otherwise. The mid-run work budget
    /// installed on the sequential engine applies to both.
    fn resume<G: GraphView>(&mut self, spec: &SsspSpec<'_, G>, scope: &[usize]) -> RunStats {
        if self.threads > 1 || self.par.is_some() {
            let fresh = !matches!(&self.par,
                Some(p) if p.num_vars() == spec.num_vars() && p.nthreads() == self.threads);
            if fresh {
                self.par = Some(ParEngine::new(spec.num_vars(), self.threads));
            }
            let par = self.par.as_mut().expect("just ensured");
            par.set_work_budget(self.engine.work_budget());
            let stats = par.run(spec, &mut self.status, scope.iter().copied());
            if !stats.poisoned {
                return stats;
            }
            // A shard panicked. The poisoned run wrote nothing back, so
            // the status is still the feasible pre-run state; degrade to
            // the sequential engine (permanently — the panic would only
            // recur) and resume from the same scope. C2 uniqueness gives
            // the same fixpoint, and `poisoned` survives in the merged
            // stats as the record of the degradation.
            self.par = None;
            self.threads = 1;
            let mut out = stats;
            out.merge(
                &self
                    .engine
                    .run(spec, &mut self.status, scope.iter().copied()),
            );
            out
        } else {
            self.engine
                .run(spec, &mut self.status, scope.iter().copied())
        }
    }

    /// Extends `out` with every status variable the last update *may*
    /// have changed: the initial scope `H⁰` plus the engines' changed-set
    /// logs (always a superset of the truly changed variables; stale log
    /// entries merely cost a value comparison).
    pub(crate) fn delta_candidates(&self, out: &mut Vec<usize>) {
        out.extend_from_slice(&self.scratch.scope);
        out.extend_from_slice(self.engine.changed_vars());
        if let Some(p) = &self.par {
            out.extend_from_slice(p.changed_vars());
        }
    }

    /// The query source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Current shortest distance of every node ([`INF_DIST`] if
    /// unreachable).
    pub fn distances(&self) -> &[Dist] {
        self.status.values()
    }

    /// Distance of one node.
    pub fn distance(&self, v: NodeId) -> Dist {
        self.status.get(v as usize)
    }

    /// `IncSSSP` (paper Fig. 5): given the already-updated graph
    /// `G ⊕ ΔG` and the effective updates, adjusts the previous fixpoint
    /// via the initial scope function `h` and resumes the unchanged step
    /// function.
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.ensure_size(g);
        let spec = SsspSpec::new(g, self.source);

        // Variables with evolved input sets: heads of changed edges (both
        // endpoints on undirected graphs, where in_nbr = nbr). A head is
        // kept only when its statement σ can actually be violated:
        // an inserted edge must *improve* on the stored distance, and a
        // deleted edge must have been *tight* (it supported the stored
        // distance). Anything else provably leaves f_x unchanged.
        self.scratch.touched.clear();
        {
            let status = &self.status;
            let touched = &mut self.scratch.touched;
            let mut consider = |tail: NodeId, head: NodeId, w: u64, inserted: bool| {
                let dt = status.get(tail as usize);
                if dt == INF_DIST {
                    return;
                }
                let keep = if inserted {
                    dt + w < status.get(head as usize)
                } else {
                    dt + w == status.get(head as usize)
                };
                if keep {
                    touched.push(head as usize);
                }
            };
            for op in applied.ops() {
                consider(op.src, op.dst, op.weight as u64, op.inserted);
                if !g.is_directed() {
                    consider(op.dst, op.src, op.weight as u64, op.inserted);
                }
            }
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();

        // Deducible: the order <_C is read off the (live) distance
        // values themselves; no snapshot and no timestamps.
        let oracle = SsspOracle { g };
        let stats = bounded_scope_in(&spec, &oracle, &mut self.status, &mut self.scratch);
        // Take H⁰ out of the scratch around the resume (the engine needs
        // &mut self); the scope functions re-clear it on entry.
        let scope = std::mem::take(&mut self.scratch.scope);
        let run = self.resume(&spec, &scope);
        let report = BoundednessReport::new(spec.num_vars(), scope.len(), stats, run);
        self.scratch.scope = scope;
        report
    }

    /// The Theorem 1 construction for SSSP (ablation `abl-scope`): flood
    /// PE variables through dependency edges — i.e. everything reachable
    /// from the touched nodes — reset them to `∞`, and re-run. Correct
    /// but unbounded: contrast with [`update`](Self::update).
    pub fn update_pe_reset(
        &mut self,
        g: &DynamicGraph,
        applied: &AppliedBatch,
    ) -> BoundednessReport {
        self.ensure_size(g);
        let spec = SsspSpec::new(g, self.source);
        self.scratch.touched.clear();
        for op in applied.ops() {
            self.scratch.touched.push(op.dst as usize);
            if !g.is_directed() {
                self.scratch.touched.push(op.src as usize);
            }
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();
        let stats = pe_reset_scope_in(&spec, &mut self.status, &mut self.scratch);
        // The reset region must be re-reachable from its boundary: seed
        // the engine with the region plus the sources feeding into it.
        let scope_len = self.scratch.scope.len();
        let mut seeds = std::mem::take(&mut self.scratch.scope);
        seeds.push(self.source as usize);
        let run = self.resume(&spec, &seeds);
        seeds.pop();
        self.scratch.scope = seeds;
        BoundednessReport::new(spec.num_vars(), scope_len, stats, run)
    }

    /// Resident bytes of the algorithm's state (Fig. 8 space experiment).
    pub fn space_bytes(&self) -> usize {
        self.status.space_bytes()
            + self.engine.space_bytes()
            + self.par.as_ref().map_or(0, |p| p.space_bytes())
            + self.scratch.space_bytes()
    }

    /// Serializes the durable essence of the state (`SaveState`): the
    /// source plus the distance status. See [`crate::persist`].
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = persist::header("sssp");
        persist::put_u32(&mut out, self.source);
        persist::put_status(&mut out, &self.status, |d| d);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without running any fixpoint (`LoadState`): the blob *is* the
    /// fixpoint. The engine starts fresh and sequential.
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, StateLoadError> {
        let mut r = persist::expect_header("sssp", bytes)?;
        let source = r.u32()?;
        let status = persist::read_status(&mut r, Ok)?;
        r.finish()?;
        if status.len() != g.node_count() {
            return Err(StateLoadError::SizeMismatch {
                expected: g.node_count(),
                found: status.len(),
            });
        }
        if status.tracks_stamps() {
            return Err(StateLoadError::Malformed(
                "sssp is deducible and stores no timestamps".into(),
            ));
        }
        if (source as usize) >= g.node_count() {
            return Err(StateLoadError::Malformed("source out of range".into()));
        }
        Ok(SsspState {
            source,
            status,
            engine: Engine::new(g.node_count()),
            threads: 1,
            par: None,
            scratch: ScopeScratch::new(),
        })
    }

    /// Extends the state when nodes were added to the graph (vertex
    /// insertions are edge updates plus fresh `⊥` variables, §4).
    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count();
        if n > self.status.len() {
            self.status.extend_to(n, |_| INF_DIST);
            self.engine = Engine::new(n);
        }
    }

    /// Test hook: corrupt one stored distance without restamping, to
    /// exercise the audit/fallback machinery.
    #[cfg(test)]
    pub(crate) fn poison(&mut self, v: NodeId, d: Dist) {
        self.status.set_unstamped(v as usize, d);
    }
}

impl crate::IncrementalState for SsspState {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        g.node_count()
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        SsspState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let threads = self.threads;
        let (fresh, stats) = SsspState::batch(g, self.source);
        *self = fresh;
        self.threads = threads; // a fallback must not undo the thread config
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        audit.run(&SsspSpec::new(g, self.source), &self.status)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.engine.set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        SsspState::set_threads(self, threads);
    }

    fn space_bytes(&self) -> usize {
        SsspState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        SsspState::save_state(self)
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        let threads = self.threads;
        *self = SsspState::restore(g, bytes)?;
        self.threads = threads;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    /// The paper's running example graph (Fig. 2(a), node 0 the source),
    /// reconstructed so that every value in Fig. 3 is reproduced: the
    /// SSSP distances and anchor sets of Fig. 3(a) (both the G and the
    /// G ⊕ ΔG columns), and the LCC degrees/triangle counts of Fig. 3(d).
    /// The dotted edge (5,3) is *not* present initially; ΔG deletes the
    /// bold edge (5,6) and inserts (5,3) with weight 1.
    pub(crate) fn paper_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new(true, 8);
        for (u, v, w) in [
            (0u32, 1u32, 6u32),
            (0, 2, 1),
            (2, 1, 4),
            (1, 4, 1),
            (1, 5, 1),
            (2, 5, 1),
            (4, 3, 1),
            (3, 1, 1),
            (4, 5, 1),
            (4, 6, 4),
            (5, 6, 1),
            (6, 7, 1),
            (2, 7, 4),
        ] {
            g.insert_edge(u, v, w);
        }
        g
    }

    fn dijkstra_reference(g: &DynamicGraph, s: NodeId) -> Vec<Dist> {
        // Textbook Dijkstra, independent of the fixpoint machinery.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = g.node_count();
        let mut dist = vec![INF_DIST; n];
        dist[s as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in g.out_neighbors(u) {
                let nd = d + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn batch_matches_paper_example() {
        let g = paper_graph();
        let (state, _) = SsspState::batch(&g, 0);
        assert_eq!(state.distances(), &[0, 5, 1, 7, 6, 2, 3, 4]);
    }

    #[test]
    fn incremental_matches_paper_example_4() {
        // ΔG: delete (5,6), insert dotted (5,3) with weight 1.
        let mut g = paper_graph();
        let (mut state, _) = SsspState::batch(&g, 0);
        let mut batch = UpdateBatch::new();
        batch.delete(5, 6).insert(5, 3, 1);
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        // Fig. 3(a), G ⊕ ΔG column.
        assert_eq!(state.distances(), &[0, 4, 1, 3, 5, 2, 9, 5]);
        // Boundedness: the affected area is small; far fewer than all 8
        // variables should have been raised by h.
        assert!(report.scope_size <= 5, "scope was {}", report.scope_size);
    }

    #[test]
    fn batch_agrees_with_reference_on_random_graph() {
        let g = incgraph_graph::gen::uniform(300, 1500, true, 10, 5, 42);
        let (state, _) = SsspState::batch(&g, 7);
        assert_eq!(state.distances(), dijkstra_reference(&g, 7).as_slice());
    }

    #[test]
    fn incremental_equals_recompute_random_mixed_updates() {
        let mut g = incgraph_graph::gen::uniform(200, 1000, true, 10, 5, 7);
        let (mut state, _) = SsspState::batch(&g, 0);
        use incgraph_graph::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(99);
        for round in 0..10 {
            let mut batch = UpdateBatch::new();
            for _ in 0..20 {
                let u = rng.gen_range(0..200) as NodeId;
                let v = rng.gen_range(0..200) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, rng.gen_range(1u32..=10));
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            assert_eq!(
                state.distances(),
                dijkstra_reference(&g, 0).as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn deleting_all_source_edges_disconnects() {
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        let (mut state, _) = SsspState::batch(&g, 0);
        assert_eq!(state.distances(), &[0, 1, 2]);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.distances(), &[0, INF_DIST, INF_DIST]);
    }

    #[test]
    fn insertion_reaching_disconnected_region() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 1, 2);
        g.insert_edge(2, 3, 3);
        let (mut state, _) = SsspState::batch(&g, 0);
        assert_eq!(state.distances(), &[0, 2, INF_DIST, INF_DIST]);
        let mut batch = UpdateBatch::new();
        batch.insert(1, 2, 4);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.distances(), &[0, 2, 6, 9]);
    }

    #[test]
    fn undirected_graphs_are_supported() {
        let mut g = incgraph_graph::gen::grid(6, 6, 9, 3);
        let (mut state, _) = SsspState::batch(&g, 0);
        assert_eq!(state.distances(), dijkstra_reference(&g, 0).as_slice());
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(0, 35, 2);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.distances(), dijkstra_reference(&g, 0).as_slice());
    }

    #[test]
    fn vertex_insertion_extends_state() {
        let mut g = DynamicGraph::new(true, 2);
        g.insert_edge(0, 1, 1);
        let (mut state, _) = SsspState::batch(&g, 0);
        let v = g.add_node(0);
        let mut batch = UpdateBatch::new();
        batch.insert(1, v, 5);
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.distances(), &[0, 1, 6]);
    }

    #[test]
    fn noop_batch_inspects_nothing() {
        let mut g = paper_graph();
        let (mut state, _) = SsspState::batch(&g, 0);
        let applied = UpdateBatch::new().apply(&mut g);
        let report = state.update(&g, &applied);
        assert_eq!(report.scope_size, 0);
        assert_eq!(report.run_stats.pops, 0);
    }

    #[test]
    fn poisoned_parallel_run_degrades_to_sequential() {
        // An injected shard panic must poison the parallel run (which
        // writes nothing back) and fall through to the sequential engine,
        // landing on the exact batch fixpoint instead of aborting.
        let mut g = DynamicGraph::new(true, 64);
        for v in 0..63u32 {
            g.insert_edge(v, v + 1, 1);
        }
        let (mut state, _) = SsspState::batch_par(&g, 0, 4);
        state
            .par
            .as_mut()
            .expect("batch_par keeps its engine")
            .inject_panic_on(Some(3));
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        assert!(report.run_stats.poisoned, "panic must be recorded");
        assert!(!report.run_stats.aborted);
        assert_eq!(state.threads, 1, "degradation is permanent");
        assert!(state.par.is_none());
        assert_eq!(state.distances(), dijkstra_reference(&g, 0).as_slice());
        // Subsequent updates run sequentially and stay correct.
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 2);
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        assert!(!report.run_stats.poisoned);
        assert_eq!(state.distances(), dijkstra_reference(&g, 0).as_slice());
    }

    #[test]
    fn unit_by_unit_agrees_with_batch_update() {
        // IncSSSP_n: apply each unit update separately; the final
        // distances must agree with one batched IncSSSP run.
        let base = incgraph_graph::gen::uniform(150, 700, true, 10, 5, 5);
        let mut batch = UpdateBatch::new();
        batch
            .delete(0, 1)
            .insert(3, 77, 2)
            .insert(77, 99, 1)
            .delete(10, 20)
            .insert(99, 3, 4);

        let mut g1 = base.clone();
        let (mut bulk, _) = SsspState::batch(&g1, 3);
        let applied = batch.apply(&mut g1);
        bulk.update(&g1, &applied);

        let mut g2 = base.clone();
        let (mut unit, _) = SsspState::batch(&g2, 3);
        for u in batch.as_units() {
            let a = u.apply(&mut g2);
            unit.update(&g2, &a);
        }
        assert_eq!(bulk.distances(), unit.distances());
    }
}
