//! Typed query-class outputs: the [`OutputSnapshot`] a [`Session`]
//! maintains and the [`OutputDelta`] each update emits.
//!
//! Historically every consumer of a session's result — the wire DELTA
//! notifier, the bench probes, the differential oracles — re-derived
//! changes by materializing two full `digest()` vectors and zipping
//! them. The snapshot/delta pair replaces that idiom: the session keeps
//! its output materialized as one canonical `u64` stream (byte-identical
//! to the historical digest) and computes each update's changes from the
//! engine's changed-set, so consumers get an `O(|Δoutput|)` delta
//! without ever diffing `O(|Ψ|)` vectors themselves.
//!
//! Two granularities coexist on purpose:
//!
//! * **Entry-level** ([`OutputChange`]): positions in the digest stream.
//!   This is the unit of the wire `DELTA` protocol and the corpus
//!   replay, which must stay byte-identical across the redesign.
//! * **Node-level** ([`NodeChange`]): per-node `(key, old, new)` changes
//!   to the class's σ_x — distance, component id, reachable bit,
//!   preorder rank, simulation match set, packed LCC value. This is the
//!   row representation the `incgraph-dataflow` operator layer consumes.
//!
//! [`Session`]: crate::Session

use crate::session::QueryClass;
use incgraph_core::metrics::BoundednessReport;

/// A session's materialized output: the canonical per-node value stream
/// plus any class-specific tail (BC's bridge list). Concatenating
/// `entries` and `tail` reproduces the historical `digest()` vector
/// exactly, which is what keeps wire digests and corpus replay stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputSnapshot {
    class: QueryClass,
    nodes: usize,
    /// Digest entries per node: 1 for SSSP/CC/Reach/LCC/BC, the pattern
    /// node count for Sim, 3 (first, last, parent) for DFS.
    stride: usize,
    entries: Vec<u64>,
    tail: Vec<u64>,
}

impl OutputSnapshot {
    pub(crate) fn new(
        class: QueryClass,
        nodes: usize,
        stride: usize,
        entries: Vec<u64>,
        tail: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(entries.len(), nodes * stride);
        OutputSnapshot {
            class,
            nodes,
            stride,
            entries,
            tail,
        }
    }

    /// The query class this snapshot belongs to.
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// Number of graph nodes covered.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Digest entries per node.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Per-node portion of the digest stream.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Class-specific tail (BC bridges; empty for the other classes).
    pub fn tail(&self) -> &[u64] {
        &self.tail
    }

    /// Total digest length (`entries` + `tail`).
    pub fn digest_len(&self) -> usize {
        self.entries.len() + self.tail.len()
    }

    /// Overwrites one per-node entry (the session's candidate-restricted
    /// refresh path).
    pub(crate) fn set_entry(&mut self, i: usize, v: u64) {
        self.entries[i] = v;
    }

    /// Digest entry at flat index `i` (entries first, then tail).
    pub fn entry(&self, i: usize) -> u64 {
        if i < self.entries.len() {
            self.entries[i]
        } else {
            self.tail[i - self.entries.len()]
        }
    }

    /// The historical digest vector, byte-identical to what
    /// `Session::digest` always produced.
    pub fn to_digest(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.digest_len());
        out.extend_from_slice(&self.entries);
        out.extend_from_slice(&self.tail);
        out
    }

    /// The node's σ_x as one `u64`: the digest entry for stride-1
    /// classes, the preorder rank for DFS, and a `q`-bit match bitmask
    /// for Sim (bit `u % 64` set iff the node simulates pattern node
    /// `u`).
    pub fn node_value(&self, v: usize) -> u64 {
        match self.class {
            QueryClass::Sim => {
                let row = &self.entries[v * self.stride..(v + 1) * self.stride];
                row.iter()
                    .enumerate()
                    .fold(0u64, |acc, (u, &m)| acc | ((m & 1) << (u & 63)))
            }
            QueryClass::Dfs => self.entries[v * 3],
            _ => self.entries[v],
        }
    }

    /// All `(node, value)` rows, in node order — the initial collection
    /// a dataflow source operator materializes.
    pub fn node_rows(&self) -> Vec<(u32, u64)> {
        (0..self.nodes)
            .map(|v| (v as u32, self.node_value(v)))
            .collect()
    }
}

/// One changed position in the digest stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutputChange {
    /// Flat digest index.
    pub index: u32,
    /// Value before the update (at the previous drain point).
    pub old: u64,
    /// Current value.
    pub new: u64,
}

/// One node whose σ_x changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeChange {
    /// The node.
    pub node: u32,
    /// Value before the update; `None` when the node did not exist yet.
    pub old: Option<u64>,
    /// Current value.
    pub new: u64,
}

/// The net output change of one (or several coalesced) update steps:
/// what a consumer must apply to move from the previous output to the
/// current one. Produced by `Session::take_delta` /
/// `Session::update_guarded`; computed from the engine's changed-set,
/// never by diffing full digests at the call site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OutputDelta {
    /// Entry-level changes, sorted by index. Empty when
    /// [`resync`](Self::resync) is set — a digest whose *length* changed
    /// (node growth, BC bridge churn) has no stable index mapping.
    pub changes: Vec<OutputChange>,
    /// Node-level changes, sorted by node. Always precise, including
    /// across resyncs (new nodes appear with `old: None`).
    pub nodes: Vec<NodeChange>,
    /// Set (to the new digest length) when the digest geometry changed;
    /// entry-diff consumers must refetch the full snapshot.
    pub resync: Option<usize>,
}

impl OutputDelta {
    /// Whether the update changed nothing observable.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.nodes.is_empty() && self.resync.is_none()
    }
}

/// A guarded update's result: the boundedness accounting of the run plus
/// the typed output delta it produced.
#[derive(Debug)]
pub struct TrackedUpdate {
    /// The run's boundedness report (scope size, work counters,
    /// fallback decision).
    pub report: BoundednessReport,
    /// Net output change of the step.
    pub delta: OutputDelta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_digest_concatenates_entries_and_tail() {
        let snap = OutputSnapshot::new(QueryClass::Bc, 3, 1, vec![2, 4, 6], vec![99]);
        assert_eq!(snap.to_digest(), vec![2, 4, 6, 99]);
        assert_eq!(snap.digest_len(), 4);
        assert_eq!(snap.entry(2), 6);
        assert_eq!(snap.entry(3), 99);
        assert_eq!(snap.node_value(1), 4);
    }

    #[test]
    fn sim_node_value_is_a_match_bitmask() {
        // 2 nodes, 3 pattern nodes: node 0 matches {0, 2}, node 1 matches {1}.
        let snap = OutputSnapshot::new(QueryClass::Sim, 2, 3, vec![1, 0, 1, 0, 1, 0], vec![]);
        assert_eq!(snap.node_value(0), 0b101);
        assert_eq!(snap.node_value(1), 0b010);
        assert_eq!(snap.node_rows(), vec![(0, 0b101), (1, 0b010)]);
    }

    #[test]
    fn dfs_node_value_is_the_preorder_rank() {
        let snap = OutputSnapshot::new(QueryClass::Dfs, 2, 3, vec![0, 3, 9, 1, 2, 0], vec![]);
        assert_eq!(snap.node_value(0), 0);
        assert_eq!(snap.node_value(1), 1);
    }

    #[test]
    fn empty_delta_reports_empty() {
        let d = OutputDelta::default();
        assert!(d.is_empty());
        let d = OutputDelta {
            resync: Some(7),
            ..Default::default()
        };
        assert!(!d.is_empty());
    }
}
