//! Single-source reachability: a worked example of **extending the
//! framework to a new query class** (the paper's §8 future-work
//! direction), included as the template users should copy.
//!
//! Reachability looks like a least fixpoint "from below", which seems to
//! clash with the framework's contracting model — the trick is choosing
//! the partial order. Declare `true ⪯ false` with `⊥ = false` (except the
//! source): the batch run then *contracts* from unreached toward reached,
//! the OR update function is monotone, and everything else — timestamps,
//! the Fig. 4 scope function, relative boundedness — follows exactly as
//! for CC. Edge deletions are the interesting case: the scope function
//! walks the discovery order and un-reaches exactly the vertices whose
//! surviving in-neighbors no longer justify them.
//!
//! Like CC and Sim, `IncReach` is *weakly deducible*: the order `<_C` is
//! the turn-`true` timestamp recorded by the batch run.

use crate::persist::{self, StateLoadError};
use incgraph_core::engine::{Engine, RunStats};
use incgraph_core::metrics::BoundednessReport;
use incgraph_core::par::ParEngine;
use incgraph_core::scope::{bounded_scope_in, ContributorOracle, ScopeScratch};
use incgraph_core::spec::{FixpointSpec, Relax};
use incgraph_core::status::Status;
use incgraph_graph::{AppliedBatch, CsrSnapshot, DynamicGraph, GraphView, NodeId};

/// The reachability fixpoint specification over a graph snapshot,
/// generic over the storage layout (live adjacency, CSR, CSR + overlay).
pub struct ReachSpec<'g, G: GraphView = DynamicGraph> {
    g: &'g G,
    source: NodeId,
}

impl<'g, G: GraphView> ReachSpec<'g, G> {
    /// Specification for reachability from `source` in (directed) `g`.
    pub fn new(g: &'g G, source: NodeId) -> Self {
        assert!((source as usize) < g.node_count(), "source out of range");
        ReachSpec { g, source }
    }
}

impl<G: GraphView> FixpointSpec for ReachSpec<'_, G> {
    type Value = bool;

    fn num_vars(&self) -> usize {
        self.g.node_count()
    }

    fn bottom(&self, x: usize) -> bool {
        x == self.source as usize
    }

    fn eval<R: FnMut(usize) -> bool>(&self, x: usize, read: &mut R) -> bool {
        if x == self.source as usize {
            return true;
        }
        self.g
            .in_neighbors(x as NodeId)
            .iter()
            .any(|&(u, _)| read(u as usize))
    }

    fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
        for &(v, _) in self.g.out_neighbors(x as NodeId) {
            push(v as usize);
        }
    }

    fn preceq(&self, a: &bool, b: &bool) -> bool {
        // Flipped order: true ⪯ false. The run contracts from unreached
        // (⊥) down to reached.
        *a || !b
    }

    fn relax(&self, z: usize, z_val: &bool, _trigger: usize, tv: &bool) -> Relax<bool> {
        // An in-neighbor turning reached reaches z immediately.
        if z == self.source as usize {
            Relax::Skip
        } else if *tv && !z_val {
            Relax::Set(true)
        } else {
            Relax::Skip
        }
    }
}

/// `IncReach`'s contributor oracle: `<_C` by turn-`true` timestamp;
/// still-unreached variables sort last.
struct ReachOracle<'a> {
    g: &'a DynamicGraph,
}

impl ContributorOracle<bool> for ReachOracle<'_> {
    fn order_key(&self, x: usize, status: &Status<bool>) -> u64 {
        if status.get(x) {
            status.stamp(x)
        } else {
            u64::MAX
        }
    }

    fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<bool>, push: &mut P) {
        let sx = status.stamp(x);
        for &(z, _) in self.g.out_neighbors(x as NodeId) {
            // z was discovered after x and could have been discovered
            // through x.
            if status.get(z as usize) && status.stamp(z as usize) > sx {
                push(z as usize);
            }
        }
    }
}

/// Reachability state: the previous fixpoint (with timestamps) plus the
/// reusable engine.
pub struct ReachState {
    source: NodeId,
    status: Status<bool>,
    engine: Engine,
    threads: usize,
    par: Option<ParEngine>,
    /// Reusable arena for the scope function: epoch-reset bitmaps and
    /// high-water vectors make steady-state updates allocation-free.
    scratch: ScopeScratch,
}

impl ReachState {
    /// Runs the batch fixpoint from `source`.
    pub fn batch(g: &DynamicGraph, source: NodeId) -> (Self, RunStats) {
        let spec = ReachSpec::new(g, source);
        let mut status = Status::init(&spec, true);
        let mut engine = Engine::new(spec.num_vars());
        let scope: Vec<usize> = g
            .out_neighbors(source)
            .iter()
            .map(|&(v, _)| v as usize)
            .collect();
        let stats = engine.run(&spec, &mut status, scope);
        (
            ReachState {
                source,
                status,
                engine,
                threads: 1,
                par: None,
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Runs the batch fixpoint with the sharded parallel engine over a
    /// flat CSR snapshot of `g`; subsequent updates keep using `threads`
    /// shards. Fixpoint values are identical to [`batch`](Self::batch).
    pub fn batch_par(g: &DynamicGraph, source: NodeId, threads: usize) -> (Self, RunStats) {
        let threads = threads.max(1);
        let csr = CsrSnapshot::new(g);
        let spec = ReachSpec::new(&csr, source);
        let mut status = Status::init(&spec, true);
        let mut par = ParEngine::new(spec.num_vars(), threads);
        let scope: Vec<usize> = csr
            .out_neighbors(source)
            .iter()
            .map(|&(v, _)| v as usize)
            .collect();
        let stats = par.run(&spec, &mut status, scope);
        (
            ReachState {
                source,
                status,
                engine: Engine::new(g.node_count()),
                threads,
                par: Some(par),
                scratch: ScopeScratch::new(),
            },
            stats,
        )
    }

    /// Sets the number of worker shards for subsequent fixpoint runs
    /// (1 = the sequential engine).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Resumes the step function over `scope` on the configured engine:
    /// the parallel engine when `threads > 1` or one is already attached
    /// (inline bucket-queue at 1 shard), the sequential heap otherwise.
    fn resume<G: GraphView>(&mut self, spec: &ReachSpec<'_, G>, scope: &[usize]) -> RunStats {
        if self.threads > 1 || self.par.is_some() {
            let fresh = !matches!(&self.par,
                Some(p) if p.num_vars() == spec.num_vars() && p.nthreads() == self.threads);
            if fresh {
                self.par = Some(ParEngine::new(spec.num_vars(), self.threads));
            }
            let par = self.par.as_mut().expect("just ensured");
            par.set_work_budget(self.engine.work_budget());
            let stats = par.run(spec, &mut self.status, scope.iter().copied());
            if !stats.poisoned {
                return stats;
            }
            // A shard panicked; nothing was written back. Degrade to the
            // sequential engine permanently and resume from the same
            // pre-run state (C2 gives the same fixpoint); `poisoned`
            // survives in the merged stats.
            self.par = None;
            self.threads = 1;
            let mut out = stats;
            out.merge(
                &self
                    .engine
                    .run(spec, &mut self.status, scope.iter().copied()),
            );
            out
        } else {
            self.engine
                .run(spec, &mut self.status, scope.iter().copied())
        }
    }

    /// Extends `out` with every status variable the last update *may*
    /// have changed: the initial scope `H⁰` plus the engines' changed-set
    /// logs (always a superset of the truly changed variables; stale log
    /// entries merely cost a value comparison).
    pub(crate) fn delta_candidates(&self, out: &mut Vec<usize>) {
        out.extend_from_slice(&self.scratch.scope);
        out.extend_from_slice(self.engine.changed_vars());
        if let Some(p) = &self.par {
            out.extend_from_slice(p.changed_vars());
        }
    }

    /// Whether `v` is reachable from the source.
    pub fn reachable(&self, v: NodeId) -> bool {
        self.status.get(v as usize)
    }

    /// The reachability bitmap.
    pub fn reached(&self) -> &[bool] {
        self.status.values()
    }

    /// Number of reachable vertices (including the source).
    pub fn reached_count(&self) -> usize {
        self.status.values().iter().filter(|&&b| b).count()
    }

    /// `IncReach`: the bounded scope function over the discovery order,
    /// then the unchanged step function.
    pub fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        self.ensure_size(g);
        let spec = ReachSpec::new(g, self.source);

        // Heads of changed edges (both endpoints on undirected graphs,
        // where the edge supports reachability in either direction),
        // filtered: an insertion matters only if it newly reaches its
        // head; a deletion only if the head was reached (its support may
        // be gone).
        self.scratch.touched.clear();
        {
            let status = &self.status;
            let touched = &mut self.scratch.touched;
            let mut consider = |tail: NodeId, head: NodeId, inserted: bool| {
                let tail_reached = status.get(tail as usize);
                let head_reached = status.get(head as usize);
                let keep = if inserted {
                    tail_reached && !head_reached
                } else {
                    head_reached
                };
                if keep {
                    touched.push(head as usize);
                }
            };
            for op in applied.ops() {
                consider(op.src, op.dst, op.inserted);
                if !g.is_directed() {
                    consider(op.dst, op.src, op.inserted);
                }
            }
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();

        let oracle = ReachOracle { g };
        let stats = bounded_scope_in(&spec, &oracle, &mut self.status, &mut self.scratch);
        let scope = std::mem::take(&mut self.scratch.scope);
        let run = self.resume(&spec, &scope);
        let report = BoundednessReport::new(spec.num_vars(), scope.len(), stats, run);
        self.scratch.scope = scope;
        report
    }

    /// Resident bytes (weakly deducible: bitmap + timestamps).
    pub fn space_bytes(&self) -> usize {
        self.status.space_bytes()
            + self.engine.space_bytes()
            + self.par.as_ref().map_or(0, |p| p.space_bytes())
            + self.scratch.space_bytes()
    }

    /// Serializes the durable essence (`SaveState`): the source plus the
    /// reachability status with its discovery-order timestamps.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = persist::header("reach");
        persist::put_u32(&mut out, self.source);
        persist::put_status(&mut out, &self.status, |b| b as u64);
        out
    }

    /// Rebuilds a state from [`save_state`](Self::save_state) bytes
    /// without running any fixpoint (`LoadState`).
    pub fn restore(g: &DynamicGraph, bytes: &[u8]) -> Result<Self, StateLoadError> {
        let mut r = persist::expect_header("reach", bytes)?;
        let source = r.u32()?;
        let status = persist::read_status(&mut r, persist::dec_bool)?;
        r.finish()?;
        let n = g.node_count();
        if status.len() != n {
            return Err(StateLoadError::SizeMismatch {
                expected: n,
                found: status.len(),
            });
        }
        if !status.tracks_stamps() {
            return Err(StateLoadError::Malformed(
                "reach is weakly deducible and requires timestamps".into(),
            ));
        }
        if (source as usize) >= n {
            return Err(StateLoadError::Malformed("source out of range".into()));
        }
        Ok(ReachState {
            source,
            status,
            engine: Engine::new(n),
            threads: 1,
            par: None,
            scratch: ScopeScratch::new(),
        })
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count();
        if n > self.status.len() {
            self.status.extend_to(n, |_| false);
            self.engine = Engine::new(n);
        }
    }
}

impl crate::IncrementalState for ReachState {
    fn name(&self) -> &'static str {
        "reach"
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        g.node_count()
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        ReachState::update(self, g, applied)
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        let threads = self.threads;
        let (fresh, stats) = ReachState::batch(g, self.source);
        *self = fresh;
        self.threads = threads; // a fallback must not undo the thread config
        stats
    }

    fn audit(
        &self,
        g: &DynamicGraph,
        audit: &incgraph_core::audit::FixpointAudit,
    ) -> incgraph_core::audit::AuditReport {
        audit.run(&ReachSpec::new(g, self.source), &self.status)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.engine.set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        ReachState::set_threads(self, threads);
    }

    fn space_bytes(&self) -> usize {
        ReachState::space_bytes(self)
    }

    fn save_state(&self) -> Vec<u8> {
        ReachState::save_state(self)
    }

    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError> {
        let threads = self.threads;
        *self = ReachState::restore(g, bytes)?;
        self.threads = threads;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn bfs_reference(g: &DynamicGraph, s: NodeId) -> Vec<bool> {
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            for &(w, _) in g.out_neighbors(v) {
                if !std::mem::replace(&mut seen[w as usize], true) {
                    stack.push(w);
                }
            }
        }
        seen
    }

    #[test]
    fn batch_matches_bfs() {
        let g = incgraph_graph::gen::uniform(200, 600, true, 1, 1, 3);
        let (state, _) = ReachState::batch(&g, 0);
        assert_eq!(state.reached(), bfs_reference(&g, 0).as_slice());
    }

    #[test]
    fn deletion_unreaches_dependents() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        g.insert_edge(2, 3, 1);
        let (mut state, _) = ReachState::batch(&g, 0);
        assert_eq!(state.reached_count(), 4);
        let mut b = UpdateBatch::new();
        b.delete(1, 2);
        let applied = b.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.reached(), &[true, true, false, false]);
    }

    #[test]
    fn insertion_reaches_new_region() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 1, 1);
        g.insert_edge(2, 3, 1);
        let (mut state, _) = ReachState::batch(&g, 0);
        assert_eq!(state.reached_count(), 2);
        let mut b = UpdateBatch::new();
        b.insert(1, 2, 1);
        let applied = b.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.reached_count(), 4);
    }

    #[test]
    fn undirected_deletion_retracts_the_tail_side() {
        // Regression: on undirected graphs an edge supports reachability
        // in both directions, so a delete op oriented *away* from the
        // source (src = far endpoint) must still retract that endpoint.
        // Found by the post-run fixpoint audit in the fault-injection
        // suite.
        let mut g = DynamicGraph::new(false, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        let (mut state, _) = ReachState::batch(&g, 0);
        assert!(state.reachable(2));
        let mut b = UpdateBatch::new();
        b.delete(2, 1);
        let applied = b.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.reached(), &[true, true, false]);
    }

    #[test]
    fn cycle_support_is_not_self_sustaining() {
        // 0 -> 1 -> 2 -> 1 cycle: deleting (0,1) must un-reach the cycle
        // even though 1 and 2 mutually support each other — exactly what
        // the timestamp order resolves.
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        g.insert_edge(2, 1, 1);
        let (mut state, _) = ReachState::batch(&g, 0);
        assert_eq!(state.reached_count(), 3);
        let mut b = UpdateBatch::new();
        b.delete(0, 1);
        let applied = b.apply(&mut g);
        state.update(&g, &applied);
        assert_eq!(state.reached(), &[true, false, false]);
    }

    #[test]
    fn random_rounds_match_bfs() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(100, 350, true, 1, 1, 17);
        let (mut state, _) = ReachState::batch(&g, 0);
        let mut rng = SplitMix64::seed_from_u64(23);
        for round in 0..25 {
            let mut batch = UpdateBatch::new();
            for _ in 0..8 {
                let u = rng.gen_range(0..100) as NodeId;
                let v = rng.gen_range(0..100) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            assert_eq!(
                state.reached(),
                bfs_reference(&g, 0).as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn localized_deletion_is_bounded() {
        // A wide shallow DAG: source fans out to 1000 heads, each with a
        // pendant; deleting one pendant edge inspects O(1) variables.
        let mut g = DynamicGraph::new(true, 2001);
        for i in 0..1000u32 {
            g.insert_edge(0, 1 + i, 1);
            g.insert_edge(1 + i, 1001 + i, 1);
        }
        let (mut state, _) = ReachState::batch(&g, 0);
        let mut b = UpdateBatch::new();
        b.delete(500, 1500);
        let applied = b.apply(&mut g);
        let report = state.update(&g, &applied);
        assert!(!state.reachable(1500));
        assert!(
            report.inspected_vars <= 4,
            "inspected {}",
            report.inspected_vars
        );
    }
}
