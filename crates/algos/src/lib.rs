//! The paper's five proof-of-concept query classes, each as a batch
//! fixpoint algorithm plus its deduced incremental algorithm:
//!
//! | Query class | Batch (`A`) | Incremental (`A_Δ`) | Deducibility |
//! |-------------|------------|---------------------|--------------|
//! | [`sssp`] single-source shortest paths | Dijkstra as fixpoint (paper Fig. 1) | `IncSSSP` (paper Fig. 5) | deducible (order `<_C` from distance values) |
//! | [`cc`] connected components | min-label propagation `CC_fp` (Ex. 2) | `IncCC` (Ex. 5) | weakly deducible (timestamps) |
//! | [`sim`] graph simulation | `Sim_fp` \[HHK95\] (§5.1) | `IncSim` | weakly deducible (timestamps) |
//! | [`dfs`] depth-first search | `DFS_fp` interval traversal (§5.2) | `IncDFS` | deducible (order from preorder numbers) |
//! | [`lcc`] local clustering coefficient | `LCC_fp` (§5.3) | `IncLCC` | deducible (PE variables, no order needed) |
//!
//! Every incremental algorithm follows the same two-phase shape mandated
//! by the paper: an **initial scope function** `h` adjusts the previous
//! fixpoint to a feasible status and initial scope, then the **unchanged
//! step function** of the batch algorithm is resumed. For SSSP, CC and Sim
//! both phases are literally the generic `incgraph-core` machinery
//! ([`incgraph_core::bounded_scope`] + [`incgraph_core::engine::Engine`]);
//! LCC uses the PE-variable strategy of Theorem 1; DFS implements the same
//! `h`-plus-resume pattern directly on the traversal representation (its
//! update functions are not pure functions of an input set, so it does not
//! fit the generic `FixpointSpec` — the paper likewise treats it as the
//! stretch case of the framework).
//!
//! All `update` entry points take the **already updated** graph `G ⊕ ΔG`
//! together with the [`incgraph_graph::AppliedBatch`] describing the
//! effective `ΔG`; this matches the paper's interface
//! `A_Δ(Q, G, Q(G), ΔG)` while letting the caller own graph mutation.

pub mod bc;
pub mod cc;
pub mod dfs;
pub mod lcc;
pub mod reach;
pub mod sim;
pub mod sssp;

pub use bc::BcState;
pub use cc::CcState;
pub use dfs::DfsState;
pub use lcc::LccState;
pub use reach::ReachState;
pub use sim::SimState;
pub use sssp::SsspState;
