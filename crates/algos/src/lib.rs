//! The paper's five proof-of-concept query classes, each as a batch
//! fixpoint algorithm plus its deduced incremental algorithm:
//!
//! | Query class | Batch (`A`) | Incremental (`A_Δ`) | Deducibility |
//! |-------------|------------|---------------------|--------------|
//! | [`sssp`] single-source shortest paths | Dijkstra as fixpoint (paper Fig. 1) | `IncSSSP` (paper Fig. 5) | deducible (order `<_C` from distance values) |
//! | [`cc`] connected components | min-label propagation `CC_fp` (Ex. 2) | `IncCC` (Ex. 5) | weakly deducible (timestamps) |
//! | [`sim`] graph simulation | `Sim_fp` \[HHK95\] (§5.1) | `IncSim` | weakly deducible (timestamps) |
//! | [`dfs`] depth-first search | `DFS_fp` interval traversal (§5.2) | `IncDFS` | deducible (order from preorder numbers) |
//! | [`lcc`] local clustering coefficient | `LCC_fp` (§5.3) | `IncLCC` | deducible (PE variables, no order needed) |
//!
//! Every incremental algorithm follows the same two-phase shape mandated
//! by the paper: an **initial scope function** `h` adjusts the previous
//! fixpoint to a feasible status and initial scope, then the **unchanged
//! step function** of the batch algorithm is resumed. For SSSP, CC and Sim
//! both phases are literally the generic `incgraph-core` machinery
//! ([`incgraph_core::bounded_scope`] + [`incgraph_core::engine::Engine`]);
//! LCC uses the PE-variable strategy of Theorem 1; DFS implements the same
//! `h`-plus-resume pattern directly on the traversal representation (its
//! update functions are not pure functions of an input set, so it does not
//! fit the generic `FixpointSpec` — the paper likewise treats it as the
//! stretch case of the framework).
//!
//! All `update` entry points take the **already updated** graph `G ⊕ ΔG`
//! together with the [`incgraph_graph::AppliedBatch`] describing the
//! effective `ΔG`; this matches the paper's interface
//! `A_Δ(Q, G, Q(G), ΔG)` while letting the caller own graph mutation.

pub mod bc;
pub mod cc;
pub mod dfs;
pub mod lcc;
pub mod output;
pub mod persist;
pub mod reach;
pub mod session;
pub mod sim;
pub mod sssp;

pub use bc::BcState;
pub use cc::CcState;
pub use dfs::DfsState;
pub use lcc::LccState;
pub use output::{NodeChange, OutputChange, OutputDelta, OutputSnapshot, TrackedUpdate};
pub use persist::StateLoadError;
pub use reach::ReachState;
pub use session::{QueryClass, Session, SessionBuilder, SessionError};
pub use sim::SimState;
pub use sssp::SsspState;

use incgraph_core::audit::{AuditReport, FixpointAudit};
use incgraph_core::engine::RunStats;
use incgraph_core::fallback::{FallbackDecision, FallbackPolicy};
use incgraph_core::metrics::BoundednessReport;
use incgraph_graph::{AppliedBatch, DynamicGraph};

/// The uniform face of the seven incremental algorithm states, used by
/// the hardened pipeline ([`update_guarded`]) to audit fixpoints and to
/// degrade to batch recomputation when an update stops being bounded.
///
/// All methods take the **already updated** graph `G ⊕ ΔG`, like the
/// inherent `update` methods they wrap. Implementations live next to each
/// state so they can reach private fields (the stored query parameters
/// needed for [`recompute`](Self::recompute), the engine for
/// [`set_work_budget`](Self::set_work_budget)).
///
/// `Send + Sync` are supertraits: every state is plain owned data, and
/// the service layer moves boxed states (and the [`Session`]s wrapping
/// them) into its writer thread and reads digests from others.
pub trait IncrementalState: Send + Sync {
    /// Short algorithm name for logs and reports (`"sssp"`, `"cc"`, …).
    fn name(&self) -> &'static str;

    /// Total status variables `|Ψ|` for the current graph size — the
    /// denominator of every [`FallbackPolicy`] fraction.
    fn total_vars(&self, g: &DynamicGraph) -> usize;

    /// One incremental step: the inherent `update` of the state.
    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport;

    /// Abandon the incremental state and recompute from scratch with the
    /// stored query parameters. Afterwards the state is exactly what
    /// `Self::batch` would have produced on `g`.
    fn recompute(&mut self, g: &DynamicGraph) -> RunStats;

    /// Re-check the fixpoint invariant `σ_A = ∧_x σ_x` over the settled
    /// state (see [`FixpointAudit`]).
    fn audit(&self, g: &DynamicGraph, audit: &FixpointAudit) -> AuditReport;

    /// Cap the engine's distinct-variable work for subsequent updates;
    /// `None` removes the cap. States without an engine (DFS) ignore it
    /// and rely on [`update_guarded`]'s post-run scope check instead.
    fn set_work_budget(&mut self, budget: Option<u64>);

    /// Number of worker shards for subsequent fixpoint runs (1 = the
    /// sequential engine). Inherently sequential states (DFS, BC) keep
    /// the default no-op and always run single-threaded.
    fn set_threads(&mut self, _threads: usize) {}

    /// Resident bytes of the algorithm's state (Fig. 8).
    fn space_bytes(&self) -> usize;

    /// Serializes the state's durable essence (`SaveState`): the stored
    /// query parameters plus the status `D^r` — values, and for weakly
    /// deducible classes the timestamps and logical clock that linearize
    /// `<_C`. Engine scratch is excluded; it is rebuilt on load. The blob
    /// is self-describing (see [`persist`]) and routable via
    /// [`restore_state`].
    fn save_state(&self) -> Vec<u8>;

    /// Replaces this state's durable essence with a previously saved blob
    /// (`LoadState`), validated against `g`. No fixpoint is run — the
    /// blob *is* the fixpoint; engines restart with fresh scratch and the
    /// state runs sequentially until reconfigured (thread configuration is
    /// preserved where the class supports it).
    fn load_state(&mut self, g: &DynamicGraph, bytes: &[u8]) -> Result<(), StateLoadError>;
}

/// Rebuilds a boxed state from a blob produced by
/// [`IncrementalState::save_state`], routed on the class name embedded in
/// the blob. No fixpoint is run. This is the recovery path's entry point:
/// a checkpointed `D^r` comes back as a live state ready for incremental
/// WAL replay.
pub fn restore_state(
    g: &DynamicGraph,
    bytes: &[u8],
) -> Result<Box<dyn IncrementalState>, StateLoadError> {
    match persist::peek_class(bytes)?.as_str() {
        "sssp" => Ok(Box::new(SsspState::restore(g, bytes)?)),
        "cc" => Ok(Box::new(CcState::restore(g, bytes)?)),
        "sim" => Ok(Box::new(SimState::restore(g, bytes)?)),
        "reach" => Ok(Box::new(ReachState::restore(g, bytes)?)),
        "lcc" => Ok(Box::new(LccState::restore(g, bytes)?)),
        "dfs" => Ok(Box::new(DfsState::restore(g, bytes)?)),
        "bc" => Ok(Box::new(BcState::restore(g, bytes)?)),
        other => Err(StateLoadError::Malformed(format!(
            "unknown class `{other}`"
        ))),
    }
}

/// Everything a guarded update run is configured by, in one value: the
/// engine shard count, the degradation policy, and the optional fixpoint
/// audit. This replaces the former spread of `set_threads` calls plus
/// per-call `(&FallbackPolicy, Option<&FixpointAudit>)` argument pairs —
/// one options struct travels from the session builder through every
/// update.
///
/// `Copy`, so callers stash it by value (a [`Session`] does) and the
/// defaults are the conservative pre-existing ones: leave the state's
/// thread configuration untouched, default policy, no audit.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Worker shards for fixpoint resumes; `None` leaves the state's
    /// current configuration untouched (the historical behavior of
    /// [`update_guarded`], and what keeps a `batch_par`-built state on
    /// its shards).
    pub threads: Option<usize>,
    /// Degradation policy for the guarded run.
    pub policy: FallbackPolicy,
    /// Post-run fixpoint audit; `None` skips auditing.
    pub audit: Option<FixpointAudit>,
    /// Canonicalize the presented ΔG through the micro-batch
    /// [`Coalescer`](incgraph_core::Coalescer) before dispatching it to
    /// the class update. Within-batch churn on one edge (insert→delete,
    /// delete→re-insert) collapses to its net effect, so the incremental
    /// step sees at most one delete and one insert per edge. The net
    /// batch is equivalent by construction — same pre-state, same
    /// post-state — so results are unchanged; only wasted scope work on
    /// self-cancelling ops is saved.
    pub micro_batch: bool,
}

/// The hardened update path: one incremental step under an
/// [`ExecOptions`] bundle (policy + optional audit + thread override).
///
/// 1. The policy's [`var_limit`](FallbackPolicy::var_limit) is installed
///    as the engine's mid-run work budget; a blown budget aborts the run
///    ([`RunStats::aborted`]) and triggers a batch recompute recorded as
///    [`WorkExceeded`](incgraph_core::fallback::FallbackReason::WorkExceeded).
/// 2. For runs that complete, the inspected-variable count is re-checked
///    against the same limit (this is what catches states without an
///    engine budget, like DFS); a violation recomputes and records
///    [`ScopeExceeded`](incgraph_core::fallback::FallbackReason::ScopeExceeded).
/// 3. If an audit is configured and the run stayed incremental, `σ_x` is
///    re-checked; violations recompute (unless the policy says
///    [`Ignore`](incgraph_core::fallback::AuditAction::Ignore)) and
///    record [`AuditFailed`](incgraph_core::fallback::FallbackReason::AuditFailed).
///
/// A fresh batch recompute establishes the fixpoint by construction, so
/// no audit runs after a fallback. The returned report merges the
/// abandoned run's stats with the recompute's, and
/// [`BoundednessReport::fallback`] carries the decision so experiment
/// drivers can report fallback rates.
///
/// The whole call runs under an ambient observability class scope named
/// after the state and an `update.guarded` span; fallback decisions and
/// failed audits surface as discrete events, and the final report's
/// totals flow into the registry (all of it one relaxed atomic load when
/// no recorder is installed).
pub fn update_with<S: IncrementalState + ?Sized>(
    state: &mut S,
    g: &DynamicGraph,
    applied: &AppliedBatch,
    options: &ExecOptions,
) -> BoundednessReport {
    let _class = incgraph_obs::class_scope(state.name());
    let report = {
        let _span = incgraph_obs::span("update.guarded");
        run_guarded(state, g, applied, options)
    };
    report.record_obs();
    report
}

/// The guarded-run core; see [`update_with`] for the contract.
fn run_guarded<S: IncrementalState + ?Sized>(
    state: &mut S,
    g: &DynamicGraph,
    applied: &AppliedBatch,
    options: &ExecOptions,
) -> BoundednessReport {
    if let Some(threads) = options.threads {
        state.set_threads(threads);
    }
    // Micro-batch canonicalization: collapse within-batch churn to its
    // net effect before the class update sees the ΔG. Only rebuilds the
    // batch when it could actually shrink (≥2 ops).
    let coalesced;
    let applied = if options.micro_batch && applied.len() > 1 {
        coalesced = incgraph_core::coalesce_batches(g.is_directed(), [applied]);
        &coalesced
    } else {
        applied
    };
    let policy = &options.policy;
    let total = state.total_vars(g);
    state.set_work_budget(policy.var_limit(total));
    let mut report = state.update(g, applied);
    state.set_work_budget(None);

    if report.run_stats.aborted {
        let decision = policy.work_exceeded(report.run_stats.distinct_vars, total);
        fallback_event(&decision);
        let run = state.recompute(g);
        report.run_stats.merge(&run);
        return report.with_fallback(decision);
    }
    if let Some(decision) = policy.check_scope(report.inspected_vars as usize, total) {
        fallback_event(&decision);
        let run = state.recompute(g);
        report.run_stats.merge(&run);
        return report.with_fallback(decision);
    }
    if let Some(cfg) = &options.audit {
        let audit_report = state.audit(g, cfg);
        if incgraph_obs::enabled() && !audit_report.is_clean() {
            incgraph_obs::event(
                "audit.failed",
                &format!(
                    "{} of {} checked vars violated",
                    audit_report.violations.len(),
                    audit_report.checked
                ),
            );
        }
        if let Some(decision) = policy.check_audit(audit_report.violations.len()) {
            fallback_event(&decision);
            let run = state.recompute(g);
            report.run_stats.merge(&run);
            return report.with_fallback(decision);
        }
    }
    report
}

/// Surfaces a degradation decision as a discrete observability event;
/// gated on [`incgraph_obs::enabled`] so the disabled path never formats.
fn fallback_event(decision: &FallbackDecision) {
    if incgraph_obs::enabled() {
        incgraph_obs::event(
            "fallback",
            &format!(
                "{:?}: observed {} > limit {}",
                decision.reason, decision.observed, decision.limit
            ),
        );
    }
}

/// The pre-[`ExecOptions`] guarded entry point, kept for one PR as a thin
/// shim so existing callers (and the fuzz corpus replay, which must stay
/// byte-identical) keep compiling unchanged. New code should call
/// [`update_with`]; this forwards with `threads: None`, which is exactly
/// the old behavior.
pub fn update_guarded<S: IncrementalState + ?Sized>(
    state: &mut S,
    g: &DynamicGraph,
    applied: &AppliedBatch,
    policy: &FallbackPolicy,
    audit: Option<&FixpointAudit>,
) -> BoundednessReport {
    update_with(
        state,
        g,
        applied,
        &ExecOptions {
            threads: None,
            policy: *policy,
            audit: audit.copied(),
            micro_batch: false,
        },
    )
}

#[cfg(test)]
mod guarded_tests {
    use super::*;
    use incgraph_core::fallback::{AuditAction, FallbackPolicy, FallbackReason};
    use incgraph_graph::{DynamicGraph, Pattern, UpdateBatch};

    fn directed_path(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(true, n);
        for v in 0..n as u32 - 1 {
            g.insert_edge(v, v + 1, 1);
        }
        g
    }

    /// Undirected ring with one chord — connected, so every state has
    /// non-trivial structure; all labels 0 so the trivial Sim pattern
    /// matches everywhere.
    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(false, n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, 1);
        }
        g.insert_edge(0, n as u32 / 2, 3);
        g
    }

    #[test]
    fn all_seven_states_run_guarded_and_audit_clean() {
        let g0 = ring(16);
        let mut states: Vec<Box<dyn IncrementalState>> = vec![
            Box::new(SsspState::batch(&g0, 0).0),
            Box::new(CcState::batch(&g0).0),
            Box::new(SimState::batch(&g0, Pattern::new(vec![0], &[])).0),
            Box::new(ReachState::batch(&g0, 0).0),
            Box::new(LccState::batch(&g0).0),
            Box::new(DfsState::batch(&g0).0),
            Box::new(BcState::batch(&g0).0),
        ];
        let mut g = g0.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 10, 2).delete(5, 6);
        let applied = batch.apply(&mut g);

        let policy = FallbackPolicy::default();
        let audit = FixpointAudit::full();
        let mut names = Vec::new();
        for state in &mut states {
            let report = update_guarded(state.as_mut(), &g, &applied, &policy, Some(&audit));
            assert!(
                !report.fell_back(),
                "{} fell back on a small clean update: {:?}",
                state.name(),
                report.fallback
            );
            let audit_report = state.audit(&g, &audit);
            assert!(
                audit_report.is_clean(),
                "{}: {audit_report:?}",
                state.name()
            );
            assert!(state.space_bytes() > 0);
            names.push(state.name());
        }
        assert_eq!(names, ["sssp", "cc", "sim", "reach", "lcc", "dfs", "bc"]);
    }

    #[test]
    fn work_budget_abort_degrades_to_batch() {
        // Deleting the first edge of a directed path invalidates every
        // downstream distance: |AFF| ≈ |Ψ|, the worst case for the
        // incremental path. A 10% budget must abort and recompute.
        let mut g = directed_path(64);
        let (mut state, _) = SsspState::batch(&g, 0);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);

        let policy = FallbackPolicy::with_max_aff_fraction(0.1);
        let report = update_guarded(&mut state, &g, &applied, &policy, None);
        let decision = report.fallback.expect("a near-total update must degrade");
        assert_eq!(decision.reason, FallbackReason::WorkExceeded);
        assert!(decision.observed > decision.limit);
        assert!(report.run_stats.aborted);

        // The recompute must leave exactly the batch fixpoint.
        let (fresh, _) = SsspState::batch(&g, 0);
        assert_eq!(state.distances(), fresh.distances());
        // The budget is a per-guarded-call override, not sticky state.
        let mut refill = UpdateBatch::new();
        refill.insert(0, 1, 1);
        let applied = refill.apply(&mut g);
        let report = state.update(&g, &applied);
        assert!(
            !report.run_stats.aborted,
            "budget must be lifted afterwards"
        );
    }

    #[test]
    fn failed_audit_forces_recompute() {
        let mut g = directed_path(16);
        let (mut state, _) = SsspState::batch(&g, 0);
        state.poison(5, 0); // true distance is 5

        // A benign no-op batch: reinserting an existing edge with its
        // existing weight applies nothing, so only the audit can notice.
        let mut batch = UpdateBatch::new();
        batch.insert(14, 15, 1);
        let applied = batch.apply(&mut g);
        assert!(applied.is_empty());

        let policy = FallbackPolicy::default();
        let audit = FixpointAudit::full();
        let report = update_guarded(&mut state, &g, &applied, &policy, Some(&audit));
        let decision = report.fallback.expect("corruption must be caught");
        assert_eq!(decision.reason, FallbackReason::AuditFailed);
        assert_eq!(state.distance(5), 5, "recompute heals the poisoned value");
    }

    #[test]
    fn audit_action_ignore_keeps_corrupt_state() {
        let mut g = directed_path(16);
        let (mut state, _) = SsspState::batch(&g, 0);
        state.poison(5, 0);
        let mut batch = UpdateBatch::new();
        batch.insert(14, 15, 1);
        let applied = batch.apply(&mut g);

        let policy = FallbackPolicy {
            on_audit_failure: AuditAction::Ignore,
            ..Default::default()
        };
        let audit = FixpointAudit::full();
        let report = update_guarded(&mut state, &g, &applied, &policy, Some(&audit));
        assert!(!report.fell_back());
        assert_eq!(state.distance(5), 0, "Ignore keeps the observed state");
        // The corruption is still *visible* to a caller who audits.
        assert!(!state.audit(&g, &audit).is_clean());
    }

    #[test]
    fn save_restore_roundtrip_preserves_future_updates() {
        // The durable essence must capture everything the incremental
        // algorithms consult: a restored state has to produce *bit-equal*
        // essences on every later update, or the weakly deducible classes
        // would silently drift once their stamps were dropped.
        let g0 = ring(16);
        let mut states: Vec<Box<dyn IncrementalState>> = vec![
            Box::new(SsspState::batch(&g0, 0).0),
            Box::new(CcState::batch(&g0).0),
            Box::new(SimState::batch(&g0, Pattern::new(vec![0], &[])).0),
            Box::new(ReachState::batch(&g0, 0).0),
            Box::new(LccState::batch(&g0).0),
            Box::new(DfsState::batch(&g0).0),
            Box::new(BcState::batch(&g0).0),
        ];
        let mut g = g0.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 10, 2).delete(5, 6);
        let applied = batch.apply(&mut g);
        for state in &mut states {
            state.update(&g, &applied);
        }

        let mut restored: Vec<Box<dyn IncrementalState>> = states
            .iter()
            .map(|s| restore_state(&g, &s.save_state()).expect("restore"))
            .collect();
        for (a, b) in states.iter().zip(&restored) {
            assert_eq!(a.name(), b.name());
            assert_eq!(
                a.save_state(),
                b.save_state(),
                "{} essence differs",
                a.name()
            );
        }

        let mut batch = UpdateBatch::new();
        batch.delete(2, 10).insert(4, 12, 1).delete(0, 8);
        let applied = batch.apply(&mut g);
        for (a, b) in states.iter_mut().zip(restored.iter_mut()) {
            a.update(&g, &applied);
            b.update(&g, &applied);
            assert_eq!(
                a.save_state(),
                b.save_state(),
                "{} diverged after restore",
                a.name()
            );
        }
    }

    #[test]
    fn corrupted_blobs_are_rejected() {
        let g = ring(8);
        let (state, _) = CcState::batch(&g);
        let blob = CcState::save_state(&state);
        let small = ring(6);
        assert!(matches!(
            CcState::restore(&small, &blob),
            Err(StateLoadError::SizeMismatch { .. })
        ));
        assert!(CcState::restore(&g, &blob[..blob.len() - 1]).is_err());
        assert!(matches!(
            SsspState::restore(&g, &blob),
            Err(StateLoadError::WrongClass { .. })
        ));
        assert!(restore_state(&g, b"garbage").is_err());
    }

    #[test]
    fn dfs_scope_check_degrades_without_an_engine() {
        // Deleting the root's tree edge shifts every timestamp after the
        // divergence point, so IncDFS replays nearly the whole forest.
        // DFS has no engine budget; the post-run scope check must catch
        // the blow-up and record ScopeExceeded.
        let mut g = directed_path(32);
        let (mut state, _) = DfsState::batch(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);

        let policy = FallbackPolicy {
            max_scope_size: 4,
            ..Default::default()
        };
        let report = update_guarded(&mut state, &g, &applied, &policy, None);
        let decision = report.fallback.expect("near-total replay must degrade");
        assert_eq!(decision.reason, FallbackReason::ScopeExceeded);
        let (fresh, _) = DfsState::batch(&g);
        for v in 0..32u32 {
            assert_eq!(state.first(v), fresh.first(v), "node {v}");
            assert_eq!(state.last(v), fresh.last(v), "node {v}");
            assert_eq!(state.parent(v), fresh.parent(v), "node {v}");
        }
    }
}
