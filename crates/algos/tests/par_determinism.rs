//! Determinism property test for the parallel fixpoint engine.
//!
//! For every parallel-eligible query class (SSSP, CC, Reach, Sim, LCC),
//! the sharded engine must reach the *same* fixpoint as the sequential
//! engine — C2 (contracting + monotonic) guarantees a unique fixpoint
//! under any schedule, and this test pins the implementation to it:
//! seeded random graphs, multi-round update streams, and every thread
//! count in `INCGRAPH_TEST_THREADS` (default `1,2,4`), with the full
//! fixpoint audit re-checking `σ_x` after every round.

use incgraph_algos::{CcState, IncrementalState, LccState, ReachState, SimState, SsspState};
use incgraph_core::FixpointAudit;
use incgraph_graph::rng::SplitMix64;
use incgraph_graph::{
    CsrOverlay, CsrSnapshot, DynamicGraph, GraphView, NodeId, Pattern, UpdateBatch,
};

/// Thread counts under test; override with e.g. `INCGRAPH_TEST_THREADS=1,8`.
fn thread_counts() -> Vec<usize> {
    std::env::var("INCGRAPH_TEST_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// A seeded stream of mixed insert/delete rounds over `n` nodes.
fn update_stream(
    n: usize,
    rounds: usize,
    per_round: usize,
    max_weight: u32,
    seed: u64,
) -> Vec<UpdateBatch> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..rounds)
        .map(|_| {
            let mut batch = UpdateBatch::new();
            for _ in 0..per_round {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if rng.gen_bool(0.55) {
                    batch.insert(u, v, rng.gen_range(1..=max_weight));
                } else {
                    batch.delete(u, v);
                }
            }
            batch
        })
        .collect()
}

/// Drives one class through the stream at each thread count and asserts
/// the per-round digests are identical to the 1-thread (sequential) run,
/// with the audit clean after every round.
///
/// `init(g, threads)` builds the state (parallel batch for threads > 1),
/// `digest` captures the fixpoint values.
fn assert_deterministic<S, D>(
    name: &str,
    g0: &DynamicGraph,
    stream: &[UpdateBatch],
    mut init: impl FnMut(&DynamicGraph, usize) -> S,
    digest: impl Fn(&S) -> D,
) where
    S: IncrementalState,
    D: PartialEq + std::fmt::Debug,
{
    let audit = FixpointAudit::full();

    // Sequential baseline: per-round digests.
    let mut g = g0.clone();
    let mut state = init(&g, 1);
    let mut baseline = vec![digest(&state)];
    for batch in stream {
        let applied = batch.apply(&mut g);
        state.update(&g, &applied);
        assert!(
            state.audit(&g, &audit).is_clean(),
            "{name}: sequential audit failed"
        );
        baseline.push(digest(&state));
    }

    for &threads in &thread_counts() {
        let mut g = g0.clone();
        let mut state = init(&g, threads);
        assert_eq!(
            digest(&state),
            baseline[0],
            "{name}: batch fixpoint diverges at {threads} threads"
        );
        for (round, batch) in stream.iter().enumerate() {
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            let report = state.audit(&g, &audit);
            assert!(
                report.is_clean(),
                "{name}: audit failed at {threads} threads, round {round}: {report:?}"
            );
            assert_eq!(
                digest(&state),
                baseline[round + 1],
                "{name}: fixpoint diverges at {threads} threads, round {round}"
            );
        }
    }
}

#[test]
fn sssp_parallel_matches_sequential() {
    let g = incgraph_graph::gen::uniform(300, 1400, true, 10, 4, 41);
    let stream = update_stream(300, 6, 16, 10, 141);
    assert_deterministic(
        "sssp",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                SsspState::batch_par(g, 0, t).0
            } else {
                SsspState::batch(g, 0).0
            }
        },
        |s| s.distances().to_vec(),
    );
}

#[test]
fn cc_parallel_matches_sequential() {
    let g = incgraph_graph::gen::uniform(250, 500, false, 1, 1, 42);
    let stream = update_stream(250, 6, 12, 1, 142);
    assert_deterministic(
        "cc",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                CcState::batch_par(g, t).0
            } else {
                CcState::batch(g).0
            }
        },
        |s| s.components().to_vec(),
    );
}

#[test]
fn reach_parallel_matches_sequential() {
    let g = incgraph_graph::gen::uniform(300, 900, true, 1, 1, 43);
    let stream = update_stream(300, 6, 14, 1, 143);
    assert_deterministic(
        "reach",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                ReachState::batch_par(g, 0, t).0
            } else {
                ReachState::batch(g, 0).0
            }
        },
        |s| s.reached().to_vec(),
    );
}

#[test]
fn sim_parallel_matches_sequential() {
    // Cyclic pattern on a labeled graph: the hardest anchor case.
    let pattern = Pattern::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 1)]);
    let g = incgraph_graph::gen::uniform(120, 500, true, 1, 3, 44);
    let stream = update_stream(120, 6, 8, 1, 144);
    assert_deterministic(
        "sim",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                SimState::batch_par(g, pattern.clone(), t).0
            } else {
                SimState::batch(g, pattern.clone()).0
            }
        },
        |s| s.relation(),
    );
}

#[test]
fn lcc_parallel_matches_sequential() {
    let g = incgraph_graph::gen::uniform(200, 900, false, 1, 1, 45);
    let stream = update_stream(200, 6, 12, 1, 145);
    assert_deterministic(
        "lcc",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                LccState::batch_par(g, t).0
            } else {
                LccState::batch(g).0
            }
        },
        |s| {
            (0..s.coefficients().len() as NodeId)
                .map(|v| (s.degree(v), s.triangles(v)))
                .collect::<Vec<_>>()
        },
    );
}

/// A stream dominated by self-loop churn, with enough ordinary edges
/// mixed in that the fixpoints actually move between rounds.
fn self_loop_stream(n: usize, rounds: usize, seed: u64) -> Vec<UpdateBatch> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..rounds)
        .map(|_| {
            let mut batch = UpdateBatch::new();
            for _ in 0..8 {
                let v = rng.gen_range(0..n) as NodeId;
                if rng.gen_bool(0.6) {
                    batch.insert(v, v, rng.gen_range(1..=5u32));
                } else {
                    batch.delete(v, v);
                }
                let u = rng.gen_range(0..n) as NodeId;
                let w = rng.gen_range(0..n) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, w, rng.gen_range(1..=5u32));
                } else {
                    batch.delete(u, w);
                }
            }
            batch
        })
        .collect()
}

#[test]
fn zero_node_graph_parallel_matches_sequential() {
    // No status variables at all: the engines must agree on the empty
    // fixpoint without touching a single shard.
    let g = DynamicGraph::new(false, 0);
    assert_deterministic(
        "cc/0-nodes",
        &g,
        &[],
        |g, t| {
            if t > 1 {
                CcState::batch_par(g, t).0
            } else {
                CcState::batch(g).0
            }
        },
        |s| s.components().to_vec(),
    );
    assert_deterministic(
        "lcc/0-nodes",
        &g,
        &[],
        |g, t| {
            if t > 1 {
                LccState::batch_par(g, t).0
            } else {
                LccState::batch(g).0
            }
        },
        |s| s.coefficients().to_vec(),
    );
}

#[test]
fn single_node_graph_parallel_matches_sequential() {
    // One node, a stream that only churns its (directed) self-loop. The
    // undirected classes see every op rejected as a no-op.
    let stream = self_loop_stream(1, 4, 900);
    let gd = DynamicGraph::new(true, 1);
    assert_deterministic(
        "sssp/1-node",
        &gd,
        &stream,
        |g, t| {
            if t > 1 {
                SsspState::batch_par(g, 0, t).0
            } else {
                SsspState::batch(g, 0).0
            }
        },
        |s| s.distances().to_vec(),
    );
    assert_deterministic(
        "reach/1-node",
        &gd,
        &stream,
        |g, t| {
            if t > 1 {
                ReachState::batch_par(g, 0, t).0
            } else {
                ReachState::batch(g, 0).0
            }
        },
        |s| s.reached().to_vec(),
    );
    let pattern = Pattern::new(vec![0], &[]);
    assert_deterministic(
        "sim/1-node",
        &gd,
        &stream,
        |g, t| {
            if t > 1 {
                SimState::batch_par(g, pattern.clone(), t).0
            } else {
                SimState::batch(g, pattern.clone()).0
            }
        },
        |s| s.relation(),
    );
    let gu = DynamicGraph::new(false, 1);
    assert_deterministic(
        "cc/1-node",
        &gu,
        &stream,
        |g, t| {
            if t > 1 {
                CcState::batch_par(g, t).0
            } else {
                CcState::batch(g).0
            }
        },
        |s| s.components().to_vec(),
    );
}

#[test]
fn self_loop_churn_parallel_matches_sequential() {
    // Directed graphs keep self-loops as real arcs; they must neither
    // shorten SSSP distances nor create spurious reachability, at any
    // thread count.
    let g = incgraph_graph::gen::uniform(60, 150, true, 5, 2, 47);
    let stream = self_loop_stream(60, 6, 947);
    assert_deterministic(
        "sssp/self-loops",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                SsspState::batch_par(g, 0, t).0
            } else {
                SsspState::batch(g, 0).0
            }
        },
        |s| s.distances().to_vec(),
    );
    assert_deterministic(
        "reach/self-loops",
        &g,
        &stream,
        |g, t| {
            if t > 1 {
                ReachState::batch_par(g, 0, t).0
            } else {
                ReachState::batch(g, 0).0
            }
        },
        |s| s.reached().to_vec(),
    );
}

#[test]
fn csr_overlay_views_track_update_stream() {
    // The parallel engine reads ΔG through a copy-on-write CsrOverlay;
    // its row views must stay byte-identical to the mutated DynamicGraph
    // across a whole multi-round stream, and reset() must revert to the
    // base snapshot exactly.
    for directed in [true, false] {
        let mut g = incgraph_graph::gen::uniform(80, 300, directed, 5, 2, 48);
        let base = g.clone();
        let csr = CsrSnapshot::new(&base);
        let mut overlay = CsrOverlay::new(&csr);
        let stream = update_stream(80, 5, 20, 5, 148);
        for (round, batch) in stream.iter().enumerate() {
            let applied = batch.apply(&mut g);
            overlay.apply(&applied);
            for v in 0..g.node_count() as NodeId {
                assert_eq!(
                    overlay.out_neighbors(v),
                    g.out_neighbors(v),
                    "directed={directed} round {round}: out({v})"
                );
                assert_eq!(
                    overlay.in_neighbors(v),
                    GraphView::in_neighbors(&g, v),
                    "directed={directed} round {round}: in({v})"
                );
            }
        }
        overlay.reset();
        for v in 0..base.node_count() as NodeId {
            assert_eq!(
                overlay.out_neighbors(v),
                base.out_neighbors(v),
                "directed={directed}: reset must revert out({v}) to base"
            );
        }
    }
}

#[test]
fn parallel_runs_are_reproducible() {
    // Same thread count + same input → bit-identical digests, twice.
    let g = incgraph_graph::gen::uniform(200, 900, true, 10, 4, 46);
    let stream = update_stream(200, 4, 12, 10, 146);
    let run = |threads: usize| {
        let mut g = g.clone();
        let (mut state, _) = SsspState::batch_par(&g, 0, threads);
        let mut digests = vec![state.distances().to_vec()];
        for batch in &stream {
            let applied = batch.apply(&mut g);
            state.update(&g, &applied);
            digests.push(state.distances().to_vec());
        }
        digests
    };
    for threads in thread_counts() {
        assert_eq!(run(threads), run(threads), "threads = {threads}");
    }
}
