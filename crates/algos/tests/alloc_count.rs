//! Proof that the steady-state incremental hot path is allocation-free.
//!
//! A counting `#[global_allocator]` wraps `System`; the counter is armed
//! only around the `state.update(&g, &applied)` call under test, so
//! graph mutation (`batch.apply`), batch construction, and test
//! bookkeeping never pollute the count. A warmup phase first runs the
//! same update shapes so every scratch structure (the `ScopeScratch`
//! arena, per-class `touched` buffers, the engine's persistent heap and
//! dependency buffers) grows to its working capacity; after that, a ΔG
//! update must not touch the heap at all.
//!
//! Gated behind the `alloc-count` feature because the wrapper
//! intercepts every allocation in the test binary:
//!
//! ```text
//! cargo test -p incgraph-algos --features alloc-count --test alloc_count
//! ```
#![cfg(feature = "alloc-count")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

use incgraph_algos::{CcState, SsspState};
use incgraph_graph::{DynamicGraph, UpdateBatch};

/// Counts heap acquisitions (`alloc`, `alloc_zeroed`, `realloc`) while
/// armed. Frees are not counted: releasing memory is cheap and the
/// claim under test is "no new heap memory per steady-state update".
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A shrinking realloc releases memory (the scratch buffers'
        // 4× overshoot policy); only growth acquires heap.
        if new_size > layout.size() && ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed and returns how many heap
/// acquisitions it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Relaxed);
    ARMED.store(true, Relaxed);
    f();
    ARMED.store(false, Relaxed);
    ALLOCS.load(Relaxed)
}

/// Undirected ring of `n` nodes (unit weights) with `(i, i + n/2)`
/// chords — enough structure that edge churn moves SSSP distances and
/// forces CC reconfirmation walks.
fn chord_ring(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new(false, n);
    for i in 0..n {
        g.insert_edge(i as u32, ((i + 1) % n) as u32, 1);
    }
    for i in 0..n / 2 {
        g.insert_edge(i as u32, (i + n / 2) as u32, 3);
    }
    g
}

/// One steady-state round: delete a fixed ring edge and re-insert it at
/// a parity-toggled weight, so distances genuinely move every round but
/// the affected region — and therefore every scratch high-water mark —
/// is the same from round to round. (A workload whose scope sizes swing
/// by more than 4× between rounds would legitimately trip the scratch
/// buffers' 4× overshoot shrink-and-regrow policy; that is capacity
/// management, not steady state.) Returns the applied ΔG; the graph
/// mutation happens here, outside any armed region.
fn churn_round(g: &mut DynamicGraph, round: usize) -> incgraph_graph::AppliedBatch {
    let (u, v) = (16u32, 17u32);
    let mut batch = UpdateBatch::new();
    batch.delete(u, v).insert(u, v, 1 + (round % 2) as u32);
    batch.apply(g)
}

const N: usize = 64;
const WARMUP_ROUNDS: usize = 16;
const MEASURE_ROUNDS: usize = 8;

#[test]
fn sssp_steady_state_update_is_allocation_free() {
    let mut g = chord_ring(N);
    let (mut state, _) = SsspState::batch(&g, 0);
    for round in 0..WARMUP_ROUNDS {
        let applied = churn_round(&mut g, round);
        state.update(&g, &applied);
    }
    for round in WARMUP_ROUNDS..WARMUP_ROUNDS + MEASURE_ROUNDS {
        let applied = churn_round(&mut g, round);
        let allocs = count_allocs(|| {
            state.update(&g, &applied);
        });
        assert_eq!(
            allocs, 0,
            "sssp steady-state update allocated {allocs} times in round {round}"
        );
    }
}

#[test]
fn cc_steady_state_update_is_allocation_free() {
    let mut g = chord_ring(N);
    let (mut state, _) = CcState::batch(&g);
    for round in 0..WARMUP_ROUNDS {
        let applied = churn_round(&mut g, round);
        state.update(&g, &applied);
    }
    for round in WARMUP_ROUNDS..WARMUP_ROUNDS + MEASURE_ROUNDS {
        let applied = churn_round(&mut g, round);
        let allocs = count_allocs(|| {
            state.update(&g, &applied);
        });
        assert_eq!(
            allocs, 0,
            "cc steady-state update allocated {allocs} times in round {round}"
        );
    }
}
