//! Error-path tests for the [`Session`]/[`QueryClass`] facade — the
//! surface the service layer (crates/service) builds standing queries
//! through. Every refusal here must be a typed error, not a panic or a
//! silently wrong answer, because the server converts these directly
//! into wire `ERR` replies.

use incgraph_algos::{QueryClass, Session, SessionError};
use incgraph_graph::{DynamicGraph, Pattern, UpdateBatch};

fn tiny_pattern() -> Pattern {
    Pattern::new(vec![0, 0], &[(0, 1)])
}

#[test]
fn from_name_round_trips_and_rejects_unknown() {
    for class in QueryClass::ALL {
        assert_eq!(QueryClass::from_name(class.name()), Some(class));
    }
    for bogus in ["", "SSSP", "sssp ", "pagerank", "cc2", "sim\n"] {
        assert_eq!(QueryClass::from_name(bogus), None, "accepted {bogus:?}");
    }
}

#[test]
fn sim_without_pattern_is_missing_pattern() {
    let g = DynamicGraph::new(false, 4);
    match Session::builder(QueryClass::Sim).build(&g) {
        Err(SessionError::MissingPattern) => {}
        Err(other) => panic!("expected MissingPattern, got {other:?}"),
        Ok(_) => panic!("sim without a pattern built"),
    }
    // The same builder with a pattern succeeds — the refusal is about
    // the missing input, not the class.
    Session::builder(QueryClass::Sim)
        .pattern(tiny_pattern())
        .build(&g)
        .expect("sim with pattern builds");
}

#[test]
fn undirected_only_classes_refuse_directed_graphs() {
    let directed = DynamicGraph::new(true, 4);
    let undirected = DynamicGraph::new(false, 4);
    for class in [QueryClass::Lcc, QueryClass::Bc] {
        assert!(class.requires_undirected());
        match Session::builder(class).build(&directed) {
            Err(SessionError::RequiresUndirected(c)) => assert_eq!(c, class),
            Err(other) => panic!(
                "{}: expected RequiresUndirected, got {other:?}",
                class.name()
            ),
            Ok(_) => panic!("{} built on a directed graph", class.name()),
        }
        Session::builder(class)
            .build(&undirected)
            .unwrap_or_else(|e| panic!("{} on undirected refused: {e}", class.name()));
    }
    // DFS is defined on both regimes and must keep building on directed.
    for class in [
        QueryClass::Sssp,
        QueryClass::Cc,
        QueryClass::Reach,
        QueryClass::Dfs,
    ] {
        Session::builder(class)
            .build(&directed)
            .unwrap_or_else(|e| panic!("{} on directed refused: {e}", class.name()));
    }
}

#[test]
fn session_error_display_is_actionable() {
    let msg = SessionError::MissingPattern.to_string();
    assert!(msg.contains("pattern"), "unhelpful: {msg}");
    let msg = SessionError::RequiresUndirected(QueryClass::Lcc).to_string();
    assert!(
        msg.contains("lcc") && msg.contains("undirected"),
        "unhelpful: {msg}"
    );
    let msg = SessionError::SourceOutOfRange {
        source: 7,
        nodes: 3,
    }
    .to_string();
    assert!(msg.contains('7') && msg.contains('3'), "unhelpful: {msg}");
}

#[test]
fn empty_graph_sessions_build_and_digest_empty() {
    let g = DynamicGraph::new(false, 0);
    for class in QueryClass::ALL {
        let mut builder = Session::builder(class);
        if class == QueryClass::Sim {
            builder = builder.pattern(tiny_pattern());
        }
        if class.source_rooted() {
            // No node can serve as the root of an empty graph: a typed
            // refusal, not a panic.
            match builder.build(&g) {
                Err(SessionError::SourceOutOfRange { nodes: 0, .. }) => continue,
                Err(other) => panic!("{}: unexpected error {other:?}", class.name()),
                Ok(_) => panic!("{} built rooted in an empty graph", class.name()),
            }
        }
        let session = builder
            .build(&g)
            .unwrap_or_else(|e| panic!("{} on empty graph refused: {e}", class.name()));
        assert!(
            session.digest(&g).is_empty(),
            "{}: non-empty digest on empty graph",
            class.name()
        );
    }
}

#[test]
fn single_node_graph_survives_an_update_cycle() {
    for class in QueryClass::ALL {
        let mut g = DynamicGraph::new(false, 1);
        let mut builder = Session::builder(class);
        if class.source_rooted() {
            builder = builder.source(0);
        }
        if class == QueryClass::Sim {
            builder = builder.pattern(tiny_pattern());
        }
        let mut session = builder
            .build(&g)
            .unwrap_or_else(|e| panic!("{} on 1-node graph refused: {e}", class.name()));
        let before = session.digest(&g);
        // The only legal ΔG on one node is empty; the hardened step must
        // be a no-op, not a crash.
        let applied = UpdateBatch::new()
            .apply_validated(&mut g)
            .expect("empty ΔG");
        session.update_guarded(&g, &applied);
        assert_eq!(
            before,
            session.digest(&g),
            "{}: empty ΔG changed the digest",
            class.name()
        );
    }
}

#[test]
fn out_of_range_source_is_a_typed_refusal_not_a_panic() {
    // The per-class specs assert on a bad source; the builder must turn
    // a remote REGISTER's garbage into a typed error before they see it.
    let g = DynamicGraph::new(false, 3);
    for class in [QueryClass::Sssp, QueryClass::Reach] {
        match Session::builder(class).source(99).build(&g) {
            Err(SessionError::SourceOutOfRange {
                source: 99,
                nodes: 3,
            }) => {}
            Err(other) => panic!("{}: unexpected error {other:?}", class.name()),
            Ok(_) => panic!("{} built with source 99 over 3 nodes", class.name()),
        }
        // The boundary value is legal.
        Session::builder(class)
            .source(2)
            .build(&g)
            .unwrap_or_else(|e| panic!("{} with source 2 refused: {e}", class.name()));
    }
    // Classes that do not take a source refuse it outright instead of
    // silently ignoring it (the old behavior masked caller bugs).
    match Session::builder(QueryClass::Cc).source(99).build(&g) {
        Err(SessionError::OptionNotApplicable {
            class: QueryClass::Cc,
            option: "source",
        }) => {}
        Err(other) => panic!("cc with a source: {other:?}"),
        Ok(_) => panic!("cc accepted a source"),
    }
}

#[test]
fn inapplicable_builder_options_are_typed_refusals() {
    let g = DynamicGraph::new(false, 4);
    for class in QueryClass::ALL {
        // `source` is only meaningful for the source-rooted classes.
        if !class.source_rooted() {
            let mut builder = Session::builder(class).source(1);
            if class == QueryClass::Sim {
                builder = builder.pattern(tiny_pattern());
            }
            match builder.build(&g) {
                Err(SessionError::OptionNotApplicable {
                    class: c,
                    option: "source",
                }) => assert_eq!(c, class),
                Err(other) => panic!("{}: unexpected error {other:?}", class.name()),
                Ok(_) => panic!("{} accepted a source", class.name()),
            }
        }
        // `pattern` is Sim-only.
        if class != QueryClass::Sim {
            let mut builder = Session::builder(class).pattern(tiny_pattern());
            if class.source_rooted() {
                builder = builder.source(0);
            }
            match builder.build(&g) {
                Err(SessionError::OptionNotApplicable {
                    class: c,
                    option: "pattern",
                }) => assert_eq!(c, class),
                Err(other) => panic!("{}: unexpected error {other:?}", class.name()),
                Ok(_) => panic!("{} accepted a pattern", class.name()),
            }
        }
    }
    // The message names the class and the option — the server ships it
    // verbatim in an ERR reply.
    let msg = SessionError::OptionNotApplicable {
        class: QueryClass::Cc,
        option: "source",
    }
    .to_string();
    assert!(
        msg.contains("cc") && msg.contains("source"),
        "unhelpful: {msg}"
    );
}
