//! Micro-batch coalescing is value-invisible: applying N micro-batches
//! one by one, applying their coalesced net batch in one step, and
//! applying each batch under [`ExecOptions::micro_batch`]
//! canonicalization must all land every class in the same fixpoint.
//!
//! Three sessions per class evolve in lockstep over a randomized update
//! stream with forced cross-batch cancellation (insert then delete of
//! the same edge in different micro-batches, delete then re-insert of
//! an existing edge):
//!
//! - `seq`: one guarded update per micro-batch (the reference);
//! - `coal`: graphs evolve identically, but the state sees one guarded
//!   update per *round* with the coalesced net of that round's batches;
//! - `mb`: per-batch updates with `micro_batch` canonicalization on.
//!
//! Equality is checked at two strengths. Value digests must agree for
//! all seven classes after every round. Durable essences
//! (`save_state`) must be byte-identical for the stamp-free classes
//! (SSSP, LCC, DFS, BC); the weakly deducible classes (CC, Sim, Reach)
//! carry timestamps whose values depend on how many engine runs
//! happened, so their essences legitimately differ — for those, a
//! follow-up round after the comparison proves the states remain
//! equivalent *as incremental states*, not just as snapshots.

use incgraph_algos::{IncrementalState, QueryClass, Session};
use incgraph_core::coalesce_batches;
use incgraph_graph::rng::SplitMix64;
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId, Pattern, UpdateBatch};

const N: usize = 40;
const ROUNDS: usize = 6;
const BATCHES_PER_ROUND: usize = 3;
const OPS_PER_BATCH: usize = 5;

/// Undirected random graph over `N` nodes with alternating labels
/// (so the Sim pattern below has non-trivial matches).
fn base_graph(rng: &mut SplitMix64) -> DynamicGraph {
    let labels = (0..N).map(|v| (v % 2) as u32).collect();
    let mut g = DynamicGraph::with_labels(false, labels);
    for _ in 0..2 * N {
        let u = rng.gen_range(0..N) as NodeId;
        let v = rng.gen_range(0..N) as NodeId;
        if u != v {
            g.insert_edge(u, v, rng.gen_range(1u32..=8));
        }
    }
    g
}

/// A random edge currently present in `g`, if any node has neighbors.
fn existing_edge(g: &DynamicGraph, rng: &mut SplitMix64) -> Option<(NodeId, NodeId)> {
    for _ in 0..64 {
        let u = rng.gen_range(0..N) as NodeId;
        let nbrs = g.out_neighbors(u);
        if !nbrs.is_empty() {
            let (v, _) = nbrs[rng.gen_range(0..nbrs.len())];
            return Some((u, v));
        }
    }
    None
}

/// One round's micro-batch sequence: random ops plus forced
/// cross-batch churn — an insert in batch 0 cancelled by a delete in a
/// later batch, and an existing edge deleted then re-inserted.
fn round_batches(g: &DynamicGraph, rng: &mut SplitMix64) -> Vec<UpdateBatch> {
    let mut batches: Vec<UpdateBatch> =
        (0..BATCHES_PER_ROUND).map(|_| UpdateBatch::new()).collect();
    for batch in batches.iter_mut() {
        for _ in 0..OPS_PER_BATCH {
            let u = rng.gen_range(0..N) as NodeId;
            let v = rng.gen_range(0..N) as NodeId;
            if u == v {
                continue;
            }
            if rng.gen_bool(0.5) {
                batch.insert(u, v, rng.gen_range(1u32..=8));
            } else {
                batch.delete(u, v);
            }
        }
    }
    // Forced cancellation: a fresh edge inserted in the first batch and
    // deleted again in the last one nets to nothing…
    let (mut x, mut y) = (0, 1);
    for _ in 0..64 {
        let a = rng.gen_range(0..N) as NodeId;
        let b = rng.gen_range(0..N) as NodeId;
        if a != b && !g.has_edge(a, b) {
            (x, y) = (a, b);
            break;
        }
    }
    batches[0].insert(x, y, 5);
    batches[BATCHES_PER_ROUND - 1].delete(x, y);
    // …and an existing edge deleted early then re-inserted at a new
    // weight nets to a weight change.
    if let Some((u, v)) = existing_edge(g, rng) {
        batches[0].delete(u, v);
        batches[BATCHES_PER_ROUND - 1].insert(u, v, rng.gen_range(1u32..=8));
    }
    batches
}

fn build_session(class: QueryClass, g: &DynamicGraph, micro_batch: bool) -> Session {
    let mut builder = Session::builder(class);
    if class.source_rooted() {
        builder = builder.source(0);
    }
    if class == QueryClass::Sim {
        builder = builder.pattern(Pattern::new(vec![0, 1], &[(0, 1)]));
    }
    builder
        .micro_batch(micro_batch)
        .build(g)
        .expect("build session")
}

/// Stamp-free classes serialize no timestamps, so their essences must
/// be byte-identical however the same net ΔG was chunked.
fn stamp_free(class: QueryClass) -> bool {
    matches!(
        class,
        QueryClass::Sssp | QueryClass::Lcc | QueryClass::Dfs | QueryClass::Bc
    )
}

#[test]
fn coalesced_updates_are_value_identical_across_all_classes() {
    for class in QueryClass::ALL {
        let mut rng = SplitMix64::seed_from_u64(0x5eed ^ class as u64);
        let g0 = base_graph(&mut rng);
        let (mut g_seq, mut g_coal, mut g_mb) = (g0.clone(), g0.clone(), g0);

        let mut seq = build_session(class, &g_seq, false);
        let mut coal = build_session(class, &g_coal, false);
        let mut mb = build_session(class, &g_mb, true);

        let mut saw_compression = false;
        for round in 0..ROUNDS {
            let batches = round_batches(&g_seq, &mut rng);
            let mut applieds: Vec<AppliedBatch> = Vec::new();
            for batch in &batches {
                let applied = batch.apply(&mut g_seq);
                seq.update_guarded(&g_seq, &applied);

                let applied_mb = batch.apply(&mut g_mb);
                mb.update_guarded(&g_mb, &applied_mb);

                applieds.push(batch.apply(&mut g_coal));
            }
            let total_ops: usize = applieds.iter().map(|a| a.len()).sum();
            let net = coalesce_batches(g_coal.is_directed(), &applieds);
            assert!(
                net.len() <= total_ops,
                "{class:?}: coalesced batch grew ({} > {total_ops})",
                net.len()
            );
            saw_compression |= net.len() < total_ops;
            coal.update_guarded(&g_coal, &net);

            let d_seq = seq.digest(&g_seq);
            assert_eq!(
                d_seq,
                coal.digest(&g_coal),
                "{class:?}: coalesced digest diverged in round {round}"
            );
            assert_eq!(
                d_seq,
                mb.digest(&g_mb),
                "{class:?}: micro_batch digest diverged in round {round}"
            );
            if stamp_free(class) {
                assert_eq!(
                    seq.save_state(),
                    coal.save_state(),
                    "{class:?}: stamp-free essence not byte-identical in round {round}"
                );
                assert_eq!(
                    seq.save_state(),
                    mb.save_state(),
                    "{class:?}: micro_batch essence not byte-identical in round {round}"
                );
            }
        }
        assert!(
            saw_compression,
            "{class:?}: the forced cancellations never compressed a round"
        );

        // Follow-up round: the stamped classes' essences differ only in
        // timestamps, so prove all three states stay equivalent as
        // *incremental* states by pushing one more plain batch through
        // each path.
        let mut batch = UpdateBatch::new();
        if let Some((u, v)) = existing_edge(&g_seq, &mut rng) {
            batch.delete(u, v);
        }
        batch.insert(3, 7, 2).insert(11, 29, 4).delete(3, 7);
        for (g, s) in [
            (&mut g_seq, &mut seq),
            (&mut g_coal, &mut coal),
            (&mut g_mb, &mut mb),
        ] {
            let applied = batch.apply(g);
            s.update_guarded(g, &applied);
        }
        let d_seq = seq.digest(&g_seq);
        assert_eq!(
            d_seq,
            coal.digest(&g_coal),
            "{class:?}: follow-up update diverged after coalesced history"
        );
        assert_eq!(
            d_seq,
            mb.digest(&g_mb),
            "{class:?}: follow-up update diverged after micro_batch history"
        );
    }
}
