//! Initial scope functions `h(D^r_A, ΔG) = (D⁰, H⁰)`.
//!
//! Two constructions are provided:
//!
//! * [`bounded_scope`] — the paper's Fig. 4 algorithm, generic over a
//!   [`ContributorOracle`]. Under conditions (C1)/(C2) of Theorem 3 it
//!   yields `H⁰ ⊆ AFF`, i.e. a *relatively bounded* incrementalization.
//! * [`pe_reset_scope`] — the conservative Theorem 1 construction that
//!   floods *potentially affected* (PE) variables along dependency edges
//!   and resets them to `⊥`. Always correct, potentially unbounded.
//!
//! Both mutate the old fixpoint status in place into the feasible status
//! `D⁰` and return the initial scope `H⁰` from which the ordinary engine
//! ([`crate::engine::Engine::run`]) is resumed.
//!
//! Each construction comes in two forms: the allocating convenience form
//! (`bounded_scope` / `pe_reset_scope`, which build their working sets per
//! call) and the zero-allocation form (`bounded_scope_in` /
//! `pe_reset_scope_in`) that runs entirely inside a caller-owned
//! [`ScopeScratch`]. Incremental states keep one scratch per instance so a
//! steady-state ΔG update performs no heap allocation in `h` at all — the
//! epoch bitmaps reset in `O(1)` and the queue/scope buffers retain their
//! high-water capacity the same way [`crate::engine::Engine`] does.

use crate::epoch::VisitEpoch;
use crate::spec::FixpointSpec;
use crate::status::Status;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Knowledge about the *anchor sets* `C_x` and the topological order `<_C`
/// of a finished batch (or previous incremental) run.
///
/// The order is exposed as a numeric key: `order_key(x) < order_key(y)`
/// means `x <_C y`, i.e. `x`'s final value was determined before `y`'s.
/// Deducible algorithms derive keys from final values (SSSP: the distance
/// itself; DFS: the preorder number); weakly deducible ones (CC, Sim) use
/// the timestamps recorded by [`Status`].
///
/// Oracle methods receive the **live** status: `h` raises values as it
/// goes but never touches timestamps, and a raised value is itself
/// feasible, so consulting live state in place of a pre-update snapshot
/// only makes trust decisions more conservative — it never unsounds them.
/// (`contributes_to(x)` is invoked *before* `x`'s raise is applied, so
/// the oracle still sees `x`'s pre-raise value.) This is what keeps a
/// unit update free of `O(|Ψ_A|)` snapshot copies.
///
/// # Contract
///
/// * Along every contributor edge, keys strictly increase: if `x ∈ C_z`
///   then `order_key(x) < order_key(z)` at the time the edge is examined.
/// * `contributes_to(x)` pushes **at least** every not-yet-processed `z`
///   with `x ∈ C_z` (over-approximation is safe, it only widens the
///   queue).
///
/// Under this contract, [`bounded_scope`] pops variables in `<_C` order
/// and every infeasible variable is reached through a contributor chain
/// before any variable that might trust it.
pub trait ContributorOracle<V> {
    /// The `<_C` position of `x` (smaller = determined earlier).
    fn order_key(&self, x: usize, status: &Status<V>) -> u64;

    /// Pushes every variable that may have `x` in its anchor set.
    fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<V>, push: &mut P);
}

/// Work counters for one scope-function invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Queue pops processed.
    pub pops: u64,
    /// Update-function evaluations against the feasible view.
    pub evals: u64,
    /// Input reads performed by those evaluations.
    pub reads: u64,
    /// Variables whose value `h` adjusted (raised toward `⊥`).
    pub raised: u64,
    /// Contributor-queue pushes.
    pub pushes: u64,
}

/// Result of an initial scope function: the scope `H⁰` plus counters. The
/// feasible status `D⁰` is produced by mutating the input status in place.
#[derive(Clone, Debug, Default)]
pub struct ScopeResult {
    /// The initial scope `H⁰_{A_Δ}`, deduplicated and sorted.
    pub scope: Vec<usize>,
    /// Work performed by `h` (the paper measures `h`'s share of the total
    /// incremental cost in Exp-2(2d)).
    pub stats: ScopeStats,
}

/// Reusable working memory for the scope functions: the flat-state arena
/// the zero-allocation ΔG path runs in.
///
/// One scratch per incremental state instance. The caller fills
/// [`touched`](Self::touched) (the variables whose input sets evolved
/// under ΔG — line 1 of Fig. 4), invokes [`bounded_scope_in`] or
/// [`pe_reset_scope_in`], and reads the resulting `H⁰` from
/// [`scope`](Self::scope). Between updates every structure keeps its
/// backing storage: the epoch bitmaps clear with one counter bump, the
/// vectors keep their high-water capacity, and the contributor queue
/// follows the engine's 4× overshoot shrink policy — so a steady-state
/// update allocates nothing.
#[derive(Clone, Debug)]
pub struct ScopeScratch {
    /// Caller-filled input: variables with evolved input sets. The scope
    /// functions only read it — callers clear and refill it before each
    /// run (and may inspect it afterwards).
    pub touched: Vec<usize>,
    /// Output `H⁰`, sorted and deduplicated after a run. Callers may
    /// `std::mem::take` it around the engine resume and put it back — the
    /// scope functions re-clear it on entry.
    pub scope: Vec<usize>,
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    in_scope: VisitEpoch,
    done: VisitEpoch,
    frontier: Vec<usize>,
    peak_queue: usize,
}

impl Default for ScopeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopeScratch {
    /// An empty scratch; structures grow lazily to the spec's size.
    pub fn new() -> Self {
        ScopeScratch {
            touched: Vec::new(),
            scope: Vec::new(),
            queue: BinaryHeap::new(),
            in_scope: VisitEpoch::new(0),
            done: VisitEpoch::new(0),
            frontier: Vec::new(),
            peak_queue: 0,
        }
    }

    /// Resets per-run state and sizes the bitmaps for `n` variables.
    /// `touched` is *not* cleared — it is this run's input.
    fn begin_run(&mut self, n: usize) {
        self.in_scope.grow_to(n);
        self.done.grow_to(n);
        self.in_scope.clear();
        self.done.clear();
        self.queue.clear();
        self.scope.clear();
        self.frontier.clear();
        self.peak_queue = 0;
    }

    /// Applies the engine's capacity policy: a one-off spike (one huge
    /// update) should not pin the queue's high-water mark forever, but
    /// shrinking every run would force realloc churn under a steady
    /// update stream.
    fn end_run(&mut self) {
        if self.queue.capacity() > 4 * self.peak_queue.max(1) {
            self.queue.shrink_to(self.peak_queue);
        }
    }

    /// Heap bytes held by the scratch.
    pub fn space_bytes(&self) -> usize {
        self.touched.capacity() * std::mem::size_of::<usize>()
            + self.scope.capacity() * std::mem::size_of::<usize>()
            + self.queue.capacity() * std::mem::size_of::<Reverse<(u64, usize)>>()
            + self.in_scope.space_bytes()
            + self.done.space_bytes()
            + self.frontier.capacity() * std::mem::size_of::<usize>()
    }
}

/// The paper's Fig. 4: a correct and bounded initial scope function for
/// contracting, monotonic algorithms.
///
/// `spec` must be specified over the **updated** graph `G ⊕ ΔG`; `status`
/// holds the old fixpoint `D^r_A` and is adjusted in place to the feasible
/// status `D⁰`; `touched` are the variables whose update-function input
/// sets evolved under `ΔG` (line 1 of Fig. 4).
///
/// Processing order follows `<_C`: each popped variable `x` is re-evaluated
/// against the *feasible view* in which inputs not yet determined
/// (`order_key ≥ order_key(x)`) read as their `⊥` value (lines 5–6). If
/// the recomputation shows `x ≺ f_x(Ȳ)` — the stored value is more
/// advanced than anything the surviving contributors justify — `x` is
/// raised, added to `H⁰`, and the variables it contributed to are enqueued
/// (lines 7–9).
///
/// A raise stores `⊥`, not the refined `f_x(Ȳ)`. The refined value is
/// tempting (it can spare the engine a re-derivation) but it corrupts the
/// weakly-deducible timestamp order: when the resumed engine *confirms*
/// the refined value without a change, the variable keeps its pre-update
/// stamp, which may now be smaller than the stamp of the very neighbor
/// that witnesses it — and a later round's `<_C` then misidentifies which
/// endpoint of a deleted edge can be affected (found by differential
/// fuzzing: two successive bridge deletions in CC left a stale component
/// label behind). Resetting to `⊥` restores the invariant by
/// construction: every surviving non-`⊥` value was either untouched (its
/// old stamp and witness are intact) or freshly lowered by the engine
/// (stamped in change order).
///
/// Raises use [`Status::set_unstamped`]: a raise is a rollback, not a
/// step, of the underlying contracting run, and the reset-to-`⊥` above
/// guarantees any value the engine keeps is restamped when re-derived.
pub fn bounded_scope<S: FixpointSpec, O: ContributorOracle<S::Value>>(
    spec: &S,
    oracle: &O,
    status: &mut Status<S::Value>,
    touched: impl IntoIterator<Item = usize>,
) -> ScopeResult {
    let mut scratch = ScopeScratch::new();
    scratch.touched.extend(touched);
    let stats = bounded_scope_in(spec, oracle, status, &mut scratch);
    ScopeResult {
        scope: std::mem::take(&mut scratch.scope),
        stats,
    }
}

/// [`bounded_scope`] running entirely inside a caller-owned
/// [`ScopeScratch`]: the caller fills `scratch.touched`, the resulting
/// `H⁰` lands in `scratch.scope` (sorted, deduplicated). Performs no heap
/// allocation once the scratch has reached its steady-state capacity.
pub fn bounded_scope_in<S: FixpointSpec, O: ContributorOracle<S::Value>>(
    spec: &S,
    oracle: &O,
    status: &mut Status<S::Value>,
    scratch: &mut ScopeScratch,
) -> ScopeStats {
    let _span = incgraph_obs::span("scope.h");
    let mut stats = ScopeStats::default();
    scratch.begin_run(spec.num_vars());
    let ScopeScratch {
        touched,
        scope,
        queue,
        in_scope,
        done,
        peak_queue,
        ..
    } = scratch;

    for &x in touched.iter() {
        if in_scope.insert(x) {
            scope.push(x);
            queue.push(Reverse((oracle.order_key(x, status), x)));
            *peak_queue = (*peak_queue).max(queue.len());
            stats.pushes += 1;
        }
    }

    while let Some(Reverse((key, x))) = queue.pop() {
        if !done.insert(x) {
            continue;
        }
        stats.pops += 1;

        let cur = status.get(x);
        // A variable at ⊥ is maximal under ⪯: no raise is possible, so
        // the feasible-view recomputation is skipped (the variable stays
        // in H⁰ if it was touched, and the engine handles any lowering).
        if cur == spec.bottom(x) {
            continue;
        }
        let mut reads = 0u64;
        // Feasible view: trust only inputs determined strictly before x.
        let newv = spec.eval(x, &mut |y| {
            reads += 1;
            if oracle.order_key(y, status) < key {
                status.get(y)
            } else {
                spec.bottom(y)
            }
        });
        stats.evals += 1;
        stats.reads += reads;

        // `x ≺ f_x(Ȳ)` (or incomparable): the stored value is potentially
        // infeasible for G ⊕ ΔG — raise it, all the way to `⊥` (see the
        // function docs for why the refined value must not be stored).
        // Contributors are collected *before* the raise lands so the
        // oracle sees x's pre-raise value.
        if newv != cur && !spec.preceq(&newv, &cur) {
            oracle.contributes_to(x, status, &mut |z| {
                if !done.contains(z) {
                    queue.push(Reverse((oracle.order_key(z, status), z)));
                    stats.pushes += 1;
                }
            });
            *peak_queue = (*peak_queue).max(queue.len());
            status.set_unstamped(x, spec.bottom(x));
            stats.raised += 1;
            if in_scope.insert(x) {
                scope.push(x);
            }
        }
    }

    scope.sort_unstable();
    let scope_len = scope.len();
    scratch.end_run();
    record_scope_obs(&stats, scope_len);
    stats
}

/// Forwards one scope-function invocation's counters to the
/// observability layer (one `enabled` check when no recorder is
/// installed — the scope functions run once per update, not per pop).
fn record_scope_obs(stats: &ScopeStats, scope_len: usize) {
    use incgraph_obs as obs;
    if !obs::enabled() {
        return;
    }
    obs::counter("scope.pops", stats.pops);
    obs::counter("scope.evals", stats.evals);
    obs::counter("scope.reads", stats.reads);
    obs::counter("scope.raised", stats.raised);
    obs::counter("scope.pushes", stats.pushes);
    obs::observe("scope.size", scope_len as u64);
}

/// The Theorem 1 construction: flood the *potentially affected* variables
/// through dependency edges (Example 2's expansion rule) and reset every
/// one of them to its `⊥` value.
///
/// Always correct for any fixpoint algorithm — the resulting status is
/// trivially feasible and the scope valid — but the flood is not bounded
/// by `AFF` (deleting one edge of a connected graph floods the whole
/// component under CC). Used as the `abl-scope` ablation baseline.
pub fn pe_reset_scope<S: FixpointSpec>(
    spec: &S,
    status: &mut Status<S::Value>,
    touched: impl IntoIterator<Item = usize>,
) -> ScopeResult {
    let mut scratch = ScopeScratch::new();
    scratch.touched.extend(touched);
    let stats = pe_reset_scope_in(spec, status, &mut scratch);
    ScopeResult {
        scope: std::mem::take(&mut scratch.scope),
        stats,
    }
}

/// [`pe_reset_scope`] running inside a caller-owned [`ScopeScratch`]:
/// same contract as [`bounded_scope_in`].
pub fn pe_reset_scope_in<S: FixpointSpec>(
    spec: &S,
    status: &mut Status<S::Value>,
    scratch: &mut ScopeScratch,
) -> ScopeStats {
    let _span = incgraph_obs::span("scope.pe_reset");
    let mut stats = ScopeStats::default();
    scratch.begin_run(spec.num_vars());
    let ScopeScratch {
        touched,
        scope,
        in_scope,
        frontier,
        ..
    } = scratch;
    // Dense epoch bitmap instead of a HashSet: membership is one compare,
    // and the flood is the hot loop of the ablation baseline.
    for &x in touched.iter() {
        if in_scope.insert(x) {
            scope.push(x);
            frontier.push(x);
            stats.pushes += 1;
        }
    }
    while let Some(x) = frontier.pop() {
        stats.pops += 1;
        spec.dependents(x, &mut |z| {
            if in_scope.insert(z) {
                scope.push(z);
                frontier.push(z);
                stats.pushes += 1;
            }
        });
    }
    scope.sort_unstable();
    for &x in scope.iter() {
        let bot = spec.bottom(x);
        if status.get(x) != bot {
            status.set_unstamped(x, bot);
            stats.raised += 1;
        }
    }
    let scope_len = scope.len();
    scratch.end_run();
    record_scope_obs(&stats, scope_len);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fixpoint;

    /// Min-label CC over a mutable adjacency, as a test double for the
    /// real algorithm in `incgraph-algos`.
    struct Cc {
        adj: Vec<Vec<usize>>,
    }

    impl Cc {
        fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in edges {
                adj[a].push(b);
                adj[b].push(a);
            }
            Cc { adj }
        }
    }

    impl FixpointSpec for Cc {
        type Value = u32;
        fn num_vars(&self) -> usize {
            self.adj.len()
        }
        fn bottom(&self, x: usize) -> u32 {
            x as u32
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            let mut m = x as u32;
            for &y in &self.adj[x] {
                m = m.min(read(y));
            }
            m
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            for &y in &self.adj[x] {
                push(y);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
        fn rank(&self, _x: usize, v: &u32) -> u64 {
            *v as u64
        }
    }

    /// Timestamp-based oracle over the live status, as IncCC uses.
    struct StampOracle<'a> {
        adj: &'a [Vec<usize>],
    }

    impl ContributorOracle<u32> for StampOracle<'_> {
        fn order_key(&self, x: usize, status: &Status<u32>) -> u64 {
            status.stamp(x)
        }
        fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<u32>, push: &mut P) {
            let sx = status.stamp(x);
            for &z in &self.adj[x] {
                if status.stamp(z) > sx {
                    push(z);
                }
            }
        }
    }

    #[test]
    fn bounded_scope_handles_bridge_deletion() {
        // Path 0-1-2-3: all labels converge to 0. Delete (1,2): labels of
        // {2,3} must recover to 2.
        let old = Cc::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut status = Status::init(&old, true);
        run_fixpoint(&old, &mut status, 0..4);
        assert_eq!(status.values(), &[0, 0, 0, 0]);

        let new = Cc::from_edges(4, &[(0, 1), (2, 3)]);
        // Oracle keys/stamps come from the old run, and contributor
        // expansion uses the old adjacency (the deleted edge carried the
        // old change propagation); `old` stays alive, so the oracle
        // borrows its adjacency directly instead of cloning it.
        let res = bounded_scope(
            &new,
            &StampOracle { adj: &old.adj },
            &mut status,
            [1usize, 2],
        );
        // h must have raised 2 (and possibly 3) back toward their ids.
        assert!(res.scope.contains(&2));
        let stats = run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 2, 2]);
        // Boundedness: component {0,1} minus the touched var 1 stays out.
        assert!(!res.scope.contains(&0));
        let _ = stats;
    }

    #[test]
    fn bounded_scope_noop_when_updates_dont_matter() {
        // Cycle 0-1-2-0 plus chord (0,2): deleting the chord changes no
        // label; h must raise nothing beyond re-checking the touched vars.
        let old = Cc::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut status = Status::init(&old, true);
        run_fixpoint(&old, &mut status, 0..3);
        let new = Cc::from_edges(3, &[(0, 1), (1, 2)]);
        let res = bounded_scope(
            &new,
            &StampOracle { adj: &old.adj },
            &mut status,
            [0usize, 2],
        );
        run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 0]);
        assert!(res.scope.len() <= 2, "only the touched endpoints");
    }

    #[test]
    fn bounded_scope_insertion_lowers_through_engine() {
        // Two components {0,1} and {2,3}; insert (1,2): labels of {2,3}
        // drop to 0. h raises nothing; the engine does the lowering.
        let old = Cc::from_edges(4, &[(0, 1), (2, 3)]);
        let mut status = Status::init(&old, true);
        run_fixpoint(&old, &mut status, 0..4);
        assert_eq!(status.values(), &[0, 0, 2, 2]);
        let new = Cc::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let res = bounded_scope(
            &new,
            &StampOracle { adj: &old.adj },
            &mut status,
            [1usize, 2],
        );
        assert_eq!(res.stats.raised, 0, "insertions need no raises");
        run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 0, 0]);
    }

    #[test]
    fn pe_reset_floods_component_and_stays_correct() {
        let old = Cc::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut status = Status::init(&old, false);
        run_fixpoint(&old, &mut status, 0..5);
        let new = Cc::from_edges(5, &[(0, 1), (2, 3)]);
        let res = pe_reset_scope(&new, &mut status, [1usize, 2]);
        // The flood covers the whole old component reachable in the new
        // graph from the endpoints — including 0 (the Example 2 cost).
        assert!(res.scope.contains(&0));
        assert!(!res.scope.contains(&4), "isolated node untouched");
        run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 2, 2, 4]);
    }

    #[test]
    fn scope_results_are_sorted_and_deduped() {
        let g = Cc::from_edges(3, &[(0, 1)]);
        let mut status = Status::init(&g, false);
        run_fixpoint(&g, &mut status, 0..3);
        let res = pe_reset_scope(&g, &mut status, [1usize, 1, 0]);
        assert_eq!(res.scope, vec![0, 1]);
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh_calls() {
        // Repeated runs through one scratch must produce the same scope
        // and raises as independent allocating calls, with no state
        // bleeding between runs.
        let old = Cc::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut s1 = Status::init(&old, true);
        run_fixpoint(&old, &mut s1, 0..4);
        let mut s2 = s1.clone();

        let new = Cc::from_edges(4, &[(0, 1), (2, 3)]);
        let mut scratch = ScopeScratch::new();
        for round in 0..3 {
            let fresh = bounded_scope(
                &new,
                &StampOracle { adj: &old.adj },
                &mut s1.clone(),
                [1usize, 2],
            );
            scratch.touched.clear();
            scratch.touched.extend([1usize, 2]);
            let stats =
                bounded_scope_in(&new, &StampOracle { adj: &old.adj }, &mut s2, &mut scratch);
            if round == 0 {
                // First round actually mutates s1 to compare statuses.
                let res1 =
                    bounded_scope(&new, &StampOracle { adj: &old.adj }, &mut s1, [1usize, 2]);
                assert_eq!(res1.scope, scratch.scope);
                assert_eq!(res1.stats, stats);
                assert_eq!(s1.values(), s2.values());
            } else {
                // Later rounds: raises already applied, scope must be
                // stable (idempotent h on a feasible status).
                assert_eq!(fresh.scope.len(), scratch.scope.len());
            }
        }
    }

    #[test]
    fn pe_reset_scratch_matches_allocating_form() {
        let old = Cc::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut s1 = Status::init(&old, false);
        run_fixpoint(&old, &mut s1, 0..5);
        let mut s2 = s1.clone();
        let new = Cc::from_edges(5, &[(0, 1), (2, 3)]);
        let res = pe_reset_scope(&new, &mut s1, [1usize, 2]);
        let mut scratch = ScopeScratch::new();
        scratch.touched.extend([1usize, 2]);
        let stats = pe_reset_scope_in(&new, &mut s2, &mut scratch);
        assert_eq!(res.scope, scratch.scope);
        assert_eq!(res.stats, stats);
        assert_eq!(s1.values(), s2.values());
    }
}
