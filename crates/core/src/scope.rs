//! Initial scope functions `h(D^r_A, ΔG) = (D⁰, H⁰)`.
//!
//! Two constructions are provided:
//!
//! * [`bounded_scope`] — the paper's Fig. 4 algorithm, generic over a
//!   [`ContributorOracle`]. Under conditions (C1)/(C2) of Theorem 3 it
//!   yields `H⁰ ⊆ AFF`, i.e. a *relatively bounded* incrementalization.
//! * [`pe_reset_scope`] — the conservative Theorem 1 construction that
//!   floods *potentially affected* (PE) variables along dependency edges
//!   and resets them to `⊥`. Always correct, potentially unbounded.
//!
//! Both mutate the old fixpoint status in place into the feasible status
//! `D⁰` and return the initial scope `H⁰` from which the ordinary engine
//! ([`crate::engine::Engine::run`]) is resumed.

use crate::epoch::VisitEpoch;
use crate::spec::FixpointSpec;
use crate::status::Status;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Knowledge about the *anchor sets* `C_x` and the topological order `<_C`
/// of a finished batch (or previous incremental) run.
///
/// The order is exposed as a numeric key: `order_key(x) < order_key(y)`
/// means `x <_C y`, i.e. `x`'s final value was determined before `y`'s.
/// Deducible algorithms derive keys from final values (SSSP: the distance
/// itself; DFS: the preorder number); weakly deducible ones (CC, Sim) use
/// the timestamps recorded by [`Status`].
///
/// Oracle methods receive the **live** status: `h` raises values as it
/// goes but never touches timestamps, and a raised value is itself
/// feasible, so consulting live state in place of a pre-update snapshot
/// only makes trust decisions more conservative — it never unsounds them.
/// (`contributes_to(x)` is invoked *before* `x`'s raise is applied, so
/// the oracle still sees `x`'s pre-raise value.) This is what keeps a
/// unit update free of `O(|Ψ_A|)` snapshot copies.
///
/// # Contract
///
/// * Along every contributor edge, keys strictly increase: if `x ∈ C_z`
///   then `order_key(x) < order_key(z)` at the time the edge is examined.
/// * `contributes_to(x)` pushes **at least** every not-yet-processed `z`
///   with `x ∈ C_z` (over-approximation is safe, it only widens the
///   queue).
///
/// Under this contract, [`bounded_scope`] pops variables in `<_C` order
/// and every infeasible variable is reached through a contributor chain
/// before any variable that might trust it.
pub trait ContributorOracle<V> {
    /// The `<_C` position of `x` (smaller = determined earlier).
    fn order_key(&self, x: usize, status: &Status<V>) -> u64;

    /// Pushes every variable that may have `x` in its anchor set.
    fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<V>, push: &mut P);
}

/// Work counters for one scope-function invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Queue pops processed.
    pub pops: u64,
    /// Update-function evaluations against the feasible view.
    pub evals: u64,
    /// Input reads performed by those evaluations.
    pub reads: u64,
    /// Variables whose value `h` adjusted (raised toward `⊥`).
    pub raised: u64,
    /// Contributor-queue pushes.
    pub pushes: u64,
}

/// Result of an initial scope function: the scope `H⁰` plus counters. The
/// feasible status `D⁰` is produced by mutating the input status in place.
#[derive(Clone, Debug, Default)]
pub struct ScopeResult {
    /// The initial scope `H⁰_{A_Δ}`, deduplicated and sorted.
    pub scope: Vec<usize>,
    /// Work performed by `h` (the paper measures `h`'s share of the total
    /// incremental cost in Exp-2(2d)).
    pub stats: ScopeStats,
}

/// The paper's Fig. 4: a correct and bounded initial scope function for
/// contracting, monotonic algorithms.
///
/// `spec` must be specified over the **updated** graph `G ⊕ ΔG`; `status`
/// holds the old fixpoint `D^r_A` and is adjusted in place to the feasible
/// status `D⁰`; `touched` are the variables whose update-function input
/// sets evolved under `ΔG` (line 1 of Fig. 4).
///
/// Processing order follows `<_C`: each popped variable `x` is re-evaluated
/// against the *feasible view* in which inputs not yet determined
/// (`order_key ≥ order_key(x)`) read as their `⊥` value (lines 5–6). If
/// the recomputation shows `x ≺ f_x(Ȳ)` — the stored value is more
/// advanced than anything the surviving contributors justify — `x` is
/// raised, added to `H⁰`, and the variables it contributed to are enqueued
/// (lines 7–9).
///
/// A raise stores `⊥`, not the refined `f_x(Ȳ)`. The refined value is
/// tempting (it can spare the engine a re-derivation) but it corrupts the
/// weakly-deducible timestamp order: when the resumed engine *confirms*
/// the refined value without a change, the variable keeps its pre-update
/// stamp, which may now be smaller than the stamp of the very neighbor
/// that witnesses it — and a later round's `<_C` then misidentifies which
/// endpoint of a deleted edge can be affected (found by differential
/// fuzzing: two successive bridge deletions in CC left a stale component
/// label behind). Resetting to `⊥` restores the invariant by
/// construction: every surviving non-`⊥` value was either untouched (its
/// old stamp and witness are intact) or freshly lowered by the engine
/// (stamped in change order).
///
/// Raises use [`Status::set_unstamped`]: a raise is a rollback, not a
/// step, of the underlying contracting run, and the reset-to-`⊥` above
/// guarantees any value the engine keeps is restamped when re-derived.
pub fn bounded_scope<S: FixpointSpec, O: ContributorOracle<S::Value>>(
    spec: &S,
    oracle: &O,
    status: &mut Status<S::Value>,
    touched: impl IntoIterator<Item = usize>,
) -> ScopeResult {
    let _span = incgraph_obs::span("scope.h");
    let mut stats = ScopeStats::default();
    let n = spec.num_vars();
    let mut queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    // Dense scratch: zeroing two byte-vectors is far cheaper than hashing
    // every queue operation, and the incremental states already keep
    // O(|Ψ_A|) structures (status, engine) between updates.
    let mut in_scope = vec![false; n];
    let mut done = vec![false; n];
    let mut scope: Vec<usize> = Vec::new();

    for x in touched {
        if !std::mem::replace(&mut in_scope[x], true) {
            scope.push(x);
            queue.push(Reverse((oracle.order_key(x, status), x)));
            stats.pushes += 1;
        }
    }

    while let Some(Reverse((key, x))) = queue.pop() {
        if std::mem::replace(&mut done[x], true) {
            continue;
        }
        stats.pops += 1;

        let cur = status.get(x);
        // A variable at ⊥ is maximal under ⪯: no raise is possible, so
        // the feasible-view recomputation is skipped (the variable stays
        // in H⁰ if it was touched, and the engine handles any lowering).
        if cur == spec.bottom(x) {
            continue;
        }
        let mut reads = 0u64;
        // Feasible view: trust only inputs determined strictly before x.
        let newv = spec.eval(x, &mut |y| {
            reads += 1;
            if oracle.order_key(y, status) < key {
                status.get(y)
            } else {
                spec.bottom(y)
            }
        });
        stats.evals += 1;
        stats.reads += reads;

        // `x ≺ f_x(Ȳ)` (or incomparable): the stored value is potentially
        // infeasible for G ⊕ ΔG — raise it, all the way to `⊥` (see the
        // function docs for why the refined value must not be stored).
        // Contributors are collected *before* the raise lands so the
        // oracle sees x's pre-raise value.
        if newv != cur && !spec.preceq(&newv, &cur) {
            oracle.contributes_to(x, status, &mut |z| {
                if !done[z] {
                    queue.push(Reverse((oracle.order_key(z, status), z)));
                    stats.pushes += 1;
                }
            });
            status.set_unstamped(x, spec.bottom(x));
            stats.raised += 1;
            if !std::mem::replace(&mut in_scope[x], true) {
                scope.push(x);
            }
        }
    }

    scope.sort_unstable();
    record_scope_obs(&stats, scope.len());
    ScopeResult { scope, stats }
}

/// Forwards one scope-function invocation's counters to the
/// observability layer (one `enabled` check when no recorder is
/// installed — the scope functions run once per update, not per pop).
fn record_scope_obs(stats: &ScopeStats, scope_len: usize) {
    use incgraph_obs as obs;
    if !obs::enabled() {
        return;
    }
    obs::counter("scope.pops", stats.pops);
    obs::counter("scope.evals", stats.evals);
    obs::counter("scope.reads", stats.reads);
    obs::counter("scope.raised", stats.raised);
    obs::counter("scope.pushes", stats.pushes);
    obs::observe("scope.size", scope_len as u64);
}

/// The Theorem 1 construction: flood the *potentially affected* variables
/// through dependency edges (Example 2's expansion rule) and reset every
/// one of them to its `⊥` value.
///
/// Always correct for any fixpoint algorithm — the resulting status is
/// trivially feasible and the scope valid — but the flood is not bounded
/// by `AFF` (deleting one edge of a connected graph floods the whole
/// component under CC). Used as the deduced strategy where the flood is
/// inherently local (LCC's dependency graph has no edges) and as the
/// `abl-scope` ablation baseline elsewhere.
pub fn pe_reset_scope<S: FixpointSpec>(
    spec: &S,
    status: &mut Status<S::Value>,
    touched: impl IntoIterator<Item = usize>,
) -> ScopeResult {
    let _span = incgraph_obs::span("scope.pe_reset");
    let mut stats = ScopeStats::default();
    // Dense epoch bitmap instead of a HashSet: membership is one compare,
    // and the flood is the hot loop of the ablation baseline.
    let mut pe = VisitEpoch::new(spec.num_vars());
    let mut scope: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();
    for x in touched {
        if pe.insert(x) {
            scope.push(x);
            frontier.push(x);
            stats.pushes += 1;
        }
    }
    while let Some(x) = frontier.pop() {
        stats.pops += 1;
        spec.dependents(x, &mut |z| {
            if pe.insert(z) {
                scope.push(z);
                frontier.push(z);
                stats.pushes += 1;
            }
        });
    }
    scope.sort_unstable();
    for &x in &scope {
        let bot = spec.bottom(x);
        if status.get(x) != bot {
            status.set_unstamped(x, bot);
            stats.raised += 1;
        }
    }
    record_scope_obs(&stats, scope.len());
    ScopeResult { scope, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fixpoint;

    /// Min-label CC over a mutable adjacency, as a test double for the
    /// real algorithm in `incgraph-algos`.
    struct Cc {
        adj: Vec<Vec<usize>>,
    }

    impl Cc {
        fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in edges {
                adj[a].push(b);
                adj[b].push(a);
            }
            Cc { adj }
        }
    }

    impl FixpointSpec for Cc {
        type Value = u32;
        fn num_vars(&self) -> usize {
            self.adj.len()
        }
        fn bottom(&self, x: usize) -> u32 {
            x as u32
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            let mut m = x as u32;
            for &y in &self.adj[x] {
                m = m.min(read(y));
            }
            m
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            for &y in &self.adj[x] {
                push(y);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
        fn rank(&self, _x: usize, v: &u32) -> u64 {
            *v as u64
        }
    }

    /// Timestamp-based oracle over the live status, as IncCC uses.
    struct StampOracle<'a> {
        adj: &'a [Vec<usize>],
    }

    impl ContributorOracle<u32> for StampOracle<'_> {
        fn order_key(&self, x: usize, status: &Status<u32>) -> u64 {
            status.stamp(x)
        }
        fn contributes_to<P: FnMut(usize)>(&self, x: usize, status: &Status<u32>, push: &mut P) {
            let sx = status.stamp(x);
            for &z in &self.adj[x] {
                if status.stamp(z) > sx {
                    push(z);
                }
            }
        }
    }

    #[test]
    fn bounded_scope_handles_bridge_deletion() {
        // Path 0-1-2-3: all labels converge to 0. Delete (1,2): labels of
        // {2,3} must recover to 2.
        let old = Cc::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut status = Status::init(&old, true);
        run_fixpoint(&old, &mut status, 0..4);
        assert_eq!(status.values(), &[0, 0, 0, 0]);

        let new = Cc::from_edges(4, &[(0, 1), (2, 3)]);
        // Oracle keys/stamps come from the old run, and contributor
        // expansion uses the old adjacency (the deleted edge carried the
        // old change propagation).
        let old_adj = old.adj.clone();
        let res = bounded_scope(
            &new,
            &StampOracle { adj: &old_adj },
            &mut status,
            [1usize, 2],
        );
        // h must have raised 2 (and possibly 3) back toward their ids.
        assert!(res.scope.contains(&2));
        let stats = run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 2, 2]);
        // Boundedness: component {0,1} minus the touched var 1 stays out.
        assert!(!res.scope.contains(&0));
        let _ = stats;
    }

    #[test]
    fn bounded_scope_noop_when_updates_dont_matter() {
        // Cycle 0-1-2-0 plus chord (0,2): deleting the chord changes no
        // label; h must raise nothing beyond re-checking the touched vars.
        let old = Cc::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut status = Status::init(&old, true);
        run_fixpoint(&old, &mut status, 0..3);
        let old_adj = old.adj.clone();
        let new = Cc::from_edges(3, &[(0, 1), (1, 2)]);
        let res = bounded_scope(
            &new,
            &StampOracle { adj: &old_adj },
            &mut status,
            [0usize, 2],
        );
        run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 0]);
        assert!(res.scope.len() <= 2, "only the touched endpoints");
    }

    #[test]
    fn bounded_scope_insertion_lowers_through_engine() {
        // Two components {0,1} and {2,3}; insert (1,2): labels of {2,3}
        // drop to 0. h raises nothing; the engine does the lowering.
        let old = Cc::from_edges(4, &[(0, 1), (2, 3)]);
        let mut status = Status::init(&old, true);
        run_fixpoint(&old, &mut status, 0..4);
        assert_eq!(status.values(), &[0, 0, 2, 2]);
        let old_adj = old.adj.clone();
        let new = Cc::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let res = bounded_scope(
            &new,
            &StampOracle { adj: &old_adj },
            &mut status,
            [1usize, 2],
        );
        assert_eq!(res.stats.raised, 0, "insertions need no raises");
        run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 0, 0]);
    }

    #[test]
    fn pe_reset_floods_component_and_stays_correct() {
        let old = Cc::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut status = Status::init(&old, false);
        run_fixpoint(&old, &mut status, 0..5);
        let new = Cc::from_edges(5, &[(0, 1), (2, 3)]);
        let res = pe_reset_scope(&new, &mut status, [1usize, 2]);
        // The flood covers the whole old component reachable in the new
        // graph from the endpoints — including 0 (the Example 2 cost).
        assert!(res.scope.contains(&0));
        assert!(!res.scope.contains(&4), "isolated node untouched");
        run_fixpoint(&new, &mut status, res.scope.iter().copied());
        assert_eq!(status.values(), &[0, 0, 2, 2, 4]);
    }

    #[test]
    fn scope_results_are_sorted_and_deduped() {
        let g = Cc::from_edges(3, &[(0, 1)]);
        let mut status = Status::init(&g, false);
        run_fixpoint(&g, &mut status, 0..3);
        let res = pe_reset_scope(&g, &mut status, [1usize, 1, 0]);
        assert_eq!(res.scope, vec![0, 1]);
    }
}
