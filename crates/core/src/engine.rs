//! The step function `f_A`: a priority-worklist fixpoint driver.
//!
//! [`Engine::run`] implements one complete fixpoint computation: it pops
//! the scope variable with the smallest rank, re-evaluates its update
//! function, and on a change pushes the variable's dependents — exactly
//! the paper's step-function loop, specialized by nothing but the
//! [`FixpointSpec`] it is handed. Batch algorithms call it from
//! `(D⊥, H⁰)`; the deduced incremental algorithms call **the same
//! function** from the `(D⁰, H⁰)` produced by an initial scope function,
//! which is what makes them deducible.
//!
//! The engine's scratch arrays are epoch-versioned so that an incremental
//! run touches memory proportional to the variables it actually visits,
//! not to `|G|` — without that, the driver itself would break the
//! relative-boundedness story the experiments measure.

use crate::spec::{FixpointSpec, Relax};
use crate::status::Status;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Largest usable rank; `u64::MAX` is reserved as the "not enqueued"
/// sentinel in the dedup table.
const RANK_CAP: u64 = u64::MAX - 1;

/// Pending-work bitmask per variable.
const PEND_NONE: u8 = 0;
/// The variable's value was applied by a relaxation; its onward
/// propagation to dependents is outstanding.
const PEND_PROP: u8 = 1;
/// The variable's statement σ may be violated; re-evaluate `f_x`.
const PEND_EVAL: u8 = 2;

/// Work counters for one fixpoint run; the raw material of the paper's
/// `AFF`-relative measurements (Exp-1(1c)/(2c)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Worklist pops processed (stale entries excluded).
    pub pops: u64,
    /// Update-function evaluations (= non-stale pops).
    pub evals: u64,
    /// Evaluations that changed the variable's value.
    pub changes: u64,
    /// Dependent enqueue attempts.
    pub pushes: u64,
    /// Worklist entries discarded on pop because a lower-ranked or
    /// re-entrant push superseded them (lazy deletion). Pure scheduling
    /// overhead: each stale pop is a heap/queue operation that did no
    /// fixpoint work.
    pub stale_pops: u64,
    /// Input-variable reads performed by update functions.
    pub reads: u64,
    /// Distinct status variables inspected in this run — the empirical
    /// affected-area size.
    pub distinct_vars: u64,
    /// Whether the run was aborted by the engine's work budget before
    /// reaching a fixpoint. An aborted run leaves the status mid-fixpoint;
    /// the caller must recompute from scratch (see `FallbackPolicy`).
    pub aborted: bool,
    /// Whether a parallel shard panicked during the run. A poisoned run
    /// writes nothing back to the status; the caller degrades to the
    /// sequential engine (see `crate::par::ParEngine`), whose completed
    /// stats are merged on top so the flag survives as a record of the
    /// degradation.
    pub poisoned: bool,
}

impl RunStats {
    /// Merges another run's counters into this one (used by the `Inc*_n`
    /// unit-at-a-time variants to aggregate over a batch).
    pub fn merge(&mut self, other: &RunStats) {
        self.pops += other.pops;
        self.evals += other.evals;
        self.changes += other.changes;
        self.pushes += other.pushes;
        self.stale_pops += other.stale_pops;
        self.reads += other.reads;
        self.distinct_vars += other.distinct_vars;
        self.aborted |= other.aborted;
        self.poisoned |= other.poisoned;
    }
}

/// A reusable fixpoint driver for a fixed number of status variables.
///
/// Keep one `Engine` per algorithm instance: its scratch tables are
/// allocated once (`O(|Ψ_A|)`) and reset per run in `O(1)` via epochs, so
/// repeated incremental runs cost only the work they inspect.
#[derive(Clone, Debug)]
pub struct Engine {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Reusable dependent-collection buffer for the propagate loop.
    dep_buf: Vec<usize>,
    /// Rank of the live outstanding heap entry per variable, valid only
    /// when `epoch_of[x] == epoch`; `u64::MAX` = not enqueued.
    best: Vec<u64>,
    /// What the live entry will do when popped (`PEND_*`), valid only
    /// when `epoch_of[x] == epoch`.
    pend: Vec<u8>,
    /// Epoch in which `best[x]` / `pend[x]` / `seen[x]` were last written.
    epoch_of: Vec<u32>,
    /// Whether the variable was inspected this run (for `distinct_vars`).
    seen: Vec<bool>,
    epoch: u32,
    /// Abort a run once it has inspected this many distinct variables
    /// (`None` = unbounded). The degradation hook of `FallbackPolicy`:
    /// an incremental run that stops paying for itself is cut short
    /// mid-flight instead of grinding through an `|AFF| ≈ |Ψ|` scope.
    work_budget: Option<u64>,
    /// Peak heap length of the current/last run, for capacity policy.
    peak_heap: usize,
    /// Variables whose value changed during the last run, in application
    /// order (a variable may appear more than once). This is the engine's
    /// changed-set: the scope `H⁰` alone is *not* a safe candidate set for
    /// output diffing because propagation pushes dependents beyond it.
    changed: Vec<usize>,
}

impl Engine {
    /// Creates an engine for `num_vars` status variables.
    pub fn new(num_vars: usize) -> Self {
        Engine {
            heap: BinaryHeap::new(),
            dep_buf: Vec::new(),
            best: vec![u64::MAX; num_vars],
            pend: vec![PEND_NONE; num_vars],
            epoch_of: vec![0; num_vars],
            seen: vec![false; num_vars],
            epoch: 0,
            work_budget: None,
            peak_heap: 0,
            changed: Vec::new(),
        }
    }

    /// Variables whose value changed during the last [`run`](Self::run),
    /// in application order (duplicates possible). Cleared at the start of
    /// every run; callers diffing outputs should union this with the
    /// initial scope for a safe candidate superset.
    pub fn changed_vars(&self) -> &[usize] {
        &self.changed
    }

    /// Sets (or clears) the distinct-variable work budget for subsequent
    /// runs. When a run inspects more than `budget` distinct variables it
    /// aborts: the worklist is dropped, `RunStats::aborted` is set, and
    /// the status is left mid-fixpoint — callers must then fall back to a
    /// batch recompute.
    pub fn set_work_budget(&mut self, budget: Option<u64>) {
        self.work_budget = budget;
    }

    /// The configured work budget, if any.
    pub fn work_budget(&self) -> Option<u64> {
        self.work_budget
    }

    /// Current capacity of the worklist heap (regression hook for the
    /// shrink policy).
    pub fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Number of variables this engine was sized for.
    pub fn num_vars(&self) -> usize {
        self.best.len()
    }

    /// Heap bytes held by the engine's scratch structures.
    pub fn space_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<Reverse<(u64, usize)>>()
            + self.dep_buf.capacity() * std::mem::size_of::<usize>()
            + self.best.capacity() * 8
            + self.pend.capacity()
            + self.epoch_of.capacity() * 4
            + self.seen.capacity()
            + self.changed.capacity() * std::mem::size_of::<usize>()
    }

    /// Runs the step function to a fixpoint from the given initial scope.
    ///
    /// Every variable in `scope` is treated as potentially violating its
    /// logical statement `σ_x` and re-evaluated; changes propagate to
    /// dependents until the scope empties. Propagation prefers the spec's
    /// single-input [`Relax`] fast path (the paper's Fig. 1 relaxation)
    /// and falls back to full re-evaluation. Returns work counters.
    ///
    /// In debug builds, each applied change is asserted to be contracting
    /// (`new ⪯ old`), the C2 precondition of Theorem 3.
    pub fn run<S: FixpointSpec>(
        &mut self,
        spec: &S,
        status: &mut Status<S::Value>,
        scope: impl IntoIterator<Item = usize>,
    ) -> RunStats {
        assert_eq!(
            spec.num_vars(),
            self.best.len(),
            "engine sized for a different variable count"
        );
        let _span = incgraph_obs::span("engine.run");
        self.advance_epoch();
        self.peak_heap = 0;
        self.changed.clear();
        let mut stats = RunStats::default();

        let mut scope_len = 0usize;
        for x in scope {
            scope_len += 1;
            let r = spec.rank(x, &status.get(x)).min(RANK_CAP);
            self.push(x, r, PEND_EVAL, &mut stats);
        }

        while let Some(Reverse((r, x))) = self.heap.pop() {
            if self.epoch_of[x] != self.epoch || self.best[x] != r || self.pend[x] == PEND_NONE {
                stats.stale_pops += 1; // lazy-deleted entry: pure overhead
                continue;
            }
            let kind = self.pend[x];
            self.pend[x] = PEND_NONE;
            self.best[x] = u64::MAX;
            stats.pops += 1;
            if !self.seen[x] {
                self.seen[x] = true;
                stats.distinct_vars += 1;
                if let Some(budget) = self.work_budget {
                    if stats.distinct_vars > budget {
                        // Budget blown: this run's affected area is too
                        // large for incremental maintenance to pay off.
                        // Drop the remaining work and report the abort;
                        // the status is now mid-fixpoint and must be
                        // rebuilt by a batch run.
                        self.heap.clear();
                        stats.aborted = true;
                        break;
                    }
                }
            }

            if kind & PEND_EVAL != 0 {
                let cur = status.get(x);
                let mut reads = 0u64;
                let newv = spec.eval(x, &mut |y| {
                    reads += 1;
                    status.get(y)
                });
                stats.evals += 1;
                stats.reads += reads;
                if newv != cur {
                    debug_assert!(
                        !spec.is_contracting() || spec.preceq(&newv, &cur),
                        "non-contracting step on var {x}: {cur:?} -> {newv:?}"
                    );
                    status.set(x, newv);
                    stats.changes += 1;
                    self.changed.push(x);
                    self.propagate(spec, status, x, &newv, &mut stats);
                } else if kind & PEND_PROP != 0 {
                    // The eval found σ_x already satisfied, but an earlier
                    // relaxation changed x's value and its propagation is
                    // still owed.
                    self.propagate(spec, status, x, &cur, &mut stats);
                }
            } else {
                // PEND_PROP: the value was applied by a relaxation; only
                // the onward propagation is outstanding.
                let v = status.get(x);
                self.propagate(spec, status, x, &v, &mut stats);
            }
        }
        // The heap is empty here. A one-off spike (a batch run, one huge
        // update) should not pin its high-water mark forever, but under a
        // steady update stream shrinking every run just forces realloc
        // churn on the next one — so capacity is dropped only when it
        // overshoots the run's actual peak by more than 4x.
        if self.heap.capacity() > 4 * self.peak_heap.max(1) {
            self.heap.shrink_to(self.peak_heap);
        }
        incgraph_obs::gauge("engine.seq.heap_peak", self.peak_heap as u64);
        crate::trace::record("seq", 1, scope_len, &stats);
        stats
    }

    /// Propagates the (already applied) new value of `x` to dependents:
    /// relaxations apply immediately and queue onward propagation; the
    /// rest schedule full re-evaluations.
    fn propagate<S: FixpointSpec>(
        &mut self,
        spec: &S,
        status: &mut Status<S::Value>,
        x: usize,
        vx: &S::Value,
        stats: &mut RunStats,
    ) {
        // Collect dependents first: `dependents` borrows the spec/graph
        // which the relax path also reads. The buffer is reused across
        // calls to avoid allocation churn in the hot loop.
        let mut deps = std::mem::take(&mut self.dep_buf);
        deps.clear();
        spec.dependents(x, &mut |z| deps.push(z));
        for &z in &deps {
            let zv = status.get(z);
            stats.reads += 1;
            match spec.relax(z, &zv, x, vx) {
                Relax::Skip => {}
                Relax::Set(cand) => {
                    if cand != zv {
                        debug_assert!(
                            !spec.is_contracting() || spec.preceq(&cand, &zv),
                            "non-contracting relax on var {z}: {zv:?} -> {cand:?}"
                        );
                        status.set(z, cand);
                        stats.changes += 1;
                        self.changed.push(z);
                        let zr = spec.rank(z, &cand).min(RANK_CAP);
                        self.push(z, zr, PEND_PROP, stats);
                    }
                }
                Relax::Eval => {
                    let zr = spec.push_rank(z, &zv, x, vx).min(RANK_CAP);
                    self.push(z, zr, PEND_EVAL, stats);
                }
            }
        }
        self.dep_buf = deps;
    }

    fn push(&mut self, x: usize, rank: u64, kind: u8, stats: &mut RunStats) {
        stats.pushes += 1;
        if self.epoch_of[x] != self.epoch {
            self.epoch_of[x] = self.epoch;
            self.best[x] = u64::MAX;
            self.pend[x] = PEND_NONE;
            self.seen[x] = false;
        }
        // One live entry per variable, at rank `best[x]`. An EVAL request
        // subsumes a PROP request (re-evaluation both fixes the value and
        // propagates it), so kinds join upward; ranks join downward, and
        // a lowered rank supersedes the old entry (which then fails the
        // `best` check at pop).
        self.pend[x] |= kind;
        if rank < self.best[x] {
            self.best[x] = rank;
            self.heap.push(Reverse((rank, x)));
            self.peak_heap = self.peak_heap.max(self.heap.len());
        }
    }

    fn advance_epoch(&mut self) {
        self.heap.clear();
        if self.epoch == u32::MAX {
            // Epoch wrap: hard-reset the versioned tables.
            self.best.iter_mut().for_each(|b| *b = u64::MAX);
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.seen.iter_mut().for_each(|s| *s = false);
            self.epoch = 0;
        }
        self.epoch += 1;
    }
}

/// One-shot convenience wrapper: builds a throwaway [`Engine`] and runs to
/// fixpoint. Batch algorithms use this; incremental algorithms should keep
/// a reusable engine instead.
pub fn run_fixpoint<S: FixpointSpec>(
    spec: &S,
    status: &mut Status<S::Value>,
    scope: impl IntoIterator<Item = usize>,
) -> RunStats {
    Engine::new(spec.num_vars()).run(spec, status, scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Min-label propagation over a fixed 6-node undirected graph with two
    /// components {0,1,2,3} and {4,5} — a miniature CC.
    struct MiniCc {
        adj: Vec<Vec<usize>>,
    }

    impl MiniCc {
        fn new() -> Self {
            let edges = [(0, 1), (1, 2), (2, 3), (4, 5)];
            let mut adj = vec![Vec::new(); 6];
            for &(a, b) in &edges {
                adj[a].push(b);
                adj[b].push(a);
            }
            MiniCc { adj }
        }
    }

    impl FixpointSpec for MiniCc {
        type Value = u32;
        fn num_vars(&self) -> usize {
            self.adj.len()
        }
        fn bottom(&self, x: usize) -> u32 {
            x as u32
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            let mut m = x as u32;
            for &y in &self.adj[x] {
                m = m.min(read(y));
            }
            m
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            for &y in &self.adj[x] {
                push(y);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
        fn rank(&self, _x: usize, v: &u32) -> u64 {
            *v as u64
        }
        fn push_rank(&self, _z: usize, _zv: &u32, _t: usize, tv: &u32) -> u64 {
            *tv as u64
        }
    }

    #[test]
    fn converges_to_component_minima() {
        let spec = MiniCc::new();
        let mut status = Status::init(&spec, false);
        let stats = run_fixpoint(&spec, &mut status, 0..spec.num_vars());
        assert_eq!(status.values(), &[0, 0, 0, 0, 4, 4]);
        assert!(stats.changes >= 4, "labels 1,2,3,5 must drop");
    }

    #[test]
    fn church_rosser_any_seed_order() {
        let spec = MiniCc::new();
        let mut a = Status::init(&spec, false);
        run_fixpoint(&spec, &mut a, (0..6).rev());
        let mut b = Status::init(&spec, false);
        run_fixpoint(&spec, &mut b, [3, 0, 5, 1, 4, 2]);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn empty_scope_is_a_noop() {
        let spec = MiniCc::new();
        let mut status = Status::init(&spec, false);
        let stats = run_fixpoint(&spec, &mut status, std::iter::empty());
        assert_eq!(stats.pops, 0);
        assert_eq!(status.values(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn resume_from_partial_scope_converges() {
        // Seed only node 3's region: value flows along the path.
        let spec = MiniCc::new();
        let mut status = Status::init(&spec, false);
        run_fixpoint(&spec, &mut status, [0, 1, 2, 3]);
        assert_eq!(&status.values()[..4], &[0, 0, 0, 0]);
        assert_eq!(&status.values()[4..], &[4, 5], "untouched region stays");
    }

    #[test]
    fn reusable_engine_isolates_runs() {
        let spec = MiniCc::new();
        let mut engine = Engine::new(spec.num_vars());
        let mut s1 = Status::init(&spec, false);
        engine.run(&spec, &mut s1, 0..6);
        let mut s2 = Status::init(&spec, false);
        let stats2 = engine.run(&spec, &mut s2, [4, 5]);
        assert_eq!(s2.values(), &[0, 1, 2, 3, 4, 4]);
        assert!(stats2.distinct_vars <= 2);
    }

    #[test]
    fn rank_order_limits_rework_on_chain() {
        // 0-1-2-3-4-5 path: with value-ranked pops, each label drops to 0
        // exactly once (Dijkstra-like single-settle behaviour).
        struct Chain;
        impl FixpointSpec for Chain {
            type Value = u32;
            fn num_vars(&self) -> usize {
                6
            }
            fn bottom(&self, x: usize) -> u32 {
                x as u32
            }
            fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
                let mut m = x as u32;
                if x > 0 {
                    m = m.min(read(x - 1));
                }
                if x < 5 {
                    m = m.min(read(x + 1));
                }
                m
            }
            fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
                if x > 0 {
                    push(x - 1);
                }
                if x < 5 {
                    push(x + 1);
                }
            }
            fn preceq(&self, a: &u32, b: &u32) -> bool {
                a <= b
            }
            fn rank(&self, _x: usize, v: &u32) -> u64 {
                *v as u64
            }
            fn push_rank(&self, _z: usize, _zv: &u32, _t: usize, tv: &u32) -> u64 {
                *tv as u64
            }
        }
        let spec = Chain;
        let mut status = Status::init(&spec, false);
        let stats = run_fixpoint(&spec, &mut status, 0..6);
        assert_eq!(status.values(), &[0; 6]);
        assert_eq!(stats.changes, 5, "each non-zero label settles once");
    }

    #[test]
    fn stale_pops_account_for_lazy_deletion() {
        let spec = MiniCc::new();
        let mut status = Status::init(&spec, false);
        let stats = run_fixpoint(&spec, &mut status, 0..6);
        assert!(
            stats.stale_pops > 0,
            "rank-lowering pushes must strand superseded entries"
        );
        // Every queued entry is eventually popped as processed or stale,
        // and dedup never queues more entries than push attempts.
        assert!(stats.pops + stats.stale_pops <= stats.pushes);
    }

    #[test]
    fn work_budget_aborts_runaway_run() {
        let spec = MiniCc::new();
        let mut engine = Engine::new(spec.num_vars());
        engine.set_work_budget(Some(2));
        let mut status = Status::init(&spec, false);
        let stats = engine.run(&spec, &mut status, 0..6);
        assert!(stats.aborted, "6-var scope must blow a 2-var budget");
        assert!(stats.distinct_vars <= 3);
        // Clearing the budget restores normal convergence on the same
        // engine instance.
        engine.set_work_budget(None);
        let mut s2 = Status::init(&spec, false);
        let st = engine.run(&spec, &mut s2, 0..6);
        assert!(!st.aborted);
        assert_eq!(s2.values(), &[0, 0, 0, 0, 4, 4]);
    }

    #[test]
    fn budget_within_limit_completes() {
        let spec = MiniCc::new();
        let mut engine = Engine::new(spec.num_vars());
        engine.set_work_budget(Some(64));
        let mut status = Status::init(&spec, false);
        let stats = engine.run(&spec, &mut status, 0..6);
        assert!(!stats.aborted);
        assert_eq!(status.values(), &[0, 0, 0, 0, 4, 4]);
    }

    #[test]
    fn aborted_flag_merges_sticky() {
        let mut a = RunStats::default();
        let b = RunStats {
            aborted: true,
            ..Default::default()
        };
        a.merge(&b);
        assert!(a.aborted);
        a.merge(&RunStats::default());
        assert!(a.aborted, "abort is sticky across merges");
    }

    #[test]
    fn heap_capacity_stable_across_repeated_incremental_runs() {
        // A big batch run sets a high-water mark; repeated small runs must
        // not oscillate between shrink-to-zero and re-grow (the realloc
        // churn the old unconditional shrink_to_fit caused).
        let spec = MiniCc::new();
        let mut engine = Engine::new(spec.num_vars());
        let mut status = Status::init(&spec, false);
        engine.run(&spec, &mut status, 0..6);
        // First small run may release the one-off spike.
        let mut s = Status::init(&spec, false);
        engine.run(&spec, &mut s, [4usize]);
        let settled = engine.heap_capacity();
        for _ in 0..10 {
            let mut s = Status::init(&spec, false);
            engine.run(&spec, &mut s, [4usize]);
            assert_eq!(
                engine.heap_capacity(),
                settled,
                "steady-state runs must not churn heap capacity"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different variable count")]
    fn engine_size_mismatch_is_caught() {
        let spec = MiniCc::new();
        let mut status = Status::init(&spec, false);
        Engine::new(3).run(&spec, &mut status, 0..6);
    }
}

#[cfg(test)]
mod relax_tests {
    use super::*;
    use crate::spec::Relax;

    /// Weighted min-propagation chain with a relax fast path, plus one
    /// "odd" variable that forces the Eval fallback: var 3's update
    /// function caps values at 7 (still monotone + contracting), which a
    /// single-input relax cannot express.
    struct Mixed;

    impl Mixed {
        const N: usize = 5;
    }

    impl FixpointSpec for Mixed {
        type Value = u64;
        fn num_vars(&self) -> usize {
            Self::N
        }
        fn bottom(&self, x: usize) -> u64 {
            if x == 0 {
                0
            } else {
                100
            }
        }
        fn eval<R: FnMut(usize) -> u64>(&self, x: usize, read: &mut R) -> u64 {
            match x {
                0 => 0,
                3 => (read(2) + 1).max(7),
                _ => read(x - 1) + 1,
            }
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            if x + 1 < Self::N {
                push(x + 1);
            }
        }
        fn preceq(&self, a: &u64, b: &u64) -> bool {
            a <= b
        }
        fn relax(&self, z: usize, z_val: &u64, _t: usize, tv: &u64) -> Relax<u64> {
            match z {
                0 => Relax::Skip,
                3 => Relax::Eval, // the capped update needs a real eval
                _ => {
                    let cand = tv + 1;
                    if cand < *z_val {
                        Relax::Set(cand)
                    } else {
                        Relax::Skip
                    }
                }
            }
        }
        fn rank(&self, _x: usize, v: &u64) -> u64 {
            *v
        }
        fn push_rank(&self, _z: usize, _zv: &u64, _t: usize, tv: &u64) -> u64 {
            *tv
        }
    }

    #[test]
    fn relax_and_eval_paths_compose() {
        let spec = Mixed;
        let mut status = Status::init(&spec, false);
        run_fixpoint(&spec, &mut status, [1usize]);
        // 0=0, 1=1, 2=2, 3=max(3,7)=7, 4=8.
        assert_eq!(status.values(), &[0, 1, 2, 7, 8]);
    }

    #[test]
    fn eval_with_pending_prop_still_propagates() {
        // Regression for the pend-bitmask bug: a variable whose value was
        // set by a relaxation and then re-requested for evaluation (which
        // finds no further change) must still propagate downstream.
        let spec = Mixed;
        let mut status = Status::init(&spec, false);
        // Seeding 1 AND 2: var 2 first receives a relax-set from 1's
        // change, and also carries its own EVAL request from the scope.
        run_fixpoint(&spec, &mut status, [1usize, 2]);
        assert_eq!(status.values(), &[0, 1, 2, 7, 8]);
    }

    #[test]
    fn relaxation_counts_changes_not_evals() {
        let spec = Mixed;
        let mut status = Status::init(&spec, false);
        let stats = run_fixpoint(&spec, &mut status, [1usize]);
        // Vars 1 (eval), 3 (eval) are the only full evaluations; 2 and 4
        // settle through relaxations.
        assert_eq!(stats.evals, 2, "only the seed and the Eval-fallback");
        assert_eq!(stats.changes, 4, "vars 1..4 all changed");
    }

    #[test]
    fn engine_reuse_across_epoch_wrap() {
        // Force an epoch wrap and check state isolation afterwards.
        let spec = Mixed;
        let mut engine = Engine::new(Mixed::N);
        engine.epoch = u32::MAX - 1;
        let mut s1 = Status::init(&spec, false);
        engine.run(&spec, &mut s1, [1usize]);
        let mut s2 = Status::init(&spec, false);
        engine.run(&spec, &mut s2, [1usize]); // wraps here
        assert_eq!(s1.values(), s2.values());
        let mut s3 = Status::init(&spec, false);
        engine.run(&spec, &mut s3, [1usize]);
        assert_eq!(s1.values(), s3.values());
    }
}
