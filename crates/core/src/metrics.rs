//! Instrumentation for the paper's empirical claims: affected-area sizes
//! (Exp-1) and space costs (Fig. 8).
//!
//! These structs are per-run *views*: each carries the counters of the
//! one run that produced it, by value, with no synchronization — which
//! is what the paper-facing APIs return and what the oracle asserts on.
//! Cross-run aggregation is not done here: the same counters flow into
//! the `incgraph-obs` registry at the seams that produce them (the
//! engines' completion hook, the scope functions, the guarded update
//! path), so there is exactly one recording path and the registry is the
//! single cross-run aggregate. [`BoundednessReport::record_obs`] is that
//! seam for the per-update totals.

use crate::engine::RunStats;
use crate::fallback::FallbackDecision;
use crate::scope::ScopeStats;

/// Anything whose resident structure size can be reported; the Fig. 8
/// space experiment sums these over each algorithm's state.
pub trait SpaceUsage {
    /// Heap bytes held by this structure.
    fn space_bytes(&self) -> usize;
}

/// Empirical relative-boundedness report for one incremental run: how much
/// of the status-variable universe the run actually inspected, the
/// quantity the paper reports as `|AFF|` fractions in Exp-1(1c)/(2c).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoundednessReport {
    /// Size of the initial scope `|H⁰|`.
    pub scope_size: usize,
    /// Distinct status variables the engine inspected.
    pub inspected_vars: u64,
    /// Variables whose value actually changed.
    pub changed_vars: u64,
    /// Total status variables `|Ψ_A|`.
    pub total_vars: usize,
    /// Work spent in the scope function `h`.
    pub scope_stats: ScopeStats,
    /// Work spent resuming the step function.
    pub run_stats: RunStats,
    /// Degradation decision, when the incremental run was abandoned for a
    /// batch recompute (scope blow-up, work-budget abort, failed audit);
    /// `None` for a run that completed incrementally. Lets Exp-style
    /// drivers report fallback rates alongside `|AFF|` fractions.
    pub fallback: Option<FallbackDecision>,
}

impl BoundednessReport {
    /// Builds a report from the two phases of an incremental run.
    pub fn new(
        total_vars: usize,
        scope_size: usize,
        scope_stats: ScopeStats,
        run_stats: RunStats,
    ) -> Self {
        BoundednessReport {
            scope_size,
            inspected_vars: run_stats.distinct_vars.max(scope_size as u64),
            changed_vars: run_stats.changes,
            total_vars,
            scope_stats,
            run_stats,
            fallback: None,
        }
    }

    /// The same report with a degradation decision stamped in.
    pub fn with_fallback(mut self, decision: FallbackDecision) -> Self {
        self.fallback = Some(decision);
        self
    }

    /// Whether this run degraded to a batch recompute.
    pub fn fell_back(&self) -> bool {
        self.fallback.is_some()
    }

    /// Inspected fraction of the variable universe, in `\[0, 1\]` — the
    /// paper's "`|AFF|` accounts for x% of the total size of the auxiliary
    /// structures".
    pub fn aff_fraction(&self) -> f64 {
        if self.total_vars == 0 {
            0.0
        } else {
            self.inspected_vars as f64 / self.total_vars as f64
        }
    }

    /// Forwards this report's per-update totals to the observability
    /// registry under the ambient class label. Called once per guarded
    /// update by `algos::update_with`; costs one atomic load when no
    /// recorder is installed.
    pub fn record_obs(&self) {
        use incgraph_obs as obs;
        if !obs::enabled() {
            return;
        }
        obs::counter("update.runs", 1);
        obs::observe("update.scope_size", self.scope_size as u64);
        obs::observe("update.inspected", self.inspected_vars);
        obs::observe("update.changed", self.changed_vars);
        obs::gauge("update.total_vars", self.total_vars as u64);
        if self.fell_back() {
            obs::counter("update.fallbacks", 1);
        }
    }

    /// Share of update-function evaluations performed by `h` rather than
    /// the resumed step function (the paper's Exp-2(2d) measurement).
    pub fn scope_share(&self) -> f64 {
        let h = self.scope_stats.evals as f64;
        let total = h + self.run_stats.evals as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

/// Heap bytes of a `Vec<T>`'s buffer.
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_well_defined() {
        let run = RunStats {
            distinct_vars: 25,
            changes: 10,
            evals: 30,
            ..Default::default()
        };
        let scope = ScopeStats {
            evals: 10,
            ..Default::default()
        };
        let r = BoundednessReport::new(1000, 20, scope, run);
        assert!((r.aff_fraction() - 0.025).abs() < 1e-12);
        assert!((r.scope_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_universe_is_zero_fraction() {
        let r = BoundednessReport::new(0, 0, ScopeStats::default(), RunStats::default());
        assert_eq!(r.aff_fraction(), 0.0);
        assert_eq!(r.scope_share(), 0.0);
    }

    #[test]
    fn vec_bytes_counts_capacity() {
        let v: Vec<u64> = Vec::with_capacity(16);
        assert_eq!(vec_bytes(&v), 128);
    }
}
