//! Post-run fixpoint auditing.
//!
//! The correctness of a deduced incremental algorithm rests on the
//! invariant `σ_A = ∧_x σ_x` holding at the end of every run: each status
//! variable must equal its update function over its inputs,
//! `x = f_x(Y_x)`. The engine guarantees this when its preconditions
//! (feasible `D⁰`, valid `H⁰` — Theorems 1–3) hold, but a production
//! pipeline should not *trust* them blindly: a buggy oracle, a corrupted
//! state restored from disk, or a mis-specified scope silently poisons
//! every later incremental run. [`FixpointAudit`] re-checks `σ_x` over
//! the full or a sampled variable set by re-running
//! [`FixpointSpec::eval`] against the settled status, and reports every
//! violated variable in a typed [`AuditReport`].
//!
//! Auditing costs one extra evaluation per checked variable, so it is
//! opt-in (`debug`/CLI flag) rather than always-on; sampled mode keeps a
//! deterministic O(|Ψ|/stride) smoke-check cheap enough for steady
//! streams.

use crate::spec::FixpointSpec;
use crate::status::Status;

/// How much of the variable universe to re-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditMode {
    /// Check every status variable: `σ_x` for all `x ∈ Ψ`.
    Full,
    /// Check every `stride`-th variable starting at `offset % stride`.
    /// Deterministic (no PRNG in the hot path) and rotating the offset
    /// across runs covers the whole universe every `stride` runs.
    Sample {
        /// Check one variable in every `stride` (must be ≥ 1).
        stride: usize,
        /// Starting offset; taken modulo `stride`.
        offset: usize,
    },
}

/// One violated statement: variable `x` where `x ≠ f_x(Y_x)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    /// The violated variable's index.
    pub var: usize,
    /// Debug-rendered `(stored, recomputed)` pair, kept as text so the
    /// report type is independent of the spec's value type.
    pub detail: String,
}

/// Result of re-checking `σ_x` over a (possibly sampled) variable set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Variables checked.
    pub checked: usize,
    /// Total variables in the universe `|Ψ|`.
    pub total_vars: usize,
    /// Violations found, in variable order, capped at
    /// [`FixpointAudit::max_violations`].
    pub violations: Vec<AuditViolation>,
    /// Whether the violation list was truncated at the cap.
    pub truncated: bool,
}

impl AuditReport {
    /// Whether the audited set satisfied every statement.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A reusable audit configuration; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointAudit {
    /// Which variables to re-check.
    pub mode: AuditMode,
    /// Cap on recorded violations; checking continues (for the count) but
    /// details stop accumulating, keeping a totally-corrupt state from
    /// allocating |Ψ| strings.
    pub max_violations: usize,
}

impl Default for FixpointAudit {
    fn default() -> Self {
        FixpointAudit {
            mode: AuditMode::Full,
            max_violations: 32,
        }
    }
}

impl FixpointAudit {
    /// Full audit with the default violation cap.
    pub fn full() -> Self {
        Self::default()
    }

    /// Sampled audit with the default violation cap.
    pub fn sampled(stride: usize, offset: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        FixpointAudit {
            mode: AuditMode::Sample { stride, offset },
            max_violations: 32,
        }
    }

    /// Re-checks `σ_x : x = f_x(Y_x)` for the configured variable set
    /// against `status`, which is read-only here.
    pub fn run<S: FixpointSpec>(&self, spec: &S, status: &Status<S::Value>) -> AuditReport {
        let _span = incgraph_obs::span("audit.run");
        let n = spec.num_vars();
        let (stride, start) = match self.mode {
            AuditMode::Full => (1, 0),
            AuditMode::Sample { stride, offset } => (stride, offset % stride),
        };
        let mut report = AuditReport {
            checked: 0,
            total_vars: n,
            violations: Vec::new(),
            truncated: false,
        };
        let mut x = start;
        while x < n {
            report.checked += 1;
            let stored = status.get(x);
            let recomputed = spec.eval(x, &mut |y| status.get(y));
            if recomputed != stored {
                if report.violations.len() < self.max_violations {
                    report.violations.push(AuditViolation {
                        var: x,
                        detail: format!("stored {stored:?}, f_x gives {recomputed:?}"),
                    });
                } else {
                    report.truncated = true;
                }
            }
            x += stride;
        }
        incgraph_obs::counter("audit.checked", report.checked as u64);
        incgraph_obs::counter("audit.violations", report.violations.len() as u64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Min-label propagation over a fixed path 0-1-2-3 (miniature CC).
    struct PathCc;

    impl FixpointSpec for PathCc {
        type Value = u32;
        fn num_vars(&self) -> usize {
            4
        }
        fn bottom(&self, x: usize) -> u32 {
            x as u32
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            let mut m = x as u32;
            if x > 0 {
                m = m.min(read(x - 1));
            }
            if x < 3 {
                m = m.min(read(x + 1));
            }
            m
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            if x > 0 {
                push(x - 1);
            }
            if x < 3 {
                push(x + 1);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
        fn rank(&self, _x: usize, v: &u32) -> u64 {
            *v as u64
        }
        fn push_rank(&self, _z: usize, _zv: &u32, _t: usize, tv: &u32) -> u64 {
            *tv as u64
        }
    }

    #[test]
    fn clean_fixpoint_passes_full_audit() {
        let spec = PathCc;
        let mut status = Status::init(&spec, false);
        crate::engine::run_fixpoint(&spec, &mut status, 0..4);
        let report = FixpointAudit::full().run(&spec, &status);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.checked, 4);
        assert_eq!(report.total_vars, 4);
    }

    #[test]
    fn corrupted_status_is_caught_with_details() {
        let spec = PathCc;
        let mut status = Status::init(&spec, false);
        crate::engine::run_fixpoint(&spec, &mut status, 0..4);
        status.set_unstamped(2, 7); // poison one variable
        let report = FixpointAudit::full().run(&spec, &status);
        assert!(!report.is_clean());
        // Var 2 is wrong; its neighbors' statements still hold (their min
        // over inputs is unchanged by a *raised* neighbor... except they
        // read 7 > their own values, so 1 and 3 stay satisfied).
        let vars: Vec<usize> = report.violations.iter().map(|v| v.var).collect();
        assert!(vars.contains(&2), "vars: {vars:?}");
        let v = report.violations.iter().find(|v| v.var == 2).unwrap();
        assert!(v.detail.contains("stored 7"), "{}", v.detail);
    }

    #[test]
    fn sampled_audit_checks_stride_subset() {
        let spec = PathCc;
        let mut status = Status::init(&spec, false);
        crate::engine::run_fixpoint(&spec, &mut status, 0..4);
        let report = FixpointAudit::sampled(2, 0).run(&spec, &status);
        assert_eq!(report.checked, 2, "vars 0 and 2");
        assert!(report.is_clean());
        // Rotating offsets cover the complement.
        let report = FixpointAudit::sampled(2, 1).run(&spec, &status);
        assert_eq!(report.checked, 2, "vars 1 and 3");
    }

    #[test]
    fn violation_list_truncates_at_cap() {
        let spec = PathCc;
        let status = Status::from_values(vec![9, 9, 9, 9]);
        let audit = FixpointAudit {
            mode: AuditMode::Full,
            max_violations: 2,
        };
        let report = audit.run(&spec, &status);
        assert_eq!(report.violations.len(), 2);
        assert!(report.truncated);
        assert!(!report.is_clean());
    }
}
