//! Radix bucket queue for rank-ordered worklists.
//!
//! The sequential engine schedules with a `BinaryHeap`, paying `O(log n)`
//! per push and pop plus a comparison-heavy pop path. Ranks, however, are
//! a *performance hint*, not a correctness requirement — for C2
//! (monotone and contracting) step functions the fixpoint is unique under any
//! schedule (paper Lemma 2) — so a coarse delta-stepping style bucket
//! queue is enough: ranks map to one of [`NUM_BUCKETS`] buckets by a
//! configurable right shift, pushes append to the target bucket in O(1),
//! and pops scan a cursor over the bucket array. Entries within a bucket
//! come out FIFO, which keeps the schedule deterministic for a given push
//! sequence — the property the parallel engine's stamp replay relies on.
//!
//! Non-monotone rank sequences are legal (a CC label can drop below the
//! current cursor); the cursor simply moves backward on such pushes.
//! Ranks at or above `NUM_BUCKETS << shift` all land in the final
//! overflow bucket and are served FIFO among themselves.

/// Number of buckets; ranks beyond the addressable range share the last
/// (overflow) bucket.
pub const NUM_BUCKETS: usize = 1024;

/// Words in the occupancy bitmap (one bit per bucket).
const OCC_WORDS: usize = NUM_BUCKETS / 64;

/// A monotone-cursor bucket queue mapping `rank >> shift` to a bucket.
///
/// Popped prefixes of each bucket are tracked with a head index so a pop
/// is O(1) amortized; a bucket's storage is reclaimed the moment its last
/// entry is served. An occupancy bitmap (one bit per bucket) lets
/// [`min_bucket`](Self::min_bucket) jump to the next non-empty bucket
/// with a handful of `trailing_zeros` word scans instead of walking the
/// bucket array slot by slot — on sparse incremental worklists, where a
/// scope touches a few ranks scattered over the 1024-slot range, that
/// linear sweep used to dominate the pop path.
#[derive(Clone, Debug)]
pub struct BucketQueue {
    buckets: Vec<Vec<(u64, usize)>>,
    /// Index of the first unserved entry in each bucket.
    heads: Vec<usize>,
    /// Bit `b` is set iff bucket `b` has unserved entries.
    occ: [u64; OCC_WORDS],
    /// Rank subtracted (saturating) before binning, so the bucket range
    /// can be re-centered on the band a run actually occupies.
    base: u64,
    shift: u32,
    /// Lowest bucket that may be non-empty.
    cursor: usize,
    len: usize,
}

impl Default for BucketQueue {
    /// An exact-binning queue (`shift = 0`).
    fn default() -> Self {
        BucketQueue::new(0)
    }
}

impl BucketQueue {
    /// Creates an empty queue; ranks are binned as `rank >> shift`.
    ///
    /// A shift of 0 gives exact ordering for ranks `< NUM_BUCKETS`; larger
    /// shifts trade scheduling precision for range. Correctness never
    /// depends on the choice.
    pub fn new(shift: u32) -> Self {
        BucketQueue {
            buckets: vec![Vec::new(); NUM_BUCKETS],
            heads: vec![0; NUM_BUCKETS],
            occ: [0; OCC_WORDS],
            base: 0,
            shift,
            cursor: NUM_BUCKETS,
            len: 0,
        }
    }

    /// Re-centers the binning window: ranks are binned as
    /// `(rank - base) >> shift` (saturating below `base`). An incremental
    /// run's seed ranks sit in a narrow absolute band — SSSP distances
    /// after a small ΔG are all ≈ their converged values — and a fixed
    /// `rank >> shift` collapses that band into a handful of buckets,
    /// degrading the schedule toward FIFO and re-evaluating variables the
    /// heap would have served exactly once. Centering the 1024 buckets on
    /// the observed band restores near-exact ordering where it matters.
    /// Binning precision is a performance knob only; correctness never
    /// depends on it.
    pub fn reconfigure(&mut self, base: u64, shift: u32) {
        debug_assert!(
            self.is_empty(),
            "reconfiguring with queued entries would scramble their binning"
        );
        self.base = base;
        self.shift = shift;
    }

    /// The bucket a rank maps to.
    #[inline]
    pub fn bucket_of(&self, rank: u64) -> usize {
        ((rank.saturating_sub(self.base) >> self.shift) as usize).min(NUM_BUCKETS - 1)
    }

    /// Number of queued (unserved) entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `var` at `rank` in O(1).
    #[inline]
    pub fn push(&mut self, rank: u64, var: usize) {
        let b = self.bucket_of(rank);
        self.buckets[b].push((rank, var));
        self.occ[b / 64] |= 1u64 << (b % 64);
        self.len += 1;
        if b < self.cursor {
            self.cursor = b;
        }
    }

    /// Index of the lowest non-empty bucket, advancing the cursor to it.
    ///
    /// Scans the occupancy bitmap from the cursor's word, so skipping an
    /// arbitrary run of empty buckets costs at most [`OCC_WORDS`] word
    /// tests rather than one test per bucket.
    pub fn min_bucket(&mut self) -> Option<usize> {
        if self.len == 0 {
            self.cursor = NUM_BUCKETS;
            return None;
        }
        let mut w = self.cursor / 64;
        let mut word = self.occ[w] & (u64::MAX << (self.cursor % 64));
        loop {
            if word != 0 {
                let b = w * 64 + word.trailing_zeros() as usize;
                self.cursor = b;
                return Some(b);
            }
            w += 1;
            if w >= OCC_WORDS {
                debug_assert!(false, "len > 0 but occupancy bitmap is empty");
                self.cursor = NUM_BUCKETS;
                return None;
            }
            word = self.occ[w];
        }
    }

    /// Pops the next `(rank, var)` in bucket order (FIFO within a bucket).
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        self.pop_at_most(NUM_BUCKETS - 1)
    }

    /// Pops the next entry whose bucket is `<= max_bucket`, or `None` if
    /// every queued entry sits in a higher bucket. Used by the parallel
    /// engine to bound a round to the globally minimal bucket.
    pub fn pop_at_most(&mut self, max_bucket: usize) -> Option<(u64, usize)> {
        let b = self.min_bucket()?;
        if b > max_bucket {
            return None;
        }
        let e = self.buckets[b][self.heads[b]];
        self.heads[b] += 1;
        self.len -= 1;
        if self.heads[b] == self.buckets[b].len() {
            self.buckets[b].clear();
            self.heads[b] = 0;
            self.occ[b / 64] &= !(1u64 << (b % 64));
        }
        Some(e)
    }

    /// Drops all queued entries, keeping allocated bucket storage.
    pub fn clear(&mut self) {
        for b in 0..NUM_BUCKETS {
            self.buckets[b].clear();
            self.heads[b] = 0;
        }
        self.occ = [0; OCC_WORDS];
        self.cursor = NUM_BUCKETS;
        self.len = 0;
    }

    /// Heap bytes held by the bucket storage.
    pub fn space_bytes(&self) -> usize {
        use std::mem::size_of;
        self.buckets
            .iter()
            .map(|b| b.capacity() * size_of::<(u64, usize)>())
            .sum::<usize>()
            + self.buckets.capacity() * size_of::<Vec<(u64, usize)>>()
            + self.heads.capacity() * size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_bucket_order_fifo_within_bucket() {
        let mut q = BucketQueue::new(0);
        q.push(5, 50);
        q.push(2, 20);
        q.push(5, 51);
        q.push(0, 0);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(0, 0), (2, 20), (5, 50), (5, 51)]);
        assert!(q.is_empty());
    }

    #[test]
    fn cursor_moves_backward_on_lower_push() {
        let mut q = BucketQueue::new(0);
        q.push(9, 1);
        assert_eq!(q.pop(), Some((9, 1)));
        q.push(3, 2); // below the drained cursor position
        q.push(9, 3);
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((9, 3)));
    }

    #[test]
    fn shift_coarsens_binning() {
        let mut q = BucketQueue::new(4);
        // Ranks 0..16 share bucket 0 and come out FIFO.
        q.push(15, 1);
        q.push(0, 2);
        q.push(16, 3); // bucket 1
        assert_eq!(q.pop(), Some((15, 1)));
        assert_eq!(q.pop(), Some((0, 2)));
        assert_eq!(q.pop(), Some((16, 3)));
    }

    #[test]
    fn overflow_ranks_share_last_bucket() {
        let mut q = BucketQueue::new(0);
        q.push(u64::MAX - 1, 1);
        q.push(NUM_BUCKETS as u64 * 7, 2);
        q.push(3, 3);
        assert_eq!(q.pop(), Some((3, 3)));
        // Both overflow entries are in the last bucket, FIFO.
        assert_eq!(q.pop(), Some((u64::MAX - 1, 1)));
        assert_eq!(q.pop(), Some((NUM_BUCKETS as u64 * 7, 2)));
    }

    #[test]
    fn pop_at_most_respects_bound() {
        let mut q = BucketQueue::new(0);
        q.push(8, 1);
        q.push(2, 2);
        assert_eq!(q.pop_at_most(4), Some((2, 2)));
        assert_eq!(q.pop_at_most(4), None, "bucket 8 is out of bound");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_at_most(8), Some((8, 1)));
    }

    #[test]
    fn min_bucket_tracks_lowest_nonempty() {
        let mut q = BucketQueue::new(0);
        assert_eq!(q.min_bucket(), None);
        q.push(7, 1);
        assert_eq!(q.min_bucket(), Some(7));
        q.push(4, 2);
        assert_eq!(q.min_bucket(), Some(4));
        q.pop();
        assert_eq!(q.min_bucket(), Some(7));
    }

    #[test]
    fn reconfigure_recenters_binning() {
        let mut q = BucketQueue::new(0);
        q.reconfigure(1_000_000, 2);
        q.push(1_000_009, 1); // (9 >> 2) = bucket 2
        q.push(1_000_001, 2); // bucket 0
        q.push(999_000, 3); // below base saturates into bucket 0, FIFO
        assert_eq!(q.pop(), Some((1_000_001, 2)));
        assert_eq!(q.pop(), Some((999_000, 3)));
        assert_eq!(q.pop(), Some((1_000_009, 1)));
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut q = BucketQueue::new(0);
        for i in 0..100u64 {
            q.push(i % 10, i as usize);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(1, 42);
        assert_eq!(q.pop(), Some((1, 42)));
    }
}
