//! The fixpoint-algorithm specification trait.

/// Outcome of a single-input relaxation attempt
/// ([`FixpointSpec::relax`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relax<V> {
    /// The change cannot affect the dependent's value.
    Skip,
    /// The dependent's new value under the changed input.
    Set(V),
    /// Undecidable locally: a full re-evaluation is required.
    Eval,
}

/// A batch graph algorithm expressed in the paper's fixpoint model.
///
/// Status variables are identified by dense indices `0..num_vars()`; each
/// algorithm defines its own packing (SSSP/CC/DFS: one variable per node;
/// LCC: two per node; Sim: `|V| × |V_Q|` Boolean variables). Implementors
/// hold a reference to the graph (and query) they are specified over, so a
/// spec is cheap to construct and borrows the graph for its lifetime.
///
/// The trait encodes, in the paper's notation:
///
/// * `bottom(x)`  — the initial value `x⊥` of variable `x`,
/// * `eval(x, read)` — the update function `f_x(Y_x)`, where `read(y)`
///   fetches the current value of an input variable `y ∈ Y_x`. **`eval`
///   must not read `x` itself**; self-dependent update functions (like
///   CC's `min({x_v} ∪ Y)`) fold the self contribution in as a constant
///   (`min(v_id, …)`), which is equivalent at every fixpoint and keeps
///   the feasibility analysis of the scope function sound.
/// * `dependents(x)` — the reverse dependency: every `z` with `x ∈ Y_z`,
/// * `preceq(a, b)` — the partial order `⪯` under which the algorithm is
///   *contracting* (values only move downward: `new ⪯ old`) and
///   *monotonic* (condition C2 of the paper),
/// * `rank`/`push_rank` — worklist priorities steering the step function
///   toward the batch algorithm's native evaluation order (distance order
///   for Dijkstra, label order for CC); any order converges to the same
///   fixpoint by the Church–Rosser property (Lemma 2), so ranks are a
///   performance knob, not a correctness one.
pub trait FixpointSpec {
    /// Status-variable value domain. `Copy` keeps reads allocation-free;
    /// all five query classes fit (distances, labels, Booleans, intervals,
    /// counts).
    type Value: Copy + PartialEq + std::fmt::Debug;

    /// Total number of status variables `|Ψ_A|`.
    fn num_vars(&self) -> usize;

    /// Initial value `x⊥` of variable `x`.
    fn bottom(&self, x: usize) -> Self::Value;

    /// The update function `f_x(Y_x)`: computes the value of `x` from its
    /// input variables, fetched through `read`. Must be a pure function of
    /// the inputs (and the graph/query), and must not read `x` itself.
    fn eval<R: FnMut(usize) -> Self::Value>(&self, x: usize, read: &mut R) -> Self::Value;

    /// Pushes every variable `z` whose input set `Y_z` contains `x`.
    fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P);

    /// Partial order `⪯` on values: `preceq(a, b)` iff `a ⪯ b`. The final
    /// value satisfies `x* ⪯ x⊥`; a *contracting* run only moves values
    /// downward.
    fn preceq(&self, a: &Self::Value, b: &Self::Value) -> bool;

    /// Single-input change propagation: the candidate value for dependent
    /// `z` when input `trigger` changed to `tv` (the relaxation step of
    /// the paper's Fig. 1 Dijkstra, line 7). The engine uses this fast
    /// path instead of re-evaluating `f_z` over the whole input set when
    /// the spec can answer:
    ///
    /// * [`Relax::Set`] — `f_z` over the new inputs equals
    ///   `min(z_val, candidate)`-style and the candidate is it;
    /// * [`Relax::Skip`] — the change provably leaves `f_z(Y_z)` at
    ///   `z_val`;
    /// * [`Relax::Eval`] — cannot tell locally; schedule a full
    ///   re-evaluation (the default).
    ///
    /// Only `min`-combining algorithms (SSSP, CC) implement this; the
    /// engine remains correct with the default.
    fn relax(
        &self,
        _z: usize,
        _z_val: &Self::Value,
        _trigger: usize,
        _trigger_val: &Self::Value,
    ) -> Relax<Self::Value> {
        Relax::Eval
    }

    /// Whether the algorithm satisfies condition (C2): contracting and
    /// monotonic w.r.t. [`preceq`](Self::preceq). Defaults to `true`; the
    /// engine debug-asserts contraction on every applied change when set.
    /// LCC returns `false` — its counts move in both directions, which is
    /// why it is incrementalized via the Theorem 1 PE-variable strategy
    /// rather than the Fig. 4 bounded scope function.
    fn is_contracting(&self) -> bool {
        true
    }

    /// Worklist priority of `x` given its current value (smaller pops
    /// first). Defaults to rank-insensitive.
    fn rank(&self, _x: usize, _val: &Self::Value) -> u64 {
        0
    }

    /// Priority with which a dependent `z` is (re)enqueued after one of
    /// its inputs changed to `trigger_val`. Defaults to [`rank`](Self::rank)
    /// of the trigger; Dijkstra-style algorithms return the trigger's
    /// distance so that pops happen in near-final order.
    fn push_rank(
        &self,
        z: usize,
        z_val: &Self::Value,
        _trigger: usize,
        _trigger_val: &Self::Value,
    ) -> u64 {
        self.rank(z, z_val)
    }
}
