//! Schedule tracing for failure diagnosis ([`CaseTrace`]).
//!
//! When the differential fuzzing oracle (`incgraph-oracle`) reproduces a
//! divergence, the *values* alone rarely explain it — the interesting
//! question is what schedule the engines ran: how many variables each
//! fixpoint resumed from, how much work each run did, and whether the
//! sequential worklist or the sharded parallel engine produced it. This
//! module is the hook the engines report through: tracing is off by
//! default (one relaxed atomic load per fixpoint run), and when a
//! harness turns it on via [`CaseTrace::start`], every
//! [`Engine::run`](crate::engine::Engine::run) and
//! [`ParEngine::run`](crate::par::ParEngine::run) appends a
//! [`TraceEvent`] summarizing its schedule, which
//! [`CaseTrace::finish`] collects for embedding into a replayable case
//! file.
//!
//! The recorder is process-global (the engines are buried inside
//! algorithm states and threading a handle through every layer would
//! distort the APIs the paper mandates); keep at most one trace active
//! at a time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::engine::RunStats;

/// One fixpoint run as the engines saw it.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Which driver ran: `"seq"` ([`crate::engine::Engine`]) or `"par"`
    /// ([`crate::par::ParEngine`]).
    pub engine: &'static str,
    /// Worker shards (always 1 for the sequential engine).
    pub threads: usize,
    /// Variables seeded into the initial scope `H⁰`.
    pub scope: usize,
    /// Work counters of the run.
    pub stats: RunStats,
}

impl TraceEvent {
    /// Compact one-line rendering for case-file comments.
    pub fn summary(&self) -> String {
        format!(
            "{}[t={}] scope={} pops={} evals={} changes={} distinct={}{}",
            self.engine,
            self.threads,
            self.scope,
            self.stats.pops,
            self.stats.evals,
            self.stats.changes,
            self.stats.distinct_vars,
            if self.stats.aborted { " ABORTED" } else { "" }
        )
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Handle for collecting the engines' schedule summaries.
pub struct CaseTrace;

impl CaseTrace {
    /// Starts recording, discarding any events from a previous trace.
    pub fn start() {
        let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
        events.clear();
        ENABLED.store(true, Ordering::Release);
    }

    /// Stops recording and returns the events in arrival order.
    pub fn finish() -> Vec<TraceEvent> {
        ENABLED.store(false, Ordering::Release);
        let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *events)
    }

    /// Whether a trace is active (the engines' fast-path check).
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Appends an event if tracing is active. The engines call this once per
/// completed run, never per pop, so the mutex is off every hot path.
/// The observability registry taps the same seam: it wants exactly the
/// per-run schedule summary this hook already sees.
pub(crate) fn record(engine: &'static str, threads: usize, scope: usize, stats: &RunStats) {
    if incgraph_obs::enabled() {
        forward_obs(engine, threads, scope, stats);
    }
    if !CaseTrace::enabled() {
        return;
    }
    let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    events.push(TraceEvent {
        engine,
        threads,
        scope,
        stats: *stats,
    });
}

/// Forwards one completed run's counters to the observability layer.
/// Names are static per engine (`engine.seq.*` / `engine.par.*`) so
/// recording allocates nothing; the ambient class label set by the
/// guarded-update path attributes the run to its query class.
fn forward_obs(engine: &'static str, threads: usize, scope: usize, stats: &RunStats) {
    use incgraph_obs as obs;
    let par = engine == "par";
    let pick = |seq: &'static str, par_name: &'static str| if par { par_name } else { seq };
    obs::counter(pick("engine.seq.runs", "engine.par.runs"), 1);
    obs::counter(pick("engine.seq.pops", "engine.par.pops"), stats.pops);
    obs::counter(pick("engine.seq.evals", "engine.par.evals"), stats.evals);
    obs::counter(
        pick("engine.seq.changes", "engine.par.changes"),
        stats.changes,
    );
    obs::counter(pick("engine.seq.pushes", "engine.par.pushes"), stats.pushes);
    obs::counter(
        pick("engine.seq.stale_pops", "engine.par.stale_pops"),
        stats.stale_pops,
    );
    obs::counter(pick("engine.seq.reads", "engine.par.reads"), stats.reads);
    obs::counter(
        pick("engine.seq.inspected", "engine.par.inspected"),
        stats.distinct_vars,
    );
    if stats.aborted {
        obs::counter(pick("engine.seq.aborts", "engine.par.aborts"), 1);
    }
    if stats.poisoned {
        obs::counter(pick("engine.seq.poisoned", "engine.par.poisoned"), 1);
    }
    obs::gauge(
        pick("engine.seq.threads", "engine.par.threads"),
        threads as u64,
    );
    obs::observe(pick("engine.seq.scope", "engine.par.scope"), scope as u64);
    obs::observe(
        pick(
            "engine.seq.inspected_per_run",
            "engine.par.inspected_per_run",
        ),
        stats.distinct_vars,
    );
    obs::observe(
        pick("engine.seq.changed_per_run", "engine.par.changed_per_run"),
        stats.changes,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fixpoint;
    use crate::spec::FixpointSpec;
    use crate::status::Status;

    /// Trace tests share the process-global recorder; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct Chain;
    impl FixpointSpec for Chain {
        type Value = u32;
        fn num_vars(&self) -> usize {
            4
        }
        fn bottom(&self, x: usize) -> u32 {
            x as u32
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            if x > 0 {
                (x as u32).min(read(x - 1))
            } else {
                0
            }
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            if x + 1 < 4 {
                push(x + 1);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
        fn rank(&self, _x: usize, v: &u32) -> u64 {
            *v as u64
        }
        fn push_rank(&self, _z: usize, _zv: &u32, _t: usize, tv: &u32) -> u64 {
            *tv as u64
        }
    }

    #[test]
    fn sequential_runs_are_recorded() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        CaseTrace::start();
        let spec = Chain;
        let mut status = Status::init(&spec, false);
        run_fixpoint(&spec, &mut status, 0..4);
        let events = CaseTrace::finish();
        let ours: Vec<_> = events
            .iter()
            .filter(|e| e.engine == "seq" && e.scope == 4)
            .collect();
        assert!(!ours.is_empty(), "run not traced: {events:?}");
        assert!(ours[0].stats.pops >= 4);
        assert!(ours[0].summary().contains("seq[t=1] scope=4"));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Drain anything a previous trace left behind.
        CaseTrace::start();
        let _ = CaseTrace::finish();
        let spec = Chain;
        let mut status = Status::init(&spec, false);
        run_fixpoint(&spec, &mut status, 0..4);
        CaseTrace::start();
        let events = CaseTrace::finish();
        assert!(events.is_empty(), "untracked run leaked: {events:?}");
    }
}
