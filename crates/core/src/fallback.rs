//! Graceful degradation: fall back to batch recomputation when the
//! incremental run stops paying for itself.
//!
//! The paper's speedups materialize only when the affected area `AFF` is
//! small relative to `|Ψ|`; Layph (PAPERS.md) makes the same observation
//! for asynchronous graph systems. When a batch update rewires a large
//! share of the graph — a flash crowd, a partition heal — the bounded
//! scope `H⁰` approaches `|Ψ|` and the incremental run does strictly more
//! work than a from-scratch batch run (scope bookkeeping on top of full
//! re-evaluation). A production pipeline must detect that regime and
//! degrade: abandon the incremental path, recompute batch, and *record*
//! the decision so experiment drivers can report fallback rates.
//!
//! [`FallbackPolicy`] encodes three triggers:
//! 1. **Pre-run**: the initial scope `|H⁰|` already exceeds
//!    `max_scope_size` or `max_aff_fraction · |Ψ|`.
//! 2. **Mid-run**: the engine's distinct-variable work budget (derived
//!    from the same limits) is blown and the run aborts.
//! 3. **Post-run**: an opt-in [`FixpointAudit`](crate::audit::FixpointAudit)
//!    finds violated statements and `on_audit_failure` says to recompute.

use crate::metrics::BoundednessReport;

/// What to do when a post-run audit reports violations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AuditAction {
    /// Recompute from scratch, discarding the (provably wrong) state.
    #[default]
    Recompute,
    /// Record the failure in the report but keep the incremental result
    /// (for measurement/debugging runs that want to observe corruption).
    Ignore,
}

/// Why an incremental run was abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// `|H⁰|` exceeded the policy's limits before the step function ran.
    ScopeExceeded,
    /// The engine's mid-run work budget was exhausted
    /// (`RunStats::aborted`).
    WorkExceeded,
    /// A post-run fixpoint audit found violated statements.
    AuditFailed,
}

/// A recorded degradation decision: the trigger plus the observed value
/// and the limit it crossed (violation count vs. 0 for audits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FallbackDecision {
    /// What triggered the fallback.
    pub reason: FallbackReason,
    /// Observed magnitude: scope size, distinct vars, or violation count.
    pub observed: u64,
    /// The limit that was crossed.
    pub limit: u64,
}

/// Degradation thresholds for one incremental pipeline.
///
/// The default policy never falls back (fraction 1.0, unbounded scope),
/// matching the pre-hardening behaviour; services opt in to limits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FallbackPolicy {
    /// Abandon when `|H⁰|` (or mid-run distinct vars) exceeds this
    /// fraction of `|Ψ|`, in `[0, 1]`. `1.0` disables the check.
    pub max_aff_fraction: f64,
    /// Absolute cap on `|H⁰|` / distinct vars; `usize::MAX` disables.
    pub max_scope_size: usize,
    /// Reaction to a failed post-run audit.
    pub on_audit_failure: AuditAction,
}

impl Default for FallbackPolicy {
    fn default() -> Self {
        FallbackPolicy {
            max_aff_fraction: 1.0,
            max_scope_size: usize::MAX,
            on_audit_failure: AuditAction::Recompute,
        }
    }
}

impl FallbackPolicy {
    /// A policy with the given AFF-fraction cap and defaults elsewhere.
    pub fn with_max_aff_fraction(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} outside [0, 1]"
        );
        FallbackPolicy {
            max_aff_fraction: fraction,
            ..Default::default()
        }
    }

    /// The distinct-variable limit this policy implies for a universe of
    /// `total_vars`, or `None` when the policy is unbounded. This is both
    /// the pre-run `|H⁰|` check and the engine's mid-run work budget.
    pub fn var_limit(&self, total_vars: usize) -> Option<u64> {
        let frac_limit = if self.max_aff_fraction < 1.0 {
            Some((self.max_aff_fraction * total_vars as f64).floor() as u64)
        } else {
            None
        };
        let size_limit = if self.max_scope_size != usize::MAX {
            Some(self.max_scope_size as u64)
        } else {
            None
        };
        match (frac_limit, size_limit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pre-run check: should a run with initial scope `|H⁰| = scope_size`
    /// over `total_vars` variables be abandoned outright?
    pub fn check_scope(&self, scope_size: usize, total_vars: usize) -> Option<FallbackDecision> {
        let limit = self.var_limit(total_vars)?;
        if scope_size as u64 > limit {
            Some(FallbackDecision {
                reason: FallbackReason::ScopeExceeded,
                observed: scope_size as u64,
                limit,
            })
        } else {
            None
        }
    }

    /// Mid-run check: decision for an engine run that blew its budget.
    pub fn work_exceeded(&self, distinct_vars: u64, total_vars: usize) -> FallbackDecision {
        FallbackDecision {
            reason: FallbackReason::WorkExceeded,
            observed: distinct_vars,
            limit: self.var_limit(total_vars).unwrap_or(u64::MAX),
        }
    }

    /// Post-run check: decision for a failed audit, if the policy says a
    /// failed audit forces a recompute.
    pub fn check_audit(&self, violations: usize) -> Option<FallbackDecision> {
        if violations > 0 && self.on_audit_failure == AuditAction::Recompute {
            Some(FallbackDecision {
                reason: FallbackReason::AuditFailed,
                observed: violations as u64,
                limit: 0,
            })
        } else {
            None
        }
    }
}

/// Convenience: stamp a fallback decision into a report.
pub fn record_fallback(report: &mut BoundednessReport, decision: FallbackDecision) {
    report.fallback = Some(decision);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_triggers() {
        let p = FallbackPolicy::default();
        assert_eq!(p.var_limit(1000), None);
        assert!(p.check_scope(1000, 1000).is_none());
        // Audit failures still recompute by default.
        assert!(p.check_audit(3).is_some());
        assert!(p.check_audit(0).is_none());
    }

    #[test]
    fn fraction_limit_trips_scope_check() {
        let p = FallbackPolicy::with_max_aff_fraction(0.1);
        assert_eq!(p.var_limit(1000), Some(100));
        assert!(p.check_scope(100, 1000).is_none(), "at the limit is fine");
        let d = p.check_scope(101, 1000).expect("over the limit");
        assert_eq!(d.reason, FallbackReason::ScopeExceeded);
        assert_eq!(d.observed, 101);
        assert_eq!(d.limit, 100);
    }

    #[test]
    fn absolute_cap_composes_with_fraction() {
        let p = FallbackPolicy {
            max_aff_fraction: 0.5,
            max_scope_size: 64,
            on_audit_failure: AuditAction::Recompute,
        };
        // min(0.5 * 1000, 64) = 64.
        assert_eq!(p.var_limit(1000), Some(64));
        // min(0.5 * 100, 64) = 50.
        assert_eq!(p.var_limit(100), Some(50));
    }

    #[test]
    fn audit_action_ignore_suppresses_recompute() {
        let p = FallbackPolicy {
            on_audit_failure: AuditAction::Ignore,
            ..Default::default()
        };
        assert!(p.check_audit(5).is_none());
    }

    #[test]
    fn decisions_are_recordable() {
        let mut report = BoundednessReport::default();
        assert!(report.fallback.is_none());
        let p = FallbackPolicy::with_max_aff_fraction(0.0);
        let d = p.check_scope(1, 10).unwrap();
        record_fallback(&mut report, d);
        assert_eq!(
            report.fallback.unwrap().reason,
            FallbackReason::ScopeExceeded
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_is_rejected() {
        let _ = FallbackPolicy::with_max_aff_fraction(1.5);
    }
}
