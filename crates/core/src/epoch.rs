//! Epoch-versioned membership bitmaps.
//!
//! Scope floods and frontier traversals need a "have I visited x yet?"
//! set that is (a) dense — hashing every probe costs more than the probe
//! itself — and (b) free to clear, because an incremental run that
//! inspects 40 variables must not pay `O(|Ψ|)` to reset a bitmap of a
//! million slots. [`VisitEpoch`] versions each slot with the epoch of its
//! last insertion: clearing is one counter bump, membership is one `u32`
//! compare, and the backing array is allocated once and reused across
//! runs — the same trick the engine's scratch tables use, packaged so the
//! scope functions and the parallel engine can share it.

/// A reusable membership set over `0..len` with `O(1)` clearing.
#[derive(Clone, Debug)]
pub struct VisitEpoch {
    /// Epoch in which each slot was last inserted; `0` = never.
    mark: Vec<u32>,
    /// Current epoch; slots are members iff `mark[x] == epoch`.
    epoch: u32,
    /// Number of members in the current epoch.
    count: usize,
}

impl VisitEpoch {
    /// An empty set over `0..len`.
    pub fn new(len: usize) -> Self {
        VisitEpoch {
            mark: vec![0; len],
            epoch: 1,
            count: 0,
        }
    }

    /// Capacity (the universe size, not the member count).
    pub fn len(&self) -> usize {
        self.mark.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.mark.is_empty()
    }

    /// Number of members inserted since the last [`clear`](Self::clear).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Inserts `x`; returns `true` if it was not yet a member.
    #[inline]
    pub fn insert(&mut self, x: usize) -> bool {
        if self.mark[x] == self.epoch {
            false
        } else {
            self.mark[x] = self.epoch;
            self.count += 1;
            true
        }
    }

    /// Whether `x` is a member.
    #[inline]
    pub fn contains(&self, x: usize) -> bool {
        self.mark[x] == self.epoch
    }

    /// Empties the set in `O(1)` by advancing the epoch. On the (once per
    /// `u32::MAX` clears) wrap, the backing array is hard-reset.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.count = 0;
    }

    /// Test-only: jumps the current epoch so wraparound behaviour can be
    /// exercised without `u32::MAX` real clears. Membership is recomputed
    /// against the new epoch, so the set's invariants stay intact.
    #[doc(hidden)]
    pub fn jump_to_epoch(&mut self, epoch: u32) {
        assert!(epoch > 0, "epoch 0 is reserved for never-inserted slots");
        self.epoch = epoch;
        self.count = self.mark.iter().filter(|&&m| m == epoch).count();
    }

    /// Grows the universe to `len` slots (no-op if already that large).
    /// Fresh slots are non-members.
    pub fn grow_to(&mut self, len: usize) {
        if len > self.mark.len() {
            self.mark.resize(len, 0);
        }
    }

    /// Heap bytes held by the set.
    pub fn space_bytes(&self) -> usize {
        self.mark.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut s = VisitEpoch::new(8);
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert is a no-op");
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn clear_is_constant_time_epoch_bump() {
        let mut s = VisitEpoch::new(4);
        s.insert(0);
        s.insert(1);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(0) && !s.contains(1));
        assert!(s.insert(0), "slots are reusable after clear");
    }

    #[test]
    fn epoch_wrap_hard_resets() {
        let mut s = VisitEpoch::new(2);
        s.epoch = u32::MAX - 1;
        s.insert(0);
        s.clear(); // epoch = MAX
        s.insert(1);
        s.clear(); // wrap: hard reset
        assert!(!s.contains(0) && !s.contains(1));
        assert!(s.insert(0));
    }

    #[test]
    fn grow_preserves_members() {
        let mut s = VisitEpoch::new(2);
        s.insert(1);
        s.grow_to(10);
        assert!(s.contains(1));
        assert!(!s.contains(9));
        assert!(s.insert(9));
    }
}
