//! Status storage `D_A`: variable values plus optional timestamps.

use crate::spec::FixpointSpec;

/// The status `D_A = (S_A, R_A)` of a fixpoint computation: the current
/// value of every status variable, plus — when enabled — a **timestamp**
/// per variable recording the logical time of its last change.
///
/// Timestamps are the one auxiliary structure the paper's *weakly
/// deducible* incrementalization is allowed to add (§4): they are written
/// as a byproduct of the batch run and consulted by the contributor
/// oracles of CC and Sim to derive the order `<_C`. Deducible algorithms
/// (SSSP, DFS, LCC) run with timestamps disabled and pay nothing.
#[derive(Clone, Debug)]
pub struct Status<V> {
    vals: Vec<V>,
    /// Last-change logical time per variable; empty when not tracking.
    stamps: Vec<u64>,
    clock: u64,
}

impl<V: Copy + PartialEq> Status<V> {
    /// Initializes every variable to its `⊥` value.
    pub fn init<S: FixpointSpec<Value = V>>(spec: &S, track_stamps: bool) -> Self {
        let n = spec.num_vars();
        let vals = (0..n).map(|x| spec.bottom(x)).collect();
        Status {
            vals,
            stamps: if track_stamps { vec![0; n] } else { Vec::new() },
            clock: 0,
        }
    }

    /// Builds a status directly from values (no timestamps).
    pub fn from_values(vals: Vec<V>) -> Self {
        Status {
            vals,
            stamps: Vec::new(),
            clock: 0,
        }
    }

    /// Rebuilds a status from its serialized parts: values, timestamps
    /// (empty = not tracked) and the logical clock. The checkpoint/restore
    /// path needs this because weakly deducible classes derive the
    /// contributor order `<_C` from the stamps — a restore that dropped
    /// them would silently degrade every later incremental run.
    ///
    /// # Panics
    /// Panics if `stamps` is non-empty with a length other than
    /// `vals.len()`, or if any stamp exceeds `clock`.
    pub fn from_parts(vals: Vec<V>, stamps: Vec<u64>, clock: u64) -> Self {
        assert!(
            stamps.is_empty() || stamps.len() == vals.len(),
            "stamp vector length {} does not match {} values",
            stamps.len(),
            vals.len()
        );
        assert!(
            stamps.iter().all(|&s| s <= clock),
            "stamp beyond the logical clock {clock}"
        );
        Status {
            vals,
            stamps,
            clock,
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether there are no variables.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Current value of variable `x`.
    #[inline]
    pub fn get(&self, x: usize) -> V {
        self.vals[x]
    }

    /// All values, in variable order.
    pub fn values(&self) -> &[V] {
        &self.vals
    }

    /// Sets `x` to `v`, advancing the logical clock and stamping `x` if
    /// timestamps are tracked.
    #[inline]
    pub fn set(&mut self, x: usize, v: V) {
        self.vals[x] = v;
        self.clock += 1;
        if !self.stamps.is_empty() {
            self.stamps[x] = self.clock;
        }
    }

    /// Sets `x` without advancing the clock or the stamp. The scope
    /// function uses this when *raising* values back toward `⊥`: stamps
    /// must keep describing the order of the (conceptual) batch run.
    #[inline]
    pub fn set_unstamped(&mut self, x: usize, v: V) {
        self.vals[x] = v;
    }

    /// Extends the status to `n` variables, initializing fresh ones with
    /// `bottom(i)` and stamp 0 (fresh variables sit at `⊥`, which is
    /// always feasible). Used for vertex insertions (§4); a no-op when the
    /// status is already at least that large.
    pub fn extend_to(&mut self, n: usize, mut bottom: impl FnMut(usize) -> V) {
        let old = self.vals.len();
        if n <= old {
            return;
        }
        self.vals.extend((old..n).map(&mut bottom));
        if !self.stamps.is_empty() {
            self.stamps.resize(n, 0);
        }
    }

    /// Whether timestamps are tracked.
    pub fn tracks_stamps(&self) -> bool {
        !self.stamps.is_empty()
    }

    /// Timestamp of the last change to `x` (0 if never changed).
    ///
    /// # Panics
    /// Panics if timestamps are not tracked.
    #[inline]
    pub fn stamp(&self, x: usize) -> u64 {
        self.stamps[x]
    }

    /// All timestamps, in variable order (empty when not tracked). The
    /// serialization counterpart of [`from_parts`](Self::from_parts).
    pub fn stamps(&self) -> &[u64] {
        &self.stamps
    }

    /// Current logical clock (total number of stamped changes).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Heap bytes held; timestamps show up here, which is how the space
    /// experiment (Fig. 8) sees the deducible/weakly-deducible difference.
    pub fn space_bytes(&self) -> usize {
        self.vals.capacity() * std::mem::size_of::<V>()
            + self.stamps.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FixpointSpec;

    /// Minimal spec: three variables, bottom = 10, no deps.
    struct Toy;
    impl FixpointSpec for Toy {
        type Value = u32;
        fn num_vars(&self) -> usize {
            3
        }
        fn bottom(&self, _x: usize) -> u32 {
            10
        }
        fn eval<R: FnMut(usize) -> u32>(&self, _x: usize, _read: &mut R) -> u32 {
            10
        }
        fn dependents<P: FnMut(usize)>(&self, _x: usize, _push: &mut P) {}
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
    }

    #[test]
    fn init_fills_bottoms() {
        let s = Status::init(&Toy, false);
        assert_eq!(s.values(), &[10, 10, 10]);
        assert!(!s.tracks_stamps());
    }

    #[test]
    fn stamps_record_change_order() {
        let mut s = Status::init(&Toy, true);
        s.set(2, 5);
        s.set(0, 7);
        assert_eq!(s.stamp(1), 0);
        assert!(s.stamp(2) < s.stamp(0), "2 changed before 0");
        assert_eq!(s.clock(), 2);
    }

    #[test]
    fn unstamped_set_preserves_stamps() {
        let mut s = Status::init(&Toy, true);
        s.set(1, 4);
        let st = s.stamp(1);
        s.set_unstamped(1, 9);
        assert_eq!(s.get(1), 9);
        assert_eq!(s.stamp(1), st);
        assert_eq!(s.clock(), 1);
    }

    #[test]
    fn space_accounts_for_stamps() {
        let with = Status::init(&Toy, true).space_bytes();
        let without = Status::init(&Toy, false).space_bytes();
        assert!(with > without);
    }
}
