//! Helpers for checking the paper's condition (C2): that an algorithm is
//! *contracting* and *monotonic* w.r.t. the partial order `⪯` its spec
//! declares. The engine asserts contraction on every applied change in
//! debug builds; these helpers let tests (including property tests)
//! additionally probe monotonicity of the update functions.

use crate::spec::FixpointSpec;
use crate::status::Status;

/// Pointwise `a ⪯ b` over two statuses of the same spec.
pub fn status_preceq<S: FixpointSpec>(
    spec: &S,
    a: &Status<S::Value>,
    b: &Status<S::Value>,
) -> bool {
    debug_assert_eq!(a.len(), b.len());
    (0..a.len()).all(|x| spec.preceq(&a.get(x), &b.get(x)))
}

/// Checks monotonicity of `f_x` at one variable: given two statuses with
/// `lo ⪯ hi` pointwise, verifies `f_x(lo) ⪯ f_x(hi)`.
///
/// Returns `None` if the precondition `lo ⪯ hi` does not hold (the sample
/// is uninformative), otherwise `Some(monotone?)`.
pub fn check_monotone_at<S: FixpointSpec>(
    spec: &S,
    x: usize,
    lo: &Status<S::Value>,
    hi: &Status<S::Value>,
) -> Option<bool> {
    if !status_preceq(spec, lo, hi) {
        return None;
    }
    let flo = spec.eval(x, &mut |y| lo.get(y));
    let fhi = spec.eval(x, &mut |y| hi.get(y));
    Some(spec.preceq(&flo, &fhi))
}

/// Checks feasibility of a status w.r.t. known final and initial statuses:
/// `final ⪯ status ⪯ ⊥` pointwise (the paper's definition in §4).
pub fn is_feasible<S: FixpointSpec>(
    spec: &S,
    status: &Status<S::Value>,
    final_status: &Status<S::Value>,
) -> bool {
    (0..status.len()).all(|x| {
        spec.preceq(&final_status.get(x), &status.get(x))
            && spec.preceq(&status.get(x), &spec.bottom(x))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 = const 5; x1 = min(x0, 7); over u32 with ⪯ = ≤.
    struct MinSpec;
    impl FixpointSpec for MinSpec {
        type Value = u32;
        fn num_vars(&self) -> usize {
            2
        }
        fn bottom(&self, _x: usize) -> u32 {
            10
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            match x {
                0 => 5,
                _ => read(0).min(7),
            }
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            if x == 0 {
                push(1);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
    }

    #[test]
    fn monotone_check_accepts_min() {
        let spec = MinSpec;
        let lo = Status::from_values(vec![3, 3]);
        let hi = Status::from_values(vec![8, 9]);
        assert_eq!(check_monotone_at(&spec, 1, &lo, &hi), Some(true));
    }

    #[test]
    fn monotone_check_rejects_unordered_samples() {
        let spec = MinSpec;
        let a = Status::from_values(vec![3, 9]);
        let b = Status::from_values(vec![8, 2]);
        assert_eq!(check_monotone_at(&spec, 1, &a, &b), None);
    }

    #[test]
    fn feasibility_brackets_final_and_bottom() {
        let spec = MinSpec;
        let fin = Status::from_values(vec![5, 5]);
        assert!(is_feasible(&spec, &Status::from_values(vec![7, 5]), &fin));
        assert!(!is_feasible(&spec, &Status::from_values(vec![4, 5]), &fin));
        assert!(!is_feasible(&spec, &Status::from_values(vec![11, 5]), &fin));
    }
}
