//! Round-synchronized parallel fixpoint engine.
//!
//! [`ParEngine`] runs the same step function as [`crate::engine::Engine`]
//! over a frontier **sharded by owner-computes**: variable `x` belongs to
//! thread `x % nthreads`, and only its owner ever writes it. Threads
//! process their shard's worklist in synchronized *rounds*, each bounded
//! to the globally minimal rank bucket of a [`BucketQueue`]; values
//! changed during a round become visible to other shards only at the
//! round barrier, and cross-shard activations travel through per-pair
//! mailboxes drained in a fixed order. This is safe for exactly the
//! algorithms the paper proves C2 for: contracting + monotonic update
//! functions reach a *unique* fixpoint under any schedule (Lemma 2,
//! Church–Rosser), so splitting the worklist changes the schedule but
//! never the answer. DFS — the paper's order-dependent, non-monotonic
//! case — must stay on the sequential engine.
//!
//! # Determinism
//!
//! Every source of scheduling order is fixed: bucket queues are FIFO
//! within a bucket, the round's bucket bound is a global minimum, and
//! mailboxes are drained sender-by-sender. Given the same spec, status
//! and scope, a run produces the same pop sequence per thread regardless
//! of barrier timing — so parallel fixpoints are reproducible, which the
//! determinism property test pins across 1/2/4 threads.
//!
//! # Timestamps
//!
//! Weakly deducible classes (CC, Sim, Reach) need the status stamps to be
//! a linearization of the contributor order `<_C`. The engine therefore
//! records, for every changed variable, the `(round, thread, seq)` of its
//! *last* change and replays the changes into [`Status`] in that order
//! after the workers join. The key invariant making this sound: a value
//! computed in round `r` only ever reads own-shard values (same thread,
//! smaller seq) or values published at a barrier before `r` (smaller
//! round) — never a same-round foreign write — so sorting by
//! `(round, thread, seq)` stamps every change after all inputs that
//! justify it, exactly what the contributor oracles assume of a
//! sequential run.

use crate::bucket::{BucketQueue, NUM_BUCKETS};
use crate::engine::RunStats;
use crate::spec::{FixpointSpec, Relax};
use crate::status::Status;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Barrier, Mutex};

/// Largest usable rank; `u64::MAX` is the "not enqueued" sentinel.
const RANK_CAP: u64 = u64::MAX - 1;

/// Minimum rank-window width for the per-run bucket binning (see the
/// seeding in [`ParEngine::run`]): 4× the bucket count, i.e. bins are
/// never finer than 4 ranks, and a degenerate seed band (all seeds at
/// one rank) still leaves headroom for ranks produced during the run.
const MIN_BAND: u64 = 4 * NUM_BUCKETS as u64 - 1;

const PEND_NONE: u8 = 0;
const PEND_PROP: u8 = 1;
const PEND_EVAL: u8 = 2;

/// A status value that fits in a `u64`, so shards can share it through
/// an atomic word. All five parallel-eligible classes qualify: distances
/// (`u64`), component labels (`u32`), reachability/simulation Booleans
/// (`bool`) and triangle counts (`u64`).
pub trait PackedValue: Copy + PartialEq + std::fmt::Debug + Send + Sync {
    /// Encodes the value into a word.
    fn pack(self) -> u64;
    /// Decodes a word produced by [`pack`](Self::pack).
    fn unpack(bits: u64) -> Self;
}

impl PackedValue for u64 {
    fn pack(self) -> u64 {
        self
    }
    fn unpack(bits: u64) -> Self {
        bits
    }
}

impl PackedValue for u32 {
    fn pack(self) -> u64 {
        self as u64
    }
    fn unpack(bits: u64) -> Self {
        bits as u32
    }
}

impl PackedValue for bool {
    fn pack(self) -> u64 {
        self as u64
    }
    fn unpack(bits: u64) -> Self {
        bits != 0
    }
}

/// A cross-shard activation: dependent variable, trigger variable, and
/// the trigger's packed value at publication time (used for the push
/// rank on the receiving side).
type Msg = (usize, usize, u64);

/// Per-thread scratch state; all arrays are indexed by the *local* index
/// `x / nthreads` of the owned variable `x`.
#[derive(Debug, Default)]
struct Worker {
    queue: BucketQueue,
    /// Rank of the live queue entry, `u64::MAX` = none; valid when
    /// `mark == epoch`.
    best: Vec<u64>,
    /// `PEND_*` bits of the live entry; valid when `mark == epoch`.
    pend: Vec<u8>,
    /// Epoch in which `best`/`pend`/`seen` were last written.
    mark: Vec<u32>,
    /// Whether the variable was inspected this run.
    seen: Vec<bool>,
    /// Round and per-thread sequence number of the variable's last
    /// change; meaningful only for members of `dirty`.
    last_round: Vec<u32>,
    last_seq: Vec<u32>,
    /// Membership flags for `dirty` / `round_dirty` (reset by draining).
    in_dirty: Vec<bool>,
    in_round: Vec<bool>,
    /// Variables changed at least once this run (global ids).
    dirty: Vec<usize>,
    /// Variables changed in the current round, to publish at the barrier.
    round_dirty: Vec<usize>,
    dep_buf: Vec<usize>,
    /// Per-run change sequence counter (the `seq` of the stamp replay).
    seq: u32,
    stats: RunStats,
}

/// Shared per-run context handed to every worker.
struct Shared<'a> {
    nthreads: usize,
    epoch: u32,
    budget: Option<u64>,
    /// Working value bits per variable, written only by the owner; valid
    /// when `cur_epoch == epoch`, else the base `Status` value stands.
    cur: &'a [AtomicU64],
    cur_epoch: &'a [AtomicU32],
    /// Value bits visible to *other* shards: copied from `cur` at the
    /// round barrier; valid when `pub_epoch == epoch`.
    published: &'a [AtomicU64],
    pub_epoch: &'a [AtomicU32],
    /// Double-buffered global minimum bucket of the next round
    /// (`u64::MAX` = no work anywhere, terminate).
    cells: &'a [AtomicU64; 2],
    barrier: &'a Barrier,
    abort: &'a AtomicBool,
    /// Set when a shard body panicked. Poison implies abort (the run must
    /// stop), but not vice versa: a budget abort leaves the partial run's
    /// values intact, a poisoned run is discarded wholesale.
    poisoned: &'a AtomicBool,
    /// Test-only injection: panic when processing this variable.
    panic_var: Option<usize>,
    /// Run-wide distinct-variable count, for the work budget.
    distinct: &'a AtomicU64,
    /// `mailboxes[dest][sender]`: cross-shard activations, drained by
    /// `dest` in sender order for determinism.
    mailboxes: &'a [Vec<Mutex<Vec<Msg>>>],
}

/// The parallel step function: a reusable, sharded fixpoint driver.
///
/// Construction is `O(|Ψ_A|)`; like the sequential [`Engine`]
/// (`crate::engine::Engine`), all scratch state is epoch-versioned so a
/// run touches memory proportional to what it inspects. The engine
/// composes with the PR-1 robustness layer unchanged: the work budget
/// aborts runs the same way (`RunStats::aborted`), and `FixpointAudit`
/// checks the written-back status exactly as for sequential runs.
#[derive(Debug)]
pub struct ParEngine {
    nthreads: usize,
    num_vars: usize,
    rank_shift: u32,
    work_budget: Option<u64>,
    /// Test-only injection: panic when a worker processes this variable.
    panic_var: Option<usize>,
    epoch: u32,
    cur: Vec<AtomicU64>,
    cur_epoch: Vec<AtomicU32>,
    published: Vec<AtomicU64>,
    pub_epoch: Vec<AtomicU32>,
    workers: Vec<Worker>,
    /// Reusable `(var, rank)` staging for the seed scope, so each run can
    /// size and re-center the bucket binning from the observed rank band
    /// before any push, without a steady-state allocation.
    seed_buf: Vec<(usize, u64)>,
    /// Variables whose value changed during the last run (the engine's
    /// changed-set; see [`Engine::changed_vars`](crate::Engine::changed_vars)).
    /// On the sharded path this is the stamp-replay order; a poisoned run
    /// leaves it empty because nothing was written back.
    changed: Vec<usize>,
}

impl Clone for ParEngine {
    /// Clones the configuration, not the (per-run, epoch-invalidated)
    /// scratch contents — a fresh engine is observationally identical.
    fn clone(&self) -> Self {
        let mut e = ParEngine::with_rank_shift(self.num_vars, self.nthreads, self.rank_shift);
        e.work_budget = self.work_budget;
        e
    }
}

impl ParEngine {
    /// Creates an engine for `num_vars` variables sharded over `nthreads`
    /// worker threads (clamped to at least 1). The bucket-queue shift
    /// defaults to spreading ranks up to ~`num_vars` across the bucket
    /// range, the right shape for value-ranked specs like CC.
    pub fn new(num_vars: usize, nthreads: usize) -> Self {
        let bits = u64::BITS - (num_vars as u64).leading_zeros();
        Self::with_rank_shift(num_vars, nthreads, bits.saturating_sub(10))
    }

    /// Creates an engine with an explicit bucket shift (ranks are binned
    /// as `rank >> shift`; precision is a performance knob only).
    pub fn with_rank_shift(num_vars: usize, nthreads: usize, rank_shift: u32) -> Self {
        let nthreads = nthreads.max(1);
        let local = num_vars.div_ceil(nthreads);
        let workers = (0..nthreads)
            .map(|_| Worker {
                queue: BucketQueue::new(rank_shift),
                best: vec![u64::MAX; local],
                pend: vec![PEND_NONE; local],
                mark: vec![0; local],
                seen: vec![false; local],
                last_round: vec![0; local],
                last_seq: vec![0; local],
                in_dirty: vec![false; local],
                in_round: vec![false; local],
                ..Default::default()
            })
            .collect();
        ParEngine {
            nthreads,
            num_vars,
            rank_shift,
            work_budget: None,
            panic_var: None,
            epoch: 0,
            cur: (0..num_vars).map(|_| AtomicU64::new(0)).collect(),
            cur_epoch: (0..num_vars).map(|_| AtomicU32::new(0)).collect(),
            published: (0..num_vars).map(|_| AtomicU64::new(0)).collect(),
            pub_epoch: (0..num_vars).map(|_| AtomicU32::new(0)).collect(),
            workers,
            seed_buf: Vec::new(),
            changed: Vec::new(),
        }
    }

    /// Variables whose value changed during the last [`run`](Self::run),
    /// in write-back order (duplicates possible on the single-shard
    /// path). Cleared at the start of every run; empty after a poisoned
    /// run (which writes nothing back).
    pub fn changed_vars(&self) -> &[usize] {
        &self.changed
    }

    /// Number of variables this engine is sized for.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Sets (or clears) the distinct-variable work budget, with the same
    /// abort contract as the sequential engine: a blown budget stops the
    /// run mid-fixpoint with `RunStats::aborted` set.
    pub fn set_work_budget(&mut self, budget: Option<u64>) {
        self.work_budget = budget;
    }

    /// The configured work budget, if any.
    pub fn work_budget(&self) -> Option<u64> {
        self.work_budget
    }

    /// Makes the next multi-shard runs panic when a worker processes
    /// `var` — the fault injector behind the panic-isolation tests.
    /// Only honoured on the sharded path (`nthreads > 1`); the
    /// single-shard fast path is the sequential engine in disguise and
    /// keeps sequential panic semantics.
    #[doc(hidden)]
    pub fn inject_panic_on(&mut self, var: Option<usize>) {
        self.panic_var = var;
    }

    /// Heap bytes held by the engine's scratch structures.
    pub fn space_bytes(&self) -> usize {
        let per_var = 2 * std::mem::size_of::<AtomicU64>() + 2 * std::mem::size_of::<AtomicU32>();
        let workers: usize = self
            .workers
            .iter()
            .map(|w| {
                w.queue.space_bytes()
                    + w.best.capacity() * 8
                    + w.pend.capacity()
                    + w.mark.capacity() * 4
                    + w.seen.capacity()
                    + w.last_round.capacity() * 4
                    + w.last_seq.capacity() * 4
                    + w.in_dirty.capacity()
                    + w.in_round.capacity()
                    + (w.dirty.capacity() + w.round_dirty.capacity() + w.dep_buf.capacity()) * 8
            })
            .sum();
        self.num_vars * per_var + workers
    }

    /// Runs the step function to a fixpoint from the given initial scope
    /// and writes the result (values *and* replayed stamps) back into
    /// `status`. Semantics match [`Engine::run`](crate::engine::Engine::run):
    /// identical final values (C2 uniqueness), identical abort contract.
    pub fn run<S>(
        &mut self,
        spec: &S,
        status: &mut Status<S::Value>,
        scope: impl IntoIterator<Item = usize>,
    ) -> RunStats
    where
        S: FixpointSpec + Sync,
        S::Value: PackedValue,
    {
        assert_eq!(
            spec.num_vars(),
            self.num_vars,
            "engine sized for a different variable count"
        );
        let _span = incgraph_obs::span("engine.run");
        self.advance_epoch();
        self.changed.clear();
        for w in &mut self.workers {
            w.stats = RunStats::default();
            w.seq = 0;
            if !w.queue.is_empty() {
                w.queue.clear(); // leftovers from an aborted run
            }
            debug_assert!(w.dirty.is_empty() && w.round_dirty.is_empty());
        }

        let (nthreads, epoch) = (self.nthreads, self.epoch);
        // Stage the seeds to learn the rank band before binning anything:
        // incremental scopes sit in a narrow absolute band (converged SSSP
        // distances, settled CC labels), and a binning window centered on
        // that band keeps the bucket schedule near-exact instead of
        // collapsing every seed into one coarse bucket. `seed_buf` is
        // reused across runs, so the staging is allocation-free once warm.
        let mut seeds = std::mem::take(&mut self.seed_buf);
        seeds.clear();
        // Sentinel-rank seeds (⊥ values awaiting their first eval — a
        // batch run seeds *every* variable at rank cap) carry no band
        // information and would stretch the window to the whole u64
        // range; they simply land in the overflow bucket.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for x in scope {
            let r = spec.rank(x, &status.get(x)).min(RANK_CAP);
            if r < RANK_CAP {
                lo = lo.min(r);
                hi = hi.max(r);
            }
            seeds.push((x, r));
        }
        let scope_len = seeds.len();
        if scope_len > 0 {
            let lo = if lo == u64::MAX { 0 } else { lo };
            // Smallest shift that spreads the seed band across the bucket
            // range, floored so the window never drops below MIN_BAND:
            // ranks produced *during* the run routinely overshoot the
            // seed band (batch SSSP grows distances from a single rank-0
            // source), and a too-narrow window would dump them all into
            // the overflow bucket. Ranks past the window still land
            // there, which is legal — binning is a performance hint.
            let span = (hi.saturating_sub(lo)).max(MIN_BAND);
            let shift =
                (u64::BITS - span.leading_zeros()).saturating_sub(NUM_BUCKETS.trailing_zeros());
            for w in &mut self.workers {
                w.queue.reconfigure(lo, shift);
            }
        }
        if nthreads == 1 {
            // Literal shard count: the owner/local-index divisions in
            // `push_local` fold away, which matters at a few ns per seed.
            let w = &mut self.workers[0];
            for &(x, r) in &seeds {
                push_local(w, epoch, 1, x, r, PEND_EVAL);
            }
        } else {
            for &(x, r) in &seeds {
                let w = &mut self.workers[x % nthreads];
                push_local(w, epoch, nthreads, x, r, PEND_EVAL);
            }
        }
        self.seed_buf = seeds;
        let mut min_bucket = u64::MAX;
        for w in &mut self.workers {
            if let Some(b) = w.queue.min_bucket() {
                min_bucket = min_bucket.min(b as u64);
            }
        }
        if min_bucket != u64::MAX {
            incgraph_obs::gauge("engine.par.seed_min_bucket", min_bucket);
        }
        if min_bucket == u64::MAX {
            // Empty scope: nothing to do, and the seed pushes (none)
            // already cost nothing.
            let mut stats = RunStats::default();
            for w in &self.workers {
                stats.merge(&w.stats);
            }
            crate::trace::record("par", nthreads, scope_len, &stats);
            return stats;
        }

        if nthreads == 1 {
            // Single shard: there is no cross-shard visibility to stage,
            // so the round scaffolding (barriers, publish, mailboxes,
            // stamp replay) is dropped entirely. This is the sequential
            // step loop driven by the O(1) bucket queue and the
            // epoch-versioned dedup arrays instead of a binary heap.
            let stats = self.run_single(spec, status);
            crate::trace::record("par", 1, scope_len, &stats);
            return stats;
        }

        let cells = [AtomicU64::new(min_bucket), AtomicU64::new(u64::MAX)];
        let barrier = Barrier::new(nthreads);
        let abort = AtomicBool::new(false);
        let poisoned = AtomicBool::new(false);
        let distinct = AtomicU64::new(0);
        let mailboxes: Vec<Vec<Mutex<Vec<Msg>>>> = (0..nthreads)
            .map(|_| (0..nthreads).map(|_| Mutex::new(Vec::new())).collect())
            .collect();

        let mut workers = std::mem::take(&mut self.workers);
        let shared = Shared {
            nthreads,
            epoch,
            budget: self.work_budget,
            cur: &self.cur,
            cur_epoch: &self.cur_epoch,
            published: &self.published,
            pub_epoch: &self.pub_epoch,
            cells: &cells,
            barrier: &barrier,
            abort: &abort,
            poisoned: &poisoned,
            panic_var: self.panic_var,
            distinct: &distinct,
            mailboxes: &mailboxes,
        };
        if nthreads == 1 {
            // Single shard: run inline, no thread spawn, no cross-shard
            // traffic — this is the bucket-queue engine.
            worker_body(0, &mut workers[0], &shared, spec, status);
        } else {
            let status_ref: &Status<S::Value> = status;
            std::thread::scope(|ts| {
                for (t, w) in workers.iter_mut().enumerate() {
                    let sh = &shared;
                    ts.spawn(move || worker_body(t, w, sh, spec, status_ref));
                }
            });
        }

        let mut stats = RunStats::default();
        for w in &workers {
            stats.merge(&w.stats);
        }

        if poisoned.load(Relaxed) {
            // A shard body panicked: discard the run. Nothing was written
            // back to `status` (workers only stage values in the engine's
            // scratch), so the caller can resume on the sequential engine
            // from the exact pre-run state. The panic may have fired while
            // worker scratch invariants were mid-flight (dirty lists taken,
            // membership flags half-cleared), so the scratch is rebuilt
            // rather than drained.
            self.workers = workers;
            self.reset_workers();
            stats.poisoned = true;
            stats.aborted = false;
            crate::trace::record("par", nthreads, scope_len, &stats);
            return stats;
        }

        // Stamp replay: apply final values in (round, thread, seq) order
        // of each variable's last change — a valid linearization of the
        // causal order (see module docs).
        let mut order: Vec<(u32, usize, u32, usize)> = Vec::new();
        for (tid, w) in workers.iter().enumerate() {
            for &x in &w.dirty {
                let lx = x / nthreads;
                order.push((w.last_round[lx], tid, w.last_seq[lx], x));
            }
        }
        order.sort_unstable();
        for &(_, _, _, x) in &order {
            let v = <S::Value as PackedValue>::unpack(self.cur[x].load(Relaxed));
            status.set(x, v);
            self.changed.push(x);
        }
        for w in &mut workers {
            let dirty = std::mem::take(&mut w.dirty);
            for &x in &dirty {
                w.in_dirty[x / nthreads] = false;
            }
            w.dirty = dirty;
            w.dirty.clear();
        }
        self.workers = workers;
        crate::trace::record("par", nthreads, scope_len, &stats);
        stats
    }

    /// The one-shard fast path of [`run`](Self::run): pops the global
    /// minimum until the queue drains, reading and writing `status`
    /// directly. Values *and* stamps land in processing order, exactly as
    /// [`crate::engine::Engine::run`] would produce them — the schedule
    /// is a valid linearization of `<_C` by construction, so no replay is
    /// needed. The queue is seeded by the caller.
    fn run_single<S>(&mut self, spec: &S, status: &mut Status<S::Value>) -> RunStats
    where
        S: FixpointSpec,
        S::Value: PackedValue,
    {
        let epoch = self.epoch;
        let budget = self.work_budget;
        let mut changed = std::mem::take(&mut self.changed);
        let w = &mut self.workers[0];
        let mut deps = std::mem::take(&mut w.dep_buf);
        while let Some((rank, x)) = w.queue.pop() {
            if w.mark[x] != epoch || w.best[x] != rank || w.pend[x] == PEND_NONE {
                w.stats.stale_pops += 1;
                continue;
            }
            let kind = w.pend[x];
            w.pend[x] = PEND_NONE;
            w.best[x] = u64::MAX;
            w.stats.pops += 1;
            if !w.seen[x] {
                w.seen[x] = true;
                w.stats.distinct_vars += 1;
                if let Some(b) = budget {
                    if w.stats.distinct_vars > b {
                        w.queue.clear();
                        w.stats.aborted = true;
                        break;
                    }
                }
            }
            let vx = if kind & PEND_EVAL != 0 {
                let cur = status.get(x);
                let mut reads = 0u64;
                let newv = spec.eval(x, &mut |y| {
                    reads += 1;
                    status.get(y)
                });
                w.stats.evals += 1;
                w.stats.reads += reads;
                if newv != cur {
                    debug_assert!(
                        !spec.is_contracting() || spec.preceq(&newv, &cur),
                        "non-contracting step on var {x}: {cur:?} -> {newv:?}"
                    );
                    status.set(x, newv);
                    w.stats.changes += 1;
                    changed.push(x);
                    newv
                } else if kind & PEND_PROP != 0 {
                    cur
                } else {
                    continue;
                }
            } else {
                status.get(x)
            };
            deps.clear();
            spec.dependents(x, &mut |z| deps.push(z));
            for &z in &deps {
                let zv = status.get(z);
                w.stats.reads += 1;
                match spec.relax(z, &zv, x, &vx) {
                    Relax::Skip => {}
                    Relax::Set(cand) => {
                        if cand != zv {
                            debug_assert!(
                                !spec.is_contracting() || spec.preceq(&cand, &zv),
                                "non-contracting relax on var {z}: {zv:?} -> {cand:?}"
                            );
                            status.set(z, cand);
                            w.stats.changes += 1;
                            changed.push(z);
                            let zr = spec.rank(z, &cand).min(RANK_CAP);
                            push_local(w, epoch, 1, z, zr, PEND_PROP);
                        }
                    }
                    Relax::Eval => {
                        let zr = spec.push_rank(z, &zv, x, &vx).min(RANK_CAP);
                        push_local(w, epoch, 1, z, zr, PEND_EVAL);
                    }
                }
            }
        }
        w.dep_buf = deps;
        let stats = w.stats;
        self.changed = changed;
        stats
    }

    /// Rebuilds every worker's scratch from scratch — the recovery path
    /// after a poisoned run, whose unwound shard may have left dirty-list
    /// membership flags inconsistent with the (taken) lists themselves.
    fn reset_workers(&mut self) {
        let local = self.num_vars.div_ceil(self.nthreads);
        for w in &mut self.workers {
            *w = Worker {
                queue: BucketQueue::new(self.rank_shift),
                best: vec![u64::MAX; local],
                pend: vec![PEND_NONE; local],
                mark: vec![0; local],
                seen: vec![false; local],
                last_round: vec![0; local],
                last_seq: vec![0; local],
                in_dirty: vec![false; local],
                in_round: vec![false; local],
                ..Default::default()
            };
        }
    }

    fn advance_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.cur_epoch.iter_mut().for_each(|e| *e.get_mut() = 0);
            self.pub_epoch.iter_mut().for_each(|e| *e.get_mut() = 0);
            for w in &mut self.workers {
                w.mark.iter_mut().for_each(|m| *m = 0);
            }
            self.epoch = 0;
        }
        self.epoch += 1;
    }
}

/// Reads variable `y` as seen by thread `t`: own-shard variables come
/// from the working array, foreign ones from the *published* array (both
/// falling back to the base status when untouched this run). Foreign
/// working values are never visible — the invariant the stamp replay and
/// determinism guarantees rest on.
#[inline]
fn shard_read<V: PackedValue>(y: usize, t: usize, sh: &Shared<'_>, status: &Status<V>) -> V {
    if y % sh.nthreads == t {
        if sh.cur_epoch[y].load(Relaxed) == sh.epoch {
            return V::unpack(sh.cur[y].load(Relaxed));
        }
    } else if sh.pub_epoch[y].load(Relaxed) == sh.epoch {
        return V::unpack(sh.published[y].load(Relaxed));
    }
    status.get(y)
}

/// Records a change to owned variable `x`: stores the working value,
/// stamps the (round, seq) of the change, and tracks run/round dirty
/// sets.
#[inline]
fn apply_change<V: PackedValue>(w: &mut Worker, sh: &Shared<'_>, x: usize, round: u32, v: V) {
    sh.cur[x].store(v.pack(), Relaxed);
    sh.cur_epoch[x].store(sh.epoch, Relaxed);
    w.stats.changes += 1;
    w.seq += 1;
    let lx = x / sh.nthreads;
    w.last_round[lx] = round;
    w.last_seq[lx] = w.seq;
    if !w.in_dirty[lx] {
        w.in_dirty[lx] = true;
        w.dirty.push(x);
    }
    if !w.in_round[lx] {
        w.in_round[lx] = true;
        w.round_dirty.push(x);
    }
}

/// Queues owned variable `x` (mirror of the sequential engine's dedup
/// push: kinds join upward, ranks join downward).
#[inline]
fn push_local(w: &mut Worker, epoch: u32, nthreads: usize, x: usize, rank: u64, kind: u8) {
    w.stats.pushes += 1;
    let lx = x / nthreads;
    if w.mark[lx] != epoch {
        w.mark[lx] = epoch;
        w.best[lx] = u64::MAX;
        w.pend[lx] = PEND_NONE;
        w.seen[lx] = false;
    }
    w.pend[lx] |= kind;
    if rank < w.best[lx] {
        w.best[lx] = rank;
        w.queue.push(rank, x);
    }
}

/// Propagates a change of owned `x` to its *local* dependents (relax
/// fast path included); remote dependents are notified via the round's
/// publish phase instead.
#[allow(clippy::too_many_arguments)] // hot path: flat args, no per-call context struct
fn propagate_local<S>(
    w: &mut Worker,
    sh: &Shared<'_>,
    spec: &S,
    status: &Status<S::Value>,
    t: usize,
    round: u32,
    x: usize,
    vx: &S::Value,
) where
    S: FixpointSpec,
    S::Value: PackedValue,
{
    let mut deps = std::mem::take(&mut w.dep_buf);
    deps.clear();
    spec.dependents(x, &mut |z| deps.push(z));
    for &z in &deps {
        if z % sh.nthreads != t {
            continue;
        }
        let zv = shard_read(z, t, sh, status);
        w.stats.reads += 1;
        match spec.relax(z, &zv, x, vx) {
            Relax::Skip => {}
            Relax::Set(cand) => {
                if cand != zv {
                    debug_assert!(
                        !spec.is_contracting() || spec.preceq(&cand, &zv),
                        "non-contracting relax on var {z}: {zv:?} -> {cand:?}"
                    );
                    apply_change(w, sh, z, round, cand);
                    let zr = spec.rank(z, &cand).min(RANK_CAP);
                    push_local(w, sh.epoch, sh.nthreads, z, zr, PEND_PROP);
                }
            }
            Relax::Eval => {
                let zr = spec.push_rank(z, &zv, x, vx).min(RANK_CAP);
                push_local(w, sh.epoch, sh.nthreads, z, zr, PEND_EVAL);
            }
        }
    }
    w.dep_buf = deps;
}

/// One round's process phase: drain owned entries whose bucket is within
/// the global bound, Gauss–Seidel style within the shard.
fn process_round<S>(
    w: &mut Worker,
    sh: &Shared<'_>,
    spec: &S,
    status: &Status<S::Value>,
    t: usize,
    round: u32,
    target_bucket: usize,
) where
    S: FixpointSpec,
    S::Value: PackedValue,
{
    while let Some((rank, x)) = w.queue.pop_at_most(target_bucket) {
        let lx = x / sh.nthreads;
        if w.mark[lx] != sh.epoch || w.best[lx] != rank || w.pend[lx] == PEND_NONE {
            w.stats.stale_pops += 1;
            continue;
        }
        let kind = w.pend[lx];
        w.pend[lx] = PEND_NONE;
        w.best[lx] = u64::MAX;
        w.stats.pops += 1;
        if sh.panic_var == Some(x) {
            panic!("injected shard panic on var {x}");
        }
        if !w.seen[lx] {
            w.seen[lx] = true;
            w.stats.distinct_vars += 1;
            if let Some(budget) = sh.budget {
                if sh.distinct.fetch_add(1, Relaxed) + 1 > budget {
                    sh.abort.store(true, Relaxed);
                    return;
                }
            }
        }
        if kind & PEND_EVAL != 0 {
            let cur = shard_read(x, t, sh, status);
            let mut reads = 0u64;
            let newv = spec.eval(x, &mut |y| {
                reads += 1;
                shard_read(y, t, sh, status)
            });
            w.stats.evals += 1;
            w.stats.reads += reads;
            if newv != cur {
                debug_assert!(
                    !spec.is_contracting() || spec.preceq(&newv, &cur),
                    "non-contracting step on var {x}: {cur:?} -> {newv:?}"
                );
                apply_change(w, sh, x, round, newv);
                propagate_local(w, sh, spec, status, t, round, x, &newv);
            } else if kind & PEND_PROP != 0 {
                propagate_local(w, sh, spec, status, t, round, x, &cur);
            }
        } else {
            let v = shard_read(x, t, sh, status);
            propagate_local(w, sh, spec, status, t, round, x, &v);
        }
        if sh.abort.load(Relaxed) {
            return;
        }
    }
}

/// One round's publish phase: expose this round's changes to other
/// shards and queue one activation per remote dependent per changed
/// variable.
fn publish_round<S>(w: &mut Worker, sh: &Shared<'_>, spec: &S, t: usize, outboxes: &mut [Vec<Msg>])
where
    S: FixpointSpec,
    S::Value: PackedValue,
{
    let round_dirty = std::mem::take(&mut w.round_dirty);
    for &x in &round_dirty {
        w.in_round[x / sh.nthreads] = false;
        if sh.nthreads > 1 {
            let bits = sh.cur[x].load(Relaxed);
            sh.published[x].store(bits, Relaxed);
            sh.pub_epoch[x].store(sh.epoch, Relaxed);
            spec.dependents(x, &mut |z| {
                let dest = z % sh.nthreads;
                if dest != t {
                    outboxes[dest].push((z, x, bits));
                }
            });
        }
    }
    w.round_dirty = round_dirty;
    w.round_dirty.clear();
    for (dest, out) in outboxes.iter_mut().enumerate() {
        if !out.is_empty() {
            // A mutex poisoned by another shard's caught panic is still
            // structurally sound (appends are atomic within the lock);
            // recover the guard instead of cascading the panic.
            sh.mailboxes[dest][t]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .append(out);
        }
    }
}

/// Drains incoming activations (in sender order, for determinism) into
/// the local queue as EVAL requests, ranked exactly as the sequential
/// engine would rank the push.
fn drain_mailboxes<S>(
    w: &mut Worker,
    sh: &Shared<'_>,
    spec: &S,
    status: &Status<S::Value>,
    t: usize,
) where
    S: FixpointSpec,
    S::Value: PackedValue,
{
    for s in 0..sh.nthreads {
        let msgs = std::mem::take(
            &mut *sh.mailboxes[t][s]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for (z, x, bits) in msgs {
            let vx = <S::Value as PackedValue>::unpack(bits);
            let zv = shard_read(z, t, sh, status);
            w.stats.reads += 1;
            let zr = spec.push_rank(z, &zv, x, &vx).min(RANK_CAP);
            push_local(w, sh.epoch, sh.nthreads, z, zr, PEND_EVAL);
        }
    }
}

/// The per-thread round loop. Three barriers per round separate the
/// phases whose overlap would break the visibility invariant:
///
/// ```text
/// read global bucket ── process (own shard, ≤ bucket) ──┤ barrier P
/// publish round's changes + queue remote activations  ──┤ barrier A
/// abort check · drain mailboxes · propose next bucket ──┤ barrier B
/// ```
///
/// `P` keeps same-round foreign writes invisible to evals; `A` ensures
/// every mailbox is complete before anyone drains; `B` ensures the next
/// round's global bucket is final before anyone reads it.
///
/// # Panic isolation
///
/// Each phase that runs spec code (process / publish / drain) is wrapped
/// in [`std::panic::catch_unwind`]: a panicking shard poisons the run
/// (`Shared::poisoned` + `Shared::abort`) **and keeps participating in
/// the barriers**, so the remaining shards never deadlock — everyone
/// exits together at the post-`A` abort check. The poisoned run's staged
/// values are discarded by [`ParEngine::run`]; the caller degrades to
/// the sequential engine, which reaches the same fixpoint (C2
/// uniqueness) or surfaces the panic under sequential semantics.
fn worker_body<S>(t: usize, w: &mut Worker, sh: &Shared<'_>, spec: &S, status: &Status<S::Value>)
where
    S: FixpointSpec + Sync,
    S::Value: PackedValue,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    // The closures borrow `w` mutably across the unwind boundary; that is
    // sound here because a caught panic poisons the run and the engine
    // rebuilds every worker's scratch before it is read again.
    let guard = |sh: &Shared<'_>, f: &mut dyn FnMut()| {
        if catch_unwind(AssertUnwindSafe(f)).is_err() {
            sh.poisoned.store(true, Relaxed);
            sh.abort.store(true, Relaxed);
        }
    };
    let mut outboxes: Vec<Vec<Msg>> = vec![Vec::new(); sh.nthreads];
    let mut round: u32 = 0;
    loop {
        let cell = (round & 1) as usize;
        let next = cell ^ 1;
        let target = sh.cells[cell].load(Relaxed);
        if target == u64::MAX {
            break; // no work anywhere: global fixpoint
        }
        if t == 0 {
            sh.cells[next].store(u64::MAX, Relaxed);
        }
        guard(sh, &mut || {
            process_round(w, sh, spec, status, t, round, target as usize)
        });
        sh.barrier.wait(); // P
        guard(sh, &mut || publish_round(w, sh, spec, t, &mut outboxes));
        sh.barrier.wait(); // A
        if sh.abort.load(Relaxed) {
            // Poison discards the run wholesale; only a genuine budget
            // abort is reported as such.
            if !sh.poisoned.load(Relaxed) {
                w.stats.aborted = true;
            }
            break; // uniform: every thread checks at this same point
        }
        guard(sh, &mut || drain_mailboxes(w, sh, spec, status, t));
        let mine = w.queue.min_bucket().map_or(u64::MAX, |b| b as u64);
        sh.cells[next].fetch_min(mine, Relaxed);
        sh.barrier.wait(); // B
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_fixpoint, Engine};

    /// Min-label propagation over a fixed undirected graph — a miniature
    /// CC with two components.
    struct MiniCc {
        adj: Vec<Vec<usize>>,
    }

    impl MiniCc {
        fn new(n: usize, edges: &[(usize, usize)]) -> Self {
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in edges {
                adj[a].push(b);
                adj[b].push(a);
            }
            MiniCc { adj }
        }
    }

    impl FixpointSpec for MiniCc {
        type Value = u32;
        fn num_vars(&self) -> usize {
            self.adj.len()
        }
        fn bottom(&self, x: usize) -> u32 {
            x as u32
        }
        fn eval<R: FnMut(usize) -> u32>(&self, x: usize, read: &mut R) -> u32 {
            let mut m = x as u32;
            for &y in &self.adj[x] {
                m = m.min(read(y));
            }
            m
        }
        fn dependents<P: FnMut(usize)>(&self, x: usize, push: &mut P) {
            for &y in &self.adj[x] {
                push(y);
            }
        }
        fn preceq(&self, a: &u32, b: &u32) -> bool {
            a <= b
        }
        fn rank(&self, _x: usize, v: &u32) -> u64 {
            *v as u64
        }
        fn push_rank(&self, _z: usize, _zv: &u32, _t: usize, tv: &u32) -> u64 {
            *tv as u64
        }
    }

    fn ring_with_chords(n: usize) -> MiniCc {
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in (0..n).step_by(7) {
            edges.push((i, (i * 3 + 1) % n));
        }
        MiniCc::new(n, &edges)
    }

    #[test]
    fn matches_sequential_on_full_batch() {
        for threads in [1, 2, 4] {
            let spec = ring_with_chords(101);
            let mut seq = Status::init(&spec, false);
            run_fixpoint(&spec, &mut seq, 0..spec.num_vars());
            let mut par = Status::init(&spec, false);
            let mut engine = ParEngine::new(spec.num_vars(), threads);
            let stats = engine.run(&spec, &mut par, 0..spec.num_vars());
            assert_eq!(seq.values(), par.values(), "threads={threads}");
            assert!(!stats.aborted);
            assert!(stats.changes > 0);
        }
    }

    #[test]
    fn matches_sequential_on_partial_scope() {
        let spec = MiniCc::new(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        for threads in [1, 2, 3] {
            let mut par = Status::init(&spec, false);
            let mut engine = ParEngine::new(6, threads);
            engine.run(&spec, &mut par, [4usize, 5]);
            assert_eq!(
                par.values(),
                &[0, 1, 2, 3, 4, 4],
                "untouched region stays (threads={threads})"
            );
        }
    }

    #[test]
    fn empty_scope_is_a_noop() {
        let spec = MiniCc::new(4, &[(0, 1)]);
        let mut engine = ParEngine::new(4, 2);
        let mut status = Status::init(&spec, false);
        let stats = engine.run(&spec, &mut status, std::iter::empty());
        assert_eq!(stats.pops, 0);
        assert_eq!(status.values(), &[0, 1, 2, 3]);
    }

    #[test]
    fn engine_reuse_isolates_runs() {
        let spec = MiniCc::new(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let mut engine = ParEngine::new(6, 2);
        let mut s1 = Status::init(&spec, false);
        engine.run(&spec, &mut s1, 0..6);
        let mut s2 = Status::init(&spec, false);
        let stats2 = engine.run(&spec, &mut s2, [4usize, 5]);
        assert_eq!(s2.values(), &[0, 1, 2, 3, 4, 4]);
        assert!(stats2.distinct_vars <= 2);
    }

    #[test]
    fn stamps_are_replayed_in_causal_order() {
        // On a path seeded at one end, every node's min-label change is
        // justified by its predecessor — stamps must strictly increase
        // along the chain regardless of sharding.
        let n = 40;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let spec = MiniCc::new(n, &edges);
        for threads in [1, 2, 4] {
            let mut status = Status::init(&spec, true);
            let mut engine = ParEngine::new(n, threads);
            engine.run(&spec, &mut status, 0..n);
            for i in 1..n {
                assert_eq!(status.get(i), 0);
                assert!(
                    status.stamp(i) > status.stamp(i - 1),
                    "stamp({i}) must follow stamp({}) (threads={threads})",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn work_budget_aborts_runaway_run() {
        let spec = ring_with_chords(64);
        let mut engine = ParEngine::new(64, 2);
        engine.set_work_budget(Some(4));
        let mut status = Status::init(&spec, false);
        let stats = engine.run(&spec, &mut status, 0..64);
        assert!(stats.aborted, "64-var scope must blow a 4-var budget");
        // Clearing the budget restores convergence on the same engine.
        engine.set_work_budget(None);
        let mut s2 = Status::init(&spec, false);
        let st2 = engine.run(&spec, &mut s2, 0..64);
        assert!(!st2.aborted);
        let mut seq = Status::init(&spec, false);
        run_fixpoint(&spec, &mut seq, 0..64);
        assert_eq!(s2.values(), seq.values());
    }

    #[test]
    fn deterministic_across_repeated_runs() {
        let spec = ring_with_chords(97);
        let mut engine = ParEngine::new(97, 3);
        let mut base: Option<(Vec<u32>, Vec<u64>)> = None;
        for _ in 0..3 {
            let mut status = Status::init(&spec, true);
            engine.run(&spec, &mut status, 0..97);
            let stamps: Vec<u64> = (0..97).map(|x| status.stamp(x)).collect();
            let snap = (status.values().to_vec(), stamps);
            match &base {
                None => base = Some(snap),
                Some(b) => assert_eq!(b, &snap, "replay must be bit-identical"),
            }
        }
    }

    #[test]
    fn more_threads_than_vars() {
        let spec = MiniCc::new(3, &[(0, 1), (1, 2)]);
        let mut engine = ParEngine::new(3, 8);
        let mut status = Status::init(&spec, false);
        engine.run(&spec, &mut status, 0..3);
        assert_eq!(status.values(), &[0, 0, 0]);
    }

    #[test]
    fn epoch_wrap_preserves_isolation() {
        let spec = MiniCc::new(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let mut engine = ParEngine::new(6, 2);
        engine.epoch = u32::MAX - 1;
        let mut s1 = Status::init(&spec, false);
        engine.run(&spec, &mut s1, 0..6); // epoch MAX
        let mut s2 = Status::init(&spec, false);
        engine.run(&spec, &mut s2, 0..6); // wraps
        assert_eq!(s1.values(), s2.values());
        let mut s3 = Status::init(&spec, false);
        engine.run(&spec, &mut s3, [4usize, 5]);
        assert_eq!(s3.values(), &[0, 1, 2, 3, 4, 4]);
    }

    #[test]
    fn injected_panic_poisons_run_without_writeback() {
        let spec = ring_with_chords(64);
        let mut engine = ParEngine::new(64, 2);
        engine.inject_panic_on(Some(10));
        let mut status = Status::init(&spec, true);
        let before = status.values().to_vec();
        let stats = engine.run(&spec, &mut status, 0..64);
        assert!(stats.poisoned, "shard panic must poison the run");
        assert!(!stats.aborted, "poison is not a budget abort");
        assert_eq!(
            status.values(),
            before.as_slice(),
            "a poisoned run writes nothing back"
        );
        assert_eq!(status.clock(), 0, "no stamps replayed either");
        // Clearing the injection restores convergence on the same engine:
        // the rebuilt scratch must not remember the abandoned run.
        engine.inject_panic_on(None);
        let st2 = engine.run(&spec, &mut status, 0..64);
        assert!(!st2.poisoned);
        let mut seq = Status::init(&spec, false);
        run_fixpoint(&spec, &mut seq, 0..64);
        assert_eq!(status.values(), seq.values());
    }

    #[test]
    fn matches_sequential_engine_stats_contract() {
        // Not the same schedule, but the same convergence: both engines
        // agree on final values and both report nonzero work.
        let spec = ring_with_chords(50);
        let mut seq_status = Status::init(&spec, false);
        let seq_stats = Engine::new(50).run(&spec, &mut seq_status, 0..50);
        let mut par_status = Status::init(&spec, false);
        let par_stats = ParEngine::new(50, 4).run(&spec, &mut par_status, 0..50);
        assert_eq!(seq_status.values(), par_status.values());
        assert!(seq_stats.evals > 0 && par_stats.evals > 0);
        assert_eq!(par_stats.distinct_vars, 50, "full batch inspects every var");
    }
}
