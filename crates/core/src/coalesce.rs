//! Micro-batch ΔG coalescing: merge many small applied batches into one
//! canonical batch with the same net effect.
//!
//! The parallel engine only pays for itself when the affected area of a
//! resume is large enough to amortize its round scaffolding, and the
//! fixpoint + notification cost of the service's writer thread is per
//! *batch*, not per unit update. [`Coalescer`] turns `N` pending ΔGs into
//! one canonical ΔG whose combined affected area is their union:
//! insert+delete of the same edge cancels outright, duplicate ops on one
//! edge collapse to their net effect, and everything else is
//! concatenated. Applying the coalesced batch to the pre-state graph and
//! fixpoint is value-equivalent to applying the constituents in order —
//! the property test `coalesce_equiv.rs` in `crates/algos` pins this
//! across all seven query classes.
//!
//! # Soundness
//!
//! Coalescing operates on **effective** ops ([`AppliedOp`]) — the ops an
//! [`UpdateBatch::apply`](incgraph_graph::UpdateBatch) actually performed
//! — never on raw requested updates. Effective ops on one edge strictly
//! alternate insert/delete (an effective insert requires the edge absent,
//! an effective delete requires it present), so the net effect of a run
//! of ops on one edge is fully determined by its first and last op:
//!
//! | first    | last     | net effect                                    |
//! |----------|----------|-----------------------------------------------|
//! | insert   | insert   | `insert(last.weight)`                         |
//! | insert   | delete   | nothing (absent → absent: cancels)            |
//! | delete   | delete   | `delete(first.weight)`                        |
//! | delete   | insert   | weight change: `delete(first.weight)` then    |
//! |          |          | `insert(last.weight)`; nothing if equal       |
//!
//! Raw `UpdateBatch` entries must not be coalesced this way: an insert of
//! an already-present edge is a silent no-op under apply semantics, so
//! cancelling it against a later delete would drop a real deletion.

use incgraph_graph::{AppliedBatch, AppliedOp};

/// Reusable ΔG coalescer. Keep one per writer/session: its scratch
/// buffers retain their high-water capacity so steady-state coalescing
/// allocates only the output batch.
#[derive(Clone, Debug, Default)]
pub struct Coalescer {
    /// (canonical edge key, arrival index, op) — sorted to group per-edge
    /// runs while preserving arrival order within each run.
    tagged: Vec<(u64, u32, AppliedOp)>,
}

/// Canonical key of an edge: orientation-normalized on undirected graphs
/// so `(u,v)` and `(v,u)` coalesce into the same run.
#[inline]
fn edge_key(directed: bool, op: &AppliedOp) -> u64 {
    let (a, b) = if directed || op.src <= op.dst {
        (op.src, op.dst)
    } else {
        (op.dst, op.src)
    };
    ((a as u64) << 32) | b as u64
}

impl Coalescer {
    /// An empty coalescer.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// Coalesces `batches` (in application order) into one canonical
    /// batch with the same net effect on a graph in the pre-`batches`
    /// state. `directed` must match the graph the batches were applied
    /// to. The output's ops are ordered by canonical edge key; per edge a
    /// weight-changing delete precedes its re-insert.
    pub fn coalesce<'a>(
        &mut self,
        directed: bool,
        batches: impl IntoIterator<Item = &'a AppliedBatch>,
    ) -> AppliedBatch {
        self.tagged.clear();
        let mut seq = 0u32;
        for batch in batches {
            for op in batch.ops() {
                self.tagged.push((edge_key(directed, op), seq, *op));
                seq += 1;
            }
        }
        // Group per-edge runs; `seq` keeps arrival order inside a run.
        self.tagged
            .sort_unstable_by_key(|&(key, seq, _)| (key, seq));

        let mut out: Vec<AppliedOp> = Vec::new();
        let mut i = 0;
        while i < self.tagged.len() {
            let key = self.tagged[i].0;
            let mut j = i + 1;
            while j < self.tagged.len() && self.tagged[j].0 == key {
                debug_assert_ne!(
                    self.tagged[j - 1].2.inserted,
                    self.tagged[j].2.inserted,
                    "effective ops on one edge must alternate insert/delete"
                );
                j += 1;
            }
            let first = &self.tagged[i].2;
            let last = &self.tagged[j - 1].2;
            match (first.inserted, last.inserted) {
                (true, true) => out.push(*last),
                (true, false) => {} // absent → absent: cancels out
                (false, false) => out.push(*first),
                (false, true) => {
                    // present → present: net weight change (or nothing).
                    if first.weight != last.weight {
                        out.push(*first);
                        out.push(*last);
                    }
                }
            }
            i = j;
        }
        AppliedBatch::from_ops(out)
    }

    /// Heap bytes held by the coalescer's scratch.
    pub fn space_bytes(&self) -> usize {
        self.tagged.capacity() * std::mem::size_of::<(u64, u32, AppliedOp)>()
    }
}

/// One-shot convenience wrapper around a throwaway [`Coalescer`].
pub fn coalesce_batches<'a>(
    directed: bool,
    batches: impl IntoIterator<Item = &'a AppliedBatch>,
) -> AppliedBatch {
    Coalescer::new().coalesce(directed, batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::{DynamicGraph, UpdateBatch};

    fn ins(src: u32, dst: u32, weight: u32) -> AppliedOp {
        AppliedOp {
            inserted: true,
            src,
            dst,
            weight,
        }
    }

    fn del(src: u32, dst: u32, weight: u32) -> AppliedOp {
        AppliedOp {
            inserted: false,
            src,
            dst,
            weight,
        }
    }

    #[test]
    fn insert_then_delete_cancels() {
        let a = AppliedBatch::from_ops(vec![ins(0, 1, 5)]);
        let b = AppliedBatch::from_ops(vec![del(0, 1, 5)]);
        let net = coalesce_batches(true, [&a, &b]);
        assert!(net.is_empty(), "insert+delete of one edge must cancel");
    }

    #[test]
    fn delete_then_reinsert_same_weight_cancels() {
        let a = AppliedBatch::from_ops(vec![del(2, 3, 7)]);
        let b = AppliedBatch::from_ops(vec![ins(2, 3, 7)]);
        let net = coalesce_batches(true, [&a, &b]);
        assert!(net.is_empty());
    }

    #[test]
    fn delete_then_reinsert_new_weight_becomes_weight_change() {
        let a = AppliedBatch::from_ops(vec![del(2, 3, 7)]);
        let b = AppliedBatch::from_ops(vec![ins(2, 3, 9)]);
        let net = coalesce_batches(true, [&a, &b]);
        assert_eq!(net.ops(), &[del(2, 3, 7), ins(2, 3, 9)]);
    }

    #[test]
    fn alternating_run_keeps_only_net_effect() {
        // ins, del, ins: edge absent before, present (weight 3) after.
        let a = AppliedBatch::from_ops(vec![ins(1, 4, 1), del(1, 4, 1), ins(1, 4, 3)]);
        let net = coalesce_batches(true, [&a]);
        assert_eq!(net.ops(), &[ins(1, 4, 3)]);
    }

    #[test]
    fn undirected_orientations_coalesce() {
        // (0,1) inserted, then its mirror orientation deleted: one edge.
        let a = AppliedBatch::from_ops(vec![ins(0, 1, 2)]);
        let b = AppliedBatch::from_ops(vec![del(1, 0, 2)]);
        assert!(coalesce_batches(false, [&a, &b]).is_empty());
        // Directed: (0,1) and (1,0) are distinct edges and both survive.
        let net = coalesce_batches(true, [&a, &b]);
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn independent_edges_pass_through() {
        let a = AppliedBatch::from_ops(vec![ins(0, 1, 1), del(5, 6, 2)]);
        let b = AppliedBatch::from_ops(vec![ins(2, 3, 4)]);
        let net = coalesce_batches(true, [&a, &b]);
        assert_eq!(net.len(), 3);
        // Output is ordered by canonical key, deterministic.
        let keys: Vec<(u32, u32)> = net.ops().iter().map(|o| (o.src, o.dst)).collect();
        assert_eq!(keys, vec![(0, 1), (2, 3), (5, 6)]);
    }

    #[test]
    fn coalesced_apply_equals_sequential_apply() {
        // Ground truth through the real graph: applying the coalesced
        // batch to a copy of the pre-state graph yields the same edges as
        // applying the constituent batches in order.
        let mut g1 = DynamicGraph::new(false, 6);
        let mut b0 = UpdateBatch::new();
        b0.insert(0, 1, 2).insert(1, 2, 3).insert(3, 4, 1);
        b0.apply(&mut g1);
        let mut g2 = g1.clone();

        let mut u1 = UpdateBatch::new();
        u1.insert(2, 3, 5).delete(0, 1).insert(4, 5, 7);
        let a1 = u1.apply(&mut g1);
        let mut u2 = UpdateBatch::new();
        u2.insert(0, 1, 9).delete(4, 5).delete(1, 2);
        let a2 = u2.apply(&mut g1);

        let net = coalesce_batches(g2.is_directed(), [&a1, &a2]);
        let applied = net.to_update_batch().apply(&mut g2);
        assert_eq!(applied.len(), net.len(), "every net op must be effective");
        for v in 0..6u32 {
            assert_eq!(
                g1.out_neighbors(v),
                g2.out_neighbors(v),
                "node {v} adjacency diverged"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let a = AppliedBatch::from_ops(vec![ins(0, 1, 1), ins(2, 3, 2)]);
        let b = AppliedBatch::from_ops(vec![del(0, 1, 1)]);
        let mut c = Coalescer::new();
        let first = c.coalesce(true, [&a, &b]);
        let second = c.coalesce(true, [&a, &b]);
        assert_eq!(first.ops(), second.ops());
    }
}
