//! The paper's primary contribution: a fixpoint model of batch graph
//! algorithms and a systematic incrementalization of them.
//!
//! # The model (paper §3)
//!
//! A *fixpoint algorithm* `A` maintains a set of **status variables**
//! `x_i`, each governed by an **update function** `f_{x_i}(Y_{x_i})` over
//! an input set of other status variables, and iterates a **step
//! function**
//!
//! ```text
//! (D^{t+1}, H^{t+1}) = f_A(D^t, Q, G, H^t)
//! ```
//!
//! where `D` is the status (all variable values) and `H` is the *scope*
//! (the worklist of variables whose logical statement `σ_{x_i}: x_i =
//! f_{x_i}(Y_{x_i})` may be violated). The computation stops at a fixpoint
//! where the scope empties and the invariant `σ_A = ∧ σ_{x_i}` holds.
//!
//! In this crate the model is the [`spec::FixpointSpec`] trait and the
//! step function is [`engine::run_fixpoint`]: a priority worklist that
//! pops a variable, re-evaluates its update function, and on change pushes
//! its dependents. Batch algorithms (`crates/algos`) are `FixpointSpec`
//! instances run from `(D⊥, H⁰ = all possibly-violated vars)`.
//!
//! # Incrementalization (paper §3–4)
//!
//! The deduced incremental algorithm `A_Δ` reuses the *same* step function
//! and differs only in the **initial scope function**
//! `h(D^r_A, ΔG) = (D⁰_{A_Δ}, H⁰_{A_Δ})`, after which
//! [`engine::run_fixpoint`] is simply resumed — so deducibility (same
//! logic and data structures) holds *by construction*. Two strategies:
//!
//! * [`scope::bounded_scope`] — the paper's Fig. 4: processes potentially
//!   infeasible variables in the contributor topological order `<_C`
//!   (provided by a [`scope::ContributorOracle`]), rebuilding feasible
//!   input sets and raising infeasible values. Requires the algorithm to
//!   be *contracting and monotonic* (condition C2); yields relative
//!   boundedness (`H⁰ ⊆ AFF`, condition C1 / Theorem 3).
//! * [`scope::pe_reset_scope`] — the brute-force Theorem 1 construction:
//!   flood the *potentially affected* (PE) variables through dependency
//!   edges and reset them to `⊥`. Always correct, not bounded (kept both
//!   as the LCC strategy, where no flooding occurs, and as the `abl-scope`
//!   ablation baseline).
//!
//! Timestamps (the only auxiliary structure *weak deducibility* permits)
//! are recorded by [`status::Status`] as a byproduct of the batch run and
//! consumed by contributor oracles of CC and Sim.

pub mod audit;
pub mod bucket;
pub mod coalesce;
pub mod engine;
pub mod epoch;
pub mod fallback;
pub mod lattice;
pub mod metrics;
pub mod par;
pub mod scope;
pub mod spec;
pub mod status;
pub mod trace;

pub use audit::{AuditMode, AuditReport, AuditViolation, FixpointAudit};
pub use bucket::BucketQueue;
pub use coalesce::{coalesce_batches, Coalescer};
pub use engine::{run_fixpoint, RunStats};
pub use epoch::VisitEpoch;
pub use fallback::{AuditAction, FallbackDecision, FallbackPolicy, FallbackReason};
pub use metrics::{BoundednessReport, SpaceUsage};
pub use par::{PackedValue, ParEngine};
pub use scope::{
    bounded_scope, bounded_scope_in, pe_reset_scope, pe_reset_scope_in, ContributorOracle,
    ScopeResult, ScopeScratch, ScopeStats,
};
pub use spec::FixpointSpec;
pub use status::Status;
pub use trace::{CaseTrace, TraceEvent};
