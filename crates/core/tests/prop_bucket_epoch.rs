//! Property tests for the engine's two scheduling primitives, driven by
//! the same SplitMix64 generator the fuzzing oracle uses.
//!
//! * [`BucketQueue`] is checked against a brute-force reference model:
//!   among all queued entries, a pop must serve the earliest-pushed entry
//!   of the lowest bucket. That is exactly the FIFO-within-bucket
//!   discipline the parallel engine's stamp replay relies on, so it must
//!   hold under arbitrary interleavings of pushes and pops — including
//!   pushes below the drained cursor and overflow ranks.
//! * [`VisitEpoch`] is checked against a `HashSet` model across random
//!   insert/contains/clear/grow schedules, including epochs pinned next
//!   to `u32::MAX` so the wraparound hard-reset path runs.

use incgraph_core::bucket::NUM_BUCKETS;
use incgraph_core::{BucketQueue, VisitEpoch};
use std::collections::HashSet;

/// SplitMix64 — same generator as `incgraph-oracle`, inlined so the core
/// crate's tests stay dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Reference model: a flat list of queued entries in push order. A pop
/// serves the earliest entry of the lowest bucket.
struct RefQueue {
    entries: Vec<(u64, usize)>,
    shift: u32,
}

impl RefQueue {
    fn bucket_of(&self, rank: u64) -> usize {
        ((rank >> self.shift) as usize).min(NUM_BUCKETS - 1)
    }

    fn pop_at_most(&mut self, max_bucket: usize) -> Option<(u64, usize)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(i, (r, _))| (self.bucket_of(*r), *i))
            .map(|(i, _)| i)?;
        if self.bucket_of(self.entries[best].0) > max_bucket {
            return None;
        }
        Some(self.entries.remove(best))
    }
}

/// A random rank: mostly small (in-range buckets), sometimes huge so the
/// shared overflow bucket is exercised too.
fn random_rank(rng: &mut SplitMix64) -> u64 {
    match rng.below(8) {
        0 => rng.next(), // overflow territory with high probability
        _ => rng.below(3 * NUM_BUCKETS as u64),
    }
}

#[test]
fn bucket_queue_drain_matches_stable_sort() {
    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(0xB0C4 ^ seed);
        let shift = rng.below(7) as u32;
        let n = 1 + rng.below(300) as usize;
        let mut q = BucketQueue::new(shift);
        let mut pushed: Vec<(u64, usize)> = Vec::with_capacity(n);
        for var in 0..n {
            let rank = random_rank(&mut rng);
            q.push(rank, var);
            pushed.push((rank, var));
        }
        assert_eq!(q.len(), n);
        // Stable sort by bucket preserves push order within a bucket —
        // the exact contract of the queue.
        let shifted = |r: u64| ((r >> shift) as usize).min(NUM_BUCKETS - 1);
        pushed.sort_by_key(|&(r, _)| shifted(r));
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, pushed, "seed {seed}, shift {shift}");
        assert!(q.is_empty());
        assert_eq!(q.min_bucket(), None);
    }
}

#[test]
fn bucket_queue_interleaved_ops_match_reference() {
    for seed in 0..25u64 {
        let mut rng = SplitMix64::new(0x1BAD_CAFE ^ seed.wrapping_mul(0x9E37));
        let shift = rng.below(5) as u32;
        let mut q = BucketQueue::new(shift);
        let mut model = RefQueue {
            entries: Vec::new(),
            shift,
        };
        let mut next_var = 0usize;
        for step in 0..600 {
            match rng.below(10) {
                // Pushes dominate so the queue builds depth; ranks may
                // land below the cursor after earlier pops.
                0..=4 => {
                    let rank = random_rank(&mut rng);
                    q.push(rank, next_var);
                    model.entries.push((rank, next_var));
                    next_var += 1;
                }
                5..=7 => {
                    assert_eq!(
                        q.pop(),
                        model.pop_at_most(NUM_BUCKETS - 1),
                        "seed {seed} step {step}: pop diverged"
                    );
                }
                8 => {
                    let bound = rng.below(NUM_BUCKETS as u64) as usize;
                    assert_eq!(
                        q.pop_at_most(bound),
                        model.pop_at_most(bound),
                        "seed {seed} step {step}: pop_at_most({bound}) diverged"
                    );
                }
                _ => {
                    q.clear();
                    model.entries.clear();
                }
            }
            assert_eq!(q.len(), model.entries.len(), "seed {seed} step {step}");
        }
        // Final drain must agree entry-for-entry.
        loop {
            let (got, want) = (q.pop(), model.pop_at_most(NUM_BUCKETS - 1));
            assert_eq!(got, want, "seed {seed}: final drain diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

#[test]
fn visit_epoch_matches_hashset_model() {
    for seed in 0..30u64 {
        let mut rng = SplitMix64::new(0xE90C ^ seed.wrapping_mul(31));
        let mut len = 1 + rng.below(64) as usize;
        let mut s = VisitEpoch::new(len);
        let mut model: HashSet<usize> = HashSet::new();
        for step in 0..500 {
            match rng.below(12) {
                0..=5 => {
                    let x = rng.below(len as u64) as usize;
                    let fresh = s.insert(x);
                    assert_eq!(fresh, model.insert(x), "seed {seed} step {step}");
                }
                6..=8 => {
                    let x = rng.below(len as u64) as usize;
                    assert_eq!(s.contains(x), model.contains(&x), "seed {seed} step {step}");
                }
                9 => {
                    s.clear();
                    model.clear();
                }
                _ => {
                    len += rng.below(16) as usize;
                    s.grow_to(len);
                    // Growth must not disturb membership.
                    for &m in &model {
                        assert!(s.contains(m), "seed {seed} step {step}: grow lost {m}");
                    }
                }
            }
            assert_eq!(s.count(), model.len(), "seed {seed} step {step}");
            assert_eq!(s.len(), len, "seed {seed} step {step}");
        }
    }
}

#[test]
fn visit_epoch_wraparound_is_transparent() {
    for seed in 0..30u64 {
        let mut rng = SplitMix64::new(0x3A9F ^ seed.wrapping_mul(0xC0FFEE));
        let len = 1 + rng.below(48) as usize;
        let mut s = VisitEpoch::new(len);
        // Park the epoch within a few clears of u32::MAX so every
        // schedule below crosses the hard-reset wrap at least once.
        s.jump_to_epoch(u32::MAX - rng.below(4) as u32);
        let mut model: HashSet<usize> = HashSet::new();
        for step in 0..200 {
            match rng.below(8) {
                0..=4 => {
                    let x = rng.below(len as u64) as usize;
                    assert_eq!(s.insert(x), model.insert(x), "seed {seed} step {step}");
                }
                5..=6 => {
                    let x = rng.below(len as u64) as usize;
                    assert_eq!(
                        s.contains(x),
                        model.contains(&x),
                        "seed {seed} step {step}: membership diverged across wrap"
                    );
                }
                _ => {
                    s.clear();
                    model.clear();
                }
            }
            assert_eq!(s.count(), model.len(), "seed {seed} step {step}");
        }
        // Stale marks from pre-wrap epochs must never resurface.
        s.clear();
        for x in 0..len {
            assert!(!s.contains(x), "seed {seed}: slot {x} leaked across wrap");
        }
    }
}
