//! Write-ahead log of applied [`UpdateBatch`]es.
//!
//! Layout: an 8-byte file magic, then a sequence of records
//!
//! ```text
//! [len: u32][seq: u64][crc: u32][payload: len bytes]      (little-endian)
//! ```
//!
//! where `crc` is the CRC-32 of `seq || payload` and `payload` encodes the
//! batch's unit updates. Records carry strictly consecutive sequence
//! numbers starting at 1; the log is append-only and never compacted (the
//! genesis checkpoint plus a full replay must always be able to
//! reconstruct the present — see the recovery ladder in
//! [`recover`](crate::recover)).
//!
//! **Commit protocol**: a batch is durable once its record is fully
//! written *and* fsynced. [`Wal::append`] does exactly that before
//! returning, so the in-memory state machine may only advance past a batch
//! the log already owns. A crash mid-append leaves a *torn tail* — a
//! partial record, or a complete-looking record whose CRC fails —
//! which [`Wal::open`] detects and truncates, recovering the longest
//! valid prefix. Anything after the first invalid boundary is discarded
//! even if later bytes happen to look like records: ordering is part of
//! the contract, and a hole means the tail is garbage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use incgraph_graph::{Update, UpdateBatch};

use crate::bytes::{put_u32, put_u64, put_u8, Reader};
use crate::crc::crc32;
use crate::{CrashPoint, DurableError};

/// Magic prefix of a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"IWAL0001";

/// First sequence number a log hands out.
pub const FIRST_SEQ: u64 = 1;

/// Encodes a batch payload: unit count, then tagged unit updates.
fn encode_batch(batch: &UpdateBatch) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, batch.len() as u32);
    for u in batch.updates() {
        match *u {
            Update::Insert { src, dst, weight } => {
                put_u8(&mut out, 0);
                put_u32(&mut out, src);
                put_u32(&mut out, dst);
                put_u32(&mut out, weight);
            }
            Update::Delete { src, dst } => {
                put_u8(&mut out, 1);
                put_u32(&mut out, src);
                put_u32(&mut out, dst);
            }
        }
    }
    out
}

fn decode_batch(payload: &[u8]) -> Result<UpdateBatch, DurableError> {
    let mut r = Reader::new(payload);
    let count = r.u32()? as usize;
    let mut updates = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        match r.u8()? {
            0 => {
                let src = r.u32()?;
                let dst = r.u32()?;
                let weight = r.u32()?;
                updates.push(Update::Insert { src, dst, weight });
            }
            1 => {
                let src = r.u32()?;
                let dst = r.u32()?;
                updates.push(Update::Delete { src, dst });
            }
            t => return Err(DurableError::Corrupt(format!("unknown update tag {t}"))),
        }
    }
    r.finish()?;
    Ok(UpdateBatch::from_updates(updates))
}

/// Encodes one full WAL record for `batch` with sequence number `seq`.
pub fn encode_record(seq: u64, batch: &UpdateBatch) -> Vec<u8> {
    let payload = encode_batch(batch);
    let mut sum = Vec::with_capacity(8 + payload.len());
    put_u64(&mut sum, seq);
    sum.extend_from_slice(&payload);
    let crc = crc32(&sum);

    let mut out = Vec::with_capacity(16 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, seq);
    put_u32(&mut out, crc);
    out.extend_from_slice(&payload);
    out
}

/// One decoded record with its byte offset inside the scanned body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Sequence number.
    pub seq: u64,
    /// Offset of the record's first byte within the scanned body.
    pub offset: usize,
    /// The decoded batch.
    pub batch: UpdateBatch,
}

/// Result of scanning a WAL body (the bytes after the file magic).
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Records of the longest valid prefix, in order.
    pub records: Vec<ScannedRecord>,
    /// Length of that prefix in bytes; everything after it is torn tail.
    pub valid_len: usize,
}

/// Scans `body` for records, expecting the first sequence number to be
/// `first_seq` and each following record to be its predecessor plus one.
/// Stops at the first torn, corrupt, or out-of-sequence boundary and
/// reports the longest valid prefix — this is the total function the
/// recovery path and the property tests share.
pub fn scan_records(body: &[u8], first_seq: u64) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected = first_seq;
    loop {
        let rest = &body[pos..];
        if rest.len() < 16 {
            break; // header torn (or clean EOF at rest.is_empty())
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
        let Some(total) = len.checked_add(16).filter(|&t| t <= rest.len()) else {
            break; // payload torn
        };
        let payload = &rest[16..total];
        let mut sum = Vec::with_capacity(8 + payload.len());
        put_u64(&mut sum, seq);
        sum.extend_from_slice(payload);
        if crc32(&sum) != crc {
            break; // bit rot or a torn write that still filled the length
        }
        if seq != expected {
            break; // hole or replayed tail: ordering is part of validity
        }
        let Ok(batch) = decode_batch(payload) else {
            break; // CRC-clean but semantically malformed: treat as tail
        };
        records.push(ScannedRecord {
            seq,
            offset: pos,
            batch,
        });
        pos += total;
        expected += 1;
    }
    Scan {
        records,
        valid_len: pos,
    }
}

/// An open, append-position WAL file.
pub struct Wal {
    file: File,
    path: PathBuf,
    end: u64,
}

/// Result of [`Wal::open`]: the log, its valid records, and how many torn
/// bytes were truncated away.
pub struct WalOpen {
    /// The log, positioned for appends.
    pub wal: Wal,
    /// Valid records, in sequence order.
    pub records: Vec<ScannedRecord>,
    /// Torn-tail bytes discarded by recovery truncation.
    pub truncated_bytes: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, scanning and truncating any
    /// torn tail so the file ends at a record boundary. Records are
    /// expected to start at [`FIRST_SEQ`]; a store whose history begins
    /// after a shipped snapshot opens with [`Wal::open_from`] instead.
    pub fn open(path: &Path) -> Result<WalOpen, DurableError> {
        Self::open_from(path, FIRST_SEQ)
    }

    /// [`Wal::open`] with an explicit first expected sequence number —
    /// `base + 1` for a replica whose log begins after a snapshot's
    /// covered sequence. Records that do not start at `first_seq` are
    /// treated like any other out-of-sequence tail and truncated.
    pub fn open_from(path: &Path, first_seq: u64) -> Result<WalOpen, DurableError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)?;

        let mut truncated = 0u64;
        if contents.len() < WAL_MAGIC.len() || &contents[..WAL_MAGIC.len()] != WAL_MAGIC {
            // A short prefix of the magic is a crash during creation —
            // recover to an empty log. Anything else is not a WAL.
            if !contents.is_empty() && !WAL_MAGIC.starts_with(contents.as_slice()) {
                return Err(DurableError::Corrupt(format!(
                    "{} is not a WAL file",
                    path.display()
                )));
            }
            truncated += contents.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            let end = WAL_MAGIC.len() as u64;
            return Ok(WalOpen {
                wal: Wal {
                    file,
                    path: path.to_path_buf(),
                    end,
                },
                records: Vec::new(),
                truncated_bytes: truncated,
            });
        }

        let body = &contents[WAL_MAGIC.len()..];
        let scan = scan_records(body, first_seq);
        let valid_end = (WAL_MAGIC.len() + scan.valid_len) as u64;
        truncated += contents.len() as u64 - valid_end;
        if truncated > 0 {
            file.set_len(valid_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;
        let mut records = scan.records;
        for r in &mut records {
            r.offset += WAL_MAGIC.len(); // report absolute file offsets
        }
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                end: valid_end,
            },
            records,
            truncated_bytes: truncated,
        })
    }

    /// File path of the log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current append offset (= file length).
    pub fn end_offset(&self) -> u64 {
        self.end
    }

    /// Appends and fsyncs one record. On success the batch is durable:
    /// the record is fully on stable storage before this returns.
    ///
    /// `crash` injects a failure for the crash-recovery harness:
    /// [`CrashPoint::WalPreFsync`] writes a torn prefix of the record and
    /// skips the fsync (the batch must *not* survive recovery);
    /// [`CrashPoint::WalPostFsync`] completes the append and fsync, then
    /// dies (the batch *must* survive recovery). Either way the in-process
    /// `Wal` is dead — the harness drops it and recovers from disk.
    pub fn append(
        &mut self,
        seq: u64,
        batch: &UpdateBatch,
        crash: Option<CrashPoint>,
    ) -> Result<(), DurableError> {
        let record = encode_record(seq, batch);
        match crash {
            Some(CrashPoint::WalPreFsync) => {
                // Torn write: half the record reaches the file, no fsync.
                let torn = &record[..record.len() / 2];
                self.file.write_all(torn)?;
                self.file.flush()?;
                return Err(DurableError::InjectedCrash(CrashPoint::WalPreFsync));
            }
            _ => {
                // The fsync-latency seam: `wal.commit` is the time one
                // committed record spends reaching stable storage.
                let _span = incgraph_obs::span("wal.commit");
                self.file.write_all(&record)?;
                self.file.sync_data()?;
            }
        }
        self.end += record.len() as u64;
        incgraph_obs::counter("wal.records", 1);
        incgraph_obs::counter("wal.bytes", record.len() as u64);
        if crash == Some(CrashPoint::WalPostFsync) {
            return Err(DurableError::InjectedCrash(CrashPoint::WalPostFsync));
        }
        Ok(())
    }

    /// Truncates the log at an absolute file offset (a record boundary
    /// reported by [`Wal::open`]) — used when replay rejects a CRC-clean
    /// but semantically impossible suffix.
    pub fn truncate_to(&mut self, offset: u64) -> Result<(), DurableError> {
        self.file.set_len(offset)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(offset))?;
        self.end = offset;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u32) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.insert(n, n + 1, 2 * n + 1).delete(n, n + 2);
        b
    }

    #[test]
    fn record_roundtrip_via_scan() {
        let mut body = Vec::new();
        for seq in 1..=3u64 {
            body.extend_from_slice(&encode_record(seq, &batch(seq as u32)));
        }
        let scan = scan_records(&body, FIRST_SEQ);
        assert_eq!(scan.valid_len, body.len());
        assert_eq!(scan.records.len(), 3);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.batch, batch(r.seq as u32));
        }
    }

    #[test]
    fn out_of_sequence_record_truncates() {
        let mut body = encode_record(1, &batch(0));
        let first_len = body.len();
        body.extend_from_slice(&encode_record(3, &batch(1))); // hole: 2 missing
        let scan = scan_records(&body, FIRST_SEQ);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first_len);
    }

    #[test]
    fn open_truncates_torn_tail_and_recovers_prefix() {
        let dir = std::env::temp_dir().join(format!("incgraph-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let _ = std::fs::remove_file(&path);

        {
            let mut open = Wal::open(&path).unwrap();
            open.wal.append(1, &batch(0), None).unwrap();
            open.wal.append(2, &batch(1), None).unwrap();
        }
        // Simulate a crash mid-append: a third record, half-written.
        let torn = encode_record(3, &batch(2));
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn[..torn.len() / 2]).unwrap();
        }
        let open = Wal::open(&path).unwrap();
        assert_eq!(open.records.len(), 2);
        assert!(open.truncated_bytes > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            open.wal.end_offset()
        );
        // The recovered log accepts the next append cleanly.
        let mut wal = open.wal;
        wal.append(3, &batch(2), None).unwrap();
        let reopened = Wal::open(&path).unwrap();
        assert_eq!(reopened.records.len(), 3);
        assert_eq!(reopened.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_wal_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("incgraph-wal-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a.wal");
        std::fs::write(&path, b"definitely not a log").unwrap();
        assert!(matches!(Wal::open(&path), Err(DurableError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
