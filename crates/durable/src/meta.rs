//! Small durable metadata sidecars: the replication **epoch** and the
//! WAL **base** sequence.
//!
//! Both are a single `u64` in a tiny CRC-framed file
//!
//! ```text
//! [magic: 8 bytes][value: u64][crc: u32 over value]    (little-endian)
//! ```
//!
//! written atomically (temp file + fsync + rename + directory fsync) so a
//! crash leaves either the old value or the new one, never a torn file.
//!
//! - **`EPOCH`** is the fencing term of primary→replica replication: it
//!   starts at 1, is bumped durably by promotion, and is also stamped
//!   into the manifest. A missing file means a store predating
//!   replication and reads as epoch 1; a *corrupt* file is an error —
//!   silently defaulting it could un-fence a deposed primary.
//! - **`BASE`** is the sequence number the WAL's history starts *after*:
//!   0 for ordinary stores (records begin at [`FIRST_SEQ`]), and the
//!   snapshot's covered sequence for a replica bootstrapped from a
//!   shipped snapshot, whose log begins at `base + 1` and whose base
//!   checkpoint plays the role genesis plays elsewhere.
//!
//! [`FIRST_SEQ`]: crate::wal::FIRST_SEQ

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use crate::crc::crc32;
use crate::DurableError;

/// File name of the replication epoch inside a durable directory.
pub const EPOCH_NAME: &str = "EPOCH";
/// Magic prefix of the epoch file.
pub const EPOCH_MAGIC: &[u8; 8] = b"IEPO0001";
/// Epoch of a store that has never seen a promotion.
pub const FIRST_EPOCH: u64 = 1;

/// File name of the WAL base-sequence marker inside a durable directory.
pub const BASE_NAME: &str = "BASE";
/// Magic prefix of the base file.
pub const BASE_MAGIC: &[u8; 8] = b"IBAS0001";

fn write_u64_file(dir: &Path, name: &str, magic: &[u8; 8], value: u64) -> Result<(), DurableError> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&value.to_le_bytes());
    bytes.extend_from_slice(&crc32(&value.to_le_bytes()).to_le_bytes());
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(&bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path)?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

fn read_u64_file(
    dir: &Path,
    name: &str,
    magic: &[u8; 8],
    default: u64,
) -> Result<u64, DurableError> {
    let path = dir.join(name);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(default),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() != 20 || bytes[..8] != *magic {
        return Err(DurableError::Corrupt(format!(
            "{}: bad {name} file",
            path.display()
        )));
    }
    let value = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let stored = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if crc32(&value.to_le_bytes()) != stored {
        return Err(DurableError::Corrupt(format!(
            "{}: {name} checksum mismatch",
            path.display()
        )));
    }
    Ok(value)
}

/// Durably records the replication epoch.
pub fn write_epoch(dir: &Path, epoch: u64) -> Result<(), DurableError> {
    write_u64_file(dir, EPOCH_NAME, EPOCH_MAGIC, epoch)
}

/// Reads the replication epoch ([`FIRST_EPOCH`] when the file is absent;
/// a corrupt file is an error, never a silent default).
pub fn read_epoch(dir: &Path) -> Result<u64, DurableError> {
    read_u64_file(dir, EPOCH_NAME, EPOCH_MAGIC, FIRST_EPOCH)
}

/// Durably records the WAL base sequence.
pub fn write_base(dir: &Path, base: u64) -> Result<(), DurableError> {
    write_u64_file(dir, BASE_NAME, BASE_MAGIC, base)
}

/// Reads the WAL base sequence (0 when the file is absent).
pub fn read_base(dir: &Path) -> Result<u64, DurableError> {
    read_u64_file(dir, BASE_NAME, BASE_MAGIC, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incgraph-meta-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn epoch_defaults_roundtrips_and_rejects_corruption() {
        let dir = temp_dir("epoch");
        assert_eq!(read_epoch(&dir).unwrap(), FIRST_EPOCH);
        write_epoch(&dir, 7).unwrap();
        assert_eq!(read_epoch(&dir).unwrap(), 7);
        let path = dir.join(EPOCH_NAME);
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(read_epoch(&dir), Err(DurableError::Corrupt(_))),
            "a corrupt epoch must never silently default"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn base_defaults_to_zero_and_roundtrips() {
        let dir = temp_dir("base");
        assert_eq!(read_base(&dir).unwrap(), 0);
        write_base(&dir, 42).unwrap();
        assert_eq!(read_base(&dir).unwrap(), 42);
        fs::remove_dir_all(&dir).unwrap();
    }
}
