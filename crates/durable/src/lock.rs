//! Single-opener store lock.
//!
//! A durable directory has exactly one writer protocol: one process (one
//! [`DurableSession`](crate::DurableSession)) owns the WAL append position
//! and the checkpoint/manifest rotation. Two processes appending to the
//! same `wal.log` interleave records and corrupt the sequence chain; two
//! writers rotating checkpoints race the manifest rename. Before this
//! module that contract was only documented; a long-running `incgraph
//! serve` plus a concurrent `incgraph recover` would silently violate it.
//!
//! The lock is a `LOCK` file created with `O_EXCL` inside the store
//! directory, holding the owner's numeric PID. Acquisition fails with the
//! typed [`DurableError::StoreBusy`](crate::DurableError::StoreBusy) when
//! a *live* owner holds it. A stale lock — the owner PID no longer exists,
//! the normal aftermath of `kill -9` or an injected crash — is broken and
//! re-acquired automatically, so crash recovery never needs a manual
//! `rm LOCK`.
//!
//! Liveness is probed via `/proc/<pid>` where that filesystem exists
//! (Linux, which is where CI and the service run). On platforms without
//! `/proc`, an existing lock is conservatively treated as live: breaking
//! another process's lock is the one failure mode this module exists to
//! prevent, so the fallback errs toward `StoreBusy`.

use std::fs::OpenOptions;
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use crate::DurableError;

/// File name of the lock inside a durable directory.
pub const LOCK_NAME: &str = "LOCK";

/// An acquired store lock. Releasing is automatic: dropping the guard
/// removes the lock file. A process killed before the drop leaves a
/// stale file that the next acquirer breaks via the PID liveness probe.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

/// Whether a process with this PID is currently alive, as far as this
/// platform lets us tell: `Some(true)`/`Some(false)` with `/proc`,
/// `None` (unknowable) without it.
fn pid_alive(pid: u32) -> Option<bool> {
    if !Path::new("/proc").is_dir() {
        return None;
    }
    Some(Path::new(&format!("/proc/{pid}")).exists())
}

impl StoreLock {
    /// Acquires the lock for `dir`, breaking a stale one if its owner is
    /// provably dead. Returns [`DurableError::StoreBusy`] when a live
    /// owner (possibly this very process, via another session) holds it.
    pub fn acquire(dir: &Path) -> Result<StoreLock, DurableError> {
        let path = dir.join(LOCK_NAME);
        // One break attempt is enough: if the file reappears after we
        // removed a stale one, a concurrent acquirer won the race and is
        // a live owner by definition.
        for attempt in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let pid = std::process::id();
                    f.write_all(format!("{pid}\n").as_bytes())?;
                    f.sync_all()?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let owner = read_owner(&path);
                    let stale = matches!(owner.map(pid_alive), Some(Some(false)));
                    if stale && attempt == 0 {
                        // Breaking a dead owner's lock; ignore a racing
                        // removal by another acquirer.
                        match std::fs::remove_file(&path) {
                            Ok(()) => continue,
                            Err(e) if e.kind() == ErrorKind::NotFound => continue,
                            Err(e) => return Err(DurableError::Io(e)),
                        }
                    }
                    return Err(DurableError::StoreBusy {
                        dir: dir.display().to_string(),
                        pid: owner.unwrap_or(0),
                    });
                }
                Err(e) => return Err(DurableError::Io(e)),
            }
        }
        unreachable!("second O_EXCL attempt either succeeds or returns");
    }

    /// The lock file's path (for diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn read_owner(path: &Path) -> Option<u32> {
    let mut s = String::new();
    std::fs::File::open(path)
        .ok()?
        .read_to_string(&mut s)
        .ok()?;
    s.trim().parse().ok()
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Best effort: a failed removal leaves a stale lock that the
        // next acquirer's liveness probe breaks.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incgraph-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquire_is_busy_and_drop_releases() {
        let dir = temp_dir("busy");
        let lock = StoreLock::acquire(&dir).unwrap();
        match StoreLock::acquire(&dir) {
            Err(DurableError::StoreBusy { pid, .. }) => {
                assert_eq!(pid, std::process::id(), "owner pid is recorded")
            }
            other => panic!("expected StoreBusy, got {other:?}"),
        }
        drop(lock);
        let relock = StoreLock::acquire(&dir).expect("released lock re-acquires");
        drop(relock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_of_a_dead_pid_is_broken() {
        if Path::new("/proc").is_dir() {
            let dir = temp_dir("stale");
            // PIDs are sequential from low numbers; u32::MAX - 7 is not a
            // live process on any sane system.
            std::fs::write(dir.join(LOCK_NAME), format!("{}\n", u32::MAX - 7)).unwrap();
            let lock = StoreLock::acquire(&dir).expect("stale lock must be broken");
            drop(lock);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn unparsable_lock_is_treated_as_live() {
        let dir = temp_dir("garbled");
        std::fs::write(dir.join(LOCK_NAME), "not a pid").unwrap();
        assert!(matches!(
            StoreLock::acquire(&dir),
            Err(DurableError::StoreBusy { pid: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
