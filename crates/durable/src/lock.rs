//! Single-opener store lock.
//!
//! A durable directory has exactly one writer protocol: one process (one
//! [`DurableSession`](crate::DurableSession)) owns the WAL append position
//! and the checkpoint/manifest rotation. Two processes appending to the
//! same `wal.log` interleave records and corrupt the sequence chain; two
//! writers rotating checkpoints race the manifest rename. Before this
//! module that contract was only documented; a long-running `incgraph
//! serve` plus a concurrent `incgraph recover` would silently violate it.
//!
//! The lock is an OS advisory file lock (`File::try_lock`: `flock`-style
//! on Unix, `LockFileEx` on Windows) held on a `LOCK` file inside the
//! store directory. Acquisition fails with the typed
//! [`DurableError::StoreBusy`](crate::DurableError::StoreBusy) while any
//! live owner — including another session in this same process — holds
//! it. The kernel releases the lock when the owner's file handle closes,
//! so a `kill -9` or an injected crash frees it instantly: there is no
//! stale-lock state and therefore no lock-breaking step to race on. (An
//! earlier existence-based design probed `/proc/<pid>` and deleted dead
//! owners' files; two concurrent breakers could each delete the other's
//! freshly created lock, ending with two live writers — the exact
//! corruption the lock exists to prevent.)
//!
//! The file's content is purely diagnostic: the owner writes its PID
//! after acquiring so a losing opener can report who holds the store.
//! The file itself is left in place on release — existence means
//! nothing, only the kernel lock does. Unlinking it would reopen a race
//! (a waiter holding the old inode and a newcomer creating a fresh one
//! could both acquire "the" lock on different inodes).

use std::fs::{File, OpenOptions, TryLockError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::DurableError;

/// File name of the lock inside a durable directory.
pub const LOCK_NAME: &str = "LOCK";

/// An acquired store lock. The OS lock is held for exactly as long as
/// this guard (its file handle) lives; dropping it — or dying, however
/// abruptly — releases it.
#[derive(Debug)]
pub struct StoreLock {
    file: File,
    path: PathBuf,
}

impl StoreLock {
    /// Acquires the lock for `dir`. Returns [`DurableError::StoreBusy`]
    /// when a live owner (possibly this very process, via another
    /// session) holds it.
    pub fn acquire(dir: &Path) -> Result<StoreLock, DurableError> {
        let path = dir.join(LOCK_NAME);
        // Never truncate on open: until the lock is ours the file's
        // content is the current owner's PID advertisement.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(format!("{}\n", std::process::id()).as_bytes())?;
                file.sync_all()?;
                Ok(StoreLock { file, path })
            }
            Err(TryLockError::WouldBlock) => {
                let mut s = String::new();
                let _ = file.read_to_string(&mut s);
                Err(DurableError::StoreBusy {
                    dir: dir.display().to_string(),
                    pid: s.trim().parse().unwrap_or(0),
                })
            }
            Err(TryLockError::Error(e)) => Err(DurableError::Io(e)),
        }
    }

    /// The lock file's path (for diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Clear the PID advertisement; the kernel lock itself is
        // released when `file` closes. Deliberately no unlink — see the
        // module docs.
        let _ = self.file.set_len(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incgraph-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquire_is_busy_and_drop_releases() {
        let dir = temp_dir("busy");
        let lock = StoreLock::acquire(&dir).unwrap();
        match StoreLock::acquire(&dir) {
            Err(DurableError::StoreBusy { pid, .. }) => {
                assert_eq!(pid, std::process::id(), "owner pid is recorded")
            }
            other => panic!("expected StoreBusy, got {other:?}"),
        }
        drop(lock);
        let relock = StoreLock::acquire(&dir).expect("released lock re-acquires");
        drop(relock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_lock_file_of_a_dead_owner_does_not_block() {
        let dir = temp_dir("leftover");
        // Simulate the aftermath of `kill -9`: the file (with the dead
        // owner's pid) survives, but the kernel lock died with the
        // process — acquisition must succeed without any manual cleanup.
        std::fs::write(dir.join(LOCK_NAME), format!("{}\n", u32::MAX - 7)).unwrap();
        let lock = StoreLock::acquire(&dir).expect("unlocked leftover must be ignorable");
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbled_lock_content_is_diagnostic_only() {
        let dir = temp_dir("garbled");
        // Content never gates acquisition: an unlocked file with garbage
        // acquires fine...
        std::fs::write(dir.join(LOCK_NAME), "not a pid").unwrap();
        let lock = StoreLock::acquire(&dir).unwrap();
        // ...and while locked, a second opener is busy regardless of
        // what it can parse out of the file.
        match StoreLock::acquire(&dir) {
            Err(DurableError::StoreBusy { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected StoreBusy, got {other:?}"),
        }
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn release_leaves_the_file_but_clears_the_pid() {
        let dir = temp_dir("release");
        let lock = StoreLock::acquire(&dir).unwrap();
        let path = lock.path().to_path_buf();
        drop(lock);
        assert!(path.exists(), "lock file is not unlinked on release");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            Vec::<u8>::new(),
            "pid advertisement is cleared on release"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
