//! Verified recovery: checkpoint + incremental WAL replay.
//!
//! The decision tree, from cheapest to last resort:
//!
//! 1. **Manifest pointer.** If `MANIFEST` is readable and its checkpoint
//!    loads (magic, whole-file CRC, every state blob restores), use it.
//! 2. **Directory scan.** Otherwise try every `checkpoint-*.ckpt` newest
//!    first — this is what makes the post-rename/pre-manifest crash
//!    window safe, and what tolerates bit rot in any single checkpoint.
//!    The genesis checkpoint (sequence 0) is always a candidate because
//!    it is never rotated out.
//! 3. **Unrecoverable.** No checkpoint loads — there is no base state to
//!    replay from, and the caller is told so explicitly rather than being
//!    handed a silently empty world.
//!
//! From the chosen base, the WAL suffix (records with sequence numbers
//! beyond the checkpoint's coverage) is replayed through the *normal*
//! incremental pipeline — `apply_validated` on the graph, then
//! [`update_with`] per state under the session's [`FallbackPolicy`] —
//! so replay cost is the paper's bounded incremental cost, and a replayed
//! batch that turns out unbounded degrades to batch recompute exactly
//! like a live one would. Torn WAL tails were already truncated by
//! [`Wal::open`]; a CRC-clean record that nonetheless fails validation
//! against its deterministic predecessor state is impossible in a sane
//! history, so it is treated as corruption: the log is truncated there
//! and the drop is reported.

use std::path::Path;

use incgraph_algos::{update_with, ExecOptions};
use incgraph_graph::DynamicGraph;

use crate::checkpoint::{checkpoint_path, list_checkpoints, load_checkpoint, read_manifest};
use crate::wal::Wal;
use crate::{DurableError, DurableOptions, DurableSession, WAL_NAME};

/// What recovery did, for logs, the CLI, and the crash oracle's asserts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL sequence covered by the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Whether that checkpoint came via the manifest pointer (`false`
    /// means the manifest was missing, stale, or corrupt and the
    /// directory scan found the base).
    pub used_manifest: bool,
    /// Checkpoint files that were tried and rejected as invalid.
    pub checkpoints_skipped: usize,
    /// WAL records replayed incrementally on top of the checkpoint.
    pub wal_records_replayed: usize,
    /// Torn-tail bytes truncated from the WAL on open.
    pub wal_truncated_bytes: u64,
    /// CRC-clean records dropped because they failed semantic validation
    /// during replay (0 in any history produced by this crate).
    pub wal_records_dropped: usize,
    /// Replayed (state, batch) updates that fell back to batch recompute
    /// under the [`FallbackPolicy`](incgraph_core::fallback::FallbackPolicy).
    pub fallbacks: usize,
}

/// Recovers the durable store in `dir` into a live [`DurableSession`].
pub fn recover(
    dir: &Path,
    options: DurableOptions,
) -> Result<(DurableSession, RecoveryReport), DurableError> {
    let mut report = RecoveryReport::default();

    // The lock first: recovery mutates the store (tail truncation,
    // subsequent appends), so it needs the same exclusivity as a live
    // session. A recover racing a running server fails fast with
    // `StoreBusy` instead of corrupting the WAL under it.
    let lock = crate::StoreLock::acquire(dir)?;

    // Replication metadata: `base` is the sequence the retained WAL
    // starts after (nonzero only on snapshot-bootstrapped replicas), and
    // the epoch is the store's fencing term. A corrupt EPOCH file is a
    // hard error — defaulting it could un-fence a deposed primary.
    let base = crate::meta::read_base(dir)?;
    let epoch = crate::meta::read_epoch(dir)?;

    // The log next: its valid prefix bounds which checkpoints are
    // trustworthy (a checkpoint claiming to cover more history than the
    // log holds cannot be reconciled with full-replay semantics).
    let opened = Wal::open_from(&dir.join(WAL_NAME), base + 1)?;
    let mut wal = opened.wal;
    let records = opened.records;
    report.wal_truncated_bytes = opened.truncated_bytes;
    let last_logged = records.last().map_or(base, |r| r.seq);

    // Candidate checkpoints, newest first. The manifest is a hint, not
    // an authority: a crash between checkpoint rename and manifest update
    // leaves a perfectly valid checkpoint the manifest does not know
    // about, and the directory scan must still prefer it.
    let manifest = read_manifest(dir).map(|(seq, _)| seq);
    let mut candidates = list_checkpoints(dir);
    if let Some(seq) = manifest {
        if !candidates.contains(&seq) {
            candidates.push(seq);
            candidates.sort_unstable_by(|a, b| b.cmp(a));
        }
    }

    let mut chosen: Option<(u64, DynamicGraph, Vec<_>)> = None;
    for seq in candidates {
        if seq > last_logged || seq < base {
            // Ahead of the log's proof, or behind the snapshot base
            // (whose pre-base WAL records no longer exist, so an older
            // checkpoint could never be replayed up to the present).
            report.checkpoints_skipped += 1;
            continue;
        }
        match load_checkpoint(&checkpoint_path(dir, seq)) {
            Ok(loaded) => {
                report.used_manifest = manifest == Some(seq);
                chosen = Some(loaded);
                break;
            }
            Err(_) => report.checkpoints_skipped += 1,
        }
    }
    let Some((covered, mut graph, mut states)) = chosen else {
        return Err(DurableError::Unrecoverable(format!(
            "{}: no valid checkpoint (genesis included) to recover from",
            dir.display()
        )));
    };
    report.checkpoint_seq = covered;

    // Incremental replay of the suffix through the normal engine.
    let replay_span = incgraph_obs::span("recover.replay");
    let exec = ExecOptions {
        policy: options.policy,
        micro_batch: options.micro_batch,
        ..Default::default()
    };
    let mut next_seq = covered + 1;
    for record in &records {
        if record.seq <= covered {
            continue;
        }
        let applied = match record.batch.apply_validated(&mut graph) {
            Ok(applied) => applied,
            Err(_) => {
                // A logged batch invalid against its own deterministic
                // predecessor state: the suffix is garbage. Cut it at
                // this record boundary and keep the valid history.
                report.wal_records_dropped = records.iter().filter(|r| r.seq >= record.seq).count();
                wal.truncate_to(record.offset as u64)?;
                break;
            }
        };
        for s in states.iter_mut() {
            let r = update_with(s.as_mut(), &graph, &applied, &exec);
            if r.fell_back() {
                report.fallbacks += 1;
            }
        }
        report.wal_records_replayed += 1;
        next_seq = record.seq + 1;
    }
    drop(replay_span);
    if incgraph_obs::enabled() {
        incgraph_obs::gauge("recover.checkpoint_seq", report.checkpoint_seq);
        incgraph_obs::counter("recover.replayed", report.wal_records_replayed as u64);
        incgraph_obs::counter("recover.fallbacks", report.fallbacks as u64);
        incgraph_obs::counter(
            "recover.skipped_checkpoints",
            report.checkpoints_skipped as u64,
        );
    }

    Ok((
        DurableSession {
            dir: dir.to_path_buf(),
            wal,
            graph,
            states,
            options,
            next_seq,
            epoch,
            base_seq: base,
            crash: None,
            lock,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MANIFEST_NAME;
    use incgraph_algos::{CcState, IncrementalState, LccState, SsspState};
    use incgraph_graph::UpdateBatch;
    use std::fs;
    use std::path::PathBuf;

    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(false, n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, 1);
        }
        g
    }

    fn states_for(g: &DynamicGraph) -> Vec<Box<dyn IncrementalState>> {
        vec![
            Box::new(SsspState::batch(g, 0).0),
            Box::new(CcState::batch(g).0),
            Box::new(LccState::batch(g).0),
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("incgraph-recover-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &Path) -> Vec<Vec<u8>> {
        let g0 = ring(10);
        let mut session =
            DurableSession::create(dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        let mut b = UpdateBatch::new();
        b.insert(0, 4, 2).delete(1, 2);
        session.apply(&b).unwrap();
        session.checkpoint().unwrap();
        let mut b = UpdateBatch::new();
        b.insert(1, 2, 5).delete(0, 4);
        session.apply(&b).unwrap();
        session.states().iter().map(|s| s.save_state()).collect()
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older_plus_full_replay() {
        let dir = temp_dir("ladder");
        let live = seeded_store(&dir);
        // Rot the newest checkpoint (seq 1); recovery must step down to
        // genesis and replay the whole log.
        let newest = checkpoint_path(&dir, 1);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (session, report) = recover(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.checkpoint_seq, 0, "fell back to genesis");
        assert_eq!(report.checkpoints_skipped, 1, "the rotten newest one");
        assert!(!report.used_manifest, "manifest points at the rotten one");
        assert_eq!(report.wal_records_replayed, 2, "full replay");
        assert_eq!(
            session
                .states()
                .iter()
                .map(|s| s.save_state())
                .collect::<Vec<_>>(),
            live
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_recovers_by_directory_scan() {
        let dir = temp_dir("noman");
        let live = seeded_store(&dir);
        fs::remove_file(dir.join(MANIFEST_NAME)).unwrap();
        let (session, report) = recover(&dir, DurableOptions::default()).unwrap();
        assert!(!report.used_manifest);
        assert_eq!(report.checkpoint_seq, 1);
        assert_eq!(
            session
                .states()
                .iter()
                .map(|s| s.save_state())
                .collect::<Vec<_>>(),
            live
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_checkpoints_gone_is_unrecoverable() {
        let dir = temp_dir("gone");
        seeded_store(&dir);
        for seq in [0u64, 1] {
            fs::remove_file(checkpoint_path(&dir, seq)).unwrap();
        }
        assert!(matches!(
            recover(&dir, DurableOptions::default()),
            Err(DurableError::Unrecoverable(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_ahead_of_truncated_wal_is_skipped() {
        let dir = temp_dir("ahead");
        seeded_store(&dir);
        // Lop off the whole log: both checkpoints (seq 1) now claim more
        // history than the log proves, so recovery lands on genesis with
        // nothing to replay.
        fs::remove_file(dir.join(WAL_NAME)).unwrap();
        let (session, report) = recover(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.wal_records_replayed, 0);
        assert_eq!(session.last_seq(), 0);
        // The recovered world equals the genesis world.
        let g0 = ring(10);
        let fresh = states_for(&g0);
        assert_eq!(
            session
                .states()
                .iter()
                .map(|s| s.save_state())
                .collect::<Vec<_>>(),
            fresh.iter().map(|s| s.save_state()).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_session_keeps_accepting_updates() {
        let dir = temp_dir("resume");
        seeded_store(&dir);
        let (mut session, _) = recover(&dir, DurableOptions::default()).unwrap();
        let mut b = UpdateBatch::new();
        b.insert(3, 8, 1);
        session.apply(&b).unwrap();
        assert_eq!(session.last_seq(), 3);
        let live: Vec<_> = session.states().iter().map(|s| s.save_state()).collect();
        drop(session);
        let (again, report) = recover(&dir, DurableOptions::default()).unwrap();
        assert_eq!(
            report.wal_records_replayed, 2,
            "seq 2 and 3 on top of ckpt 1"
        );
        assert_eq!(
            again
                .states()
                .iter()
                .map(|s| s.save_state())
                .collect::<Vec<_>>(),
            live
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
