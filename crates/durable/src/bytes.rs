//! Little-endian byte codec shared by the WAL and checkpoint formats.
//!
//! Deliberately mirrors the shape of `incgraph_algos::persist` (which is
//! private to that crate): length-prefixed, bounds-checked reads that
//! fail loudly on truncation or oversized lengths instead of allocating.
//! Corruption here surfaces as [`DurableError::Corrupt`]; whether that is
//! fatal depends on where it happens (a torn WAL tail is truncated, a
//! corrupt checkpoint is skipped for an older one).

use crate::DurableError;

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn corrupt(what: &str) -> DurableError {
    DurableError::Corrupt(what.to_string())
}

/// Bounds-checked little-endian reader.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DurableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DurableError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a declared element count, rejecting counts that cannot fit in
    /// the remaining bytes — corrupt lengths must fail, not allocate.
    pub(crate) fn len(&mut self, elem_bytes: usize) -> Result<usize, DurableError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes as u64)
            .is_none_or(|b| b > remaining)
        {
            return Err(corrupt("declared length exceeds remaining bytes"));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string written by [`put_bytes`].
    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], DurableError> {
        let n = self.len(1)?;
        self.take(n)
    }

    pub(crate) fn finish(self) -> Result<(), DurableError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_bounds() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_bytes(&mut out, b"payload");
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"payload");
        r.finish().unwrap();
    }

    #[test]
    fn oversized_length_rejected() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut r = Reader::new(&out);
        assert!(r.len(8).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = Reader::new(b"x");
        assert!(r.finish().is_err());
    }
}
