//! Crash-safe durability for the incremental pipeline: a write-ahead log
//! of applied `ΔG` batches, periodic checkpoints of the full fixpoint
//! state, and verified recovery that replays the WAL suffix *through the
//! normal incremental engine*.
//!
//! The design follows the classic ARIES-style split, specialized to the
//! paper's model where the durable state is tiny and deterministic:
//!
//! - **WAL** ([`wal`]): every applied [`UpdateBatch`] is appended and
//!   fsynced *before* the in-memory state machine advances past it. The
//!   log is the ground truth of which `ΔG` are part of history.
//! - **Checkpoints** ([`checkpoint`]): the graph plus every tracked
//!   class's `SaveState` essence (`D^r`, stamps, clock, query params),
//!   written atomically and CRC-verified as a unit. Checkpoints only
//!   accelerate recovery; the *genesis* checkpoint (sequence 0) is never
//!   rotated out, so full replay always remains possible.
//! - **Recovery** ([`recover`]): newest valid checkpoint + incremental
//!   replay of the WAL suffix via `update_with`, so even recovery
//!   enjoys the paper's bounded incremental cost — and inherits the
//!   [`FallbackPolicy`] degradation ladder (incremental replay → batch
//!   recompute) when a replayed batch turns out unbounded.
//!
//! Because every algorithm here is deterministic, recovery is *verifiable*:
//! replaying `r` logged batches from any checkpoint must produce a state
//! whose essence is bit-identical to the uninterrupted run after `r`
//! batches. The differential oracle's crash mode checks exactly that at
//! every [`CrashPoint`].

mod bytes;
pub mod checkpoint;
pub mod crc;
pub mod lock;
pub mod meta;
pub mod recover;
pub mod wal;

pub use lock::{StoreLock, LOCK_NAME};
pub use meta::{
    read_base, read_epoch, write_base, write_epoch, BASE_NAME, EPOCH_NAME, FIRST_EPOCH,
};
pub use recover::{recover, RecoveryReport};
pub use wal::{encode_record, scan_records, Scan, ScannedRecord, Wal, FIRST_SEQ};

use std::fmt;
use std::path::{Path, PathBuf};

use incgraph_algos::{update_with, ExecOptions, IncrementalState, StateLoadError};
use incgraph_core::fallback::FallbackPolicy;
use incgraph_core::metrics::BoundednessReport;
use incgraph_graph::{AppliedBatch, BatchError, DynamicGraph, UpdateBatch};

/// File name of the write-ahead log inside a durable directory.
pub const WAL_NAME: &str = "wal.log";

/// Injectable crash sites, exercised by the crash-recovery harness and
/// the `DURABLE_CRASH_AT` environment variable.
///
/// Each point pins down a durability contract:
///
/// | point | batch durable? | recovery must see |
/// |-------|----------------|-------------------|
/// | [`WalPreFsync`](Self::WalPreFsync) | no — record torn, not fsynced | history *without* the in-flight batch |
/// | [`WalPostFsync`](Self::WalPostFsync) | yes — record fsynced | history *with* the in-flight batch |
/// | [`MidCheckpoint`](Self::MidCheckpoint) | n/a — temp file torn | the previous checkpoint world, unchanged |
/// | [`PostRename`](Self::PostRename) | n/a — checkpoint durable, manifest stale | the new checkpoint, found by directory scan |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Die mid-append: half the WAL record written, no fsync.
    WalPreFsync,
    /// Die right after the WAL append was fsynced.
    WalPostFsync,
    /// Die with the checkpoint temp file half-written, before the rename.
    MidCheckpoint,
    /// Die after the checkpoint rename but before the manifest update.
    PostRename,
}

impl CrashPoint {
    /// All injection points, in pipeline order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::WalPreFsync,
        CrashPoint::WalPostFsync,
        CrashPoint::MidCheckpoint,
        CrashPoint::PostRename,
    ];

    /// Stable external name (CLI flag / env var / case-file syntax).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::WalPreFsync => "pre-fsync",
            CrashPoint::WalPostFsync => "post-fsync",
            CrashPoint::MidCheckpoint => "mid-checkpoint",
            CrashPoint::PostRename => "post-rename",
        }
    }

    /// Parses an external name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pre-fsync" => Some(CrashPoint::WalPreFsync),
            "post-fsync" => Some(CrashPoint::WalPostFsync),
            "mid-checkpoint" => Some(CrashPoint::MidCheckpoint),
            "post-rename" => Some(CrashPoint::PostRename),
            _ => None,
        }
    }

    /// Reads `DURABLE_CRASH_AT` from the environment. Unset or empty
    /// means no injection; an unknown name is reported as an error so a
    /// typo cannot silently disable a fault-injection run.
    pub fn from_env() -> Result<Option<Self>, DurableError> {
        match std::env::var("DURABLE_CRASH_AT") {
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => Self::parse(&v).map(Some).ok_or_else(|| {
                DurableError::Corrupt(format!(
                    "DURABLE_CRASH_AT={v}: expected one of pre-fsync, post-fsync, \
                     mid-checkpoint, post-rename"
                ))
            }),
            Err(_) => Ok(None),
        }
    }

    /// Whether this point fires inside [`DurableSession::apply`] (as
    /// opposed to [`DurableSession::checkpoint`]).
    pub fn is_wal_point(self) -> bool {
        matches!(self, CrashPoint::WalPreFsync | CrashPoint::WalPostFsync)
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors of the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes violate a format or semantic invariant.
    Corrupt(String),
    /// The batch handed to [`DurableSession::apply`] failed validation;
    /// nothing was logged and the graph is unchanged.
    InvalidBatch(BatchError),
    /// A checkpointed state blob failed to restore.
    State(StateLoadError),
    /// An armed [`CrashPoint`] fired: the process is considered dead and
    /// the session must be dropped and recovered from disk.
    InjectedCrash(CrashPoint),
    /// No valid checkpoint exists — not even genesis — so recovery has
    /// no base state to replay from.
    Unrecoverable(String),
    /// Another live process (or another session in this one) holds the
    /// store's `LOCK` file. The store was not touched; retry after the
    /// owner releases it. `pid` is the recorded owner (0 if unreadable).
    StoreBusy {
        /// The contested durable directory.
        dir: String,
        /// PID recorded in the lock file (0 when unreadable).
        pid: u32,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::Corrupt(d) => write!(f, "corrupt durable state: {d}"),
            DurableError::InvalidBatch(e) => write!(f, "invalid batch: {e}"),
            DurableError::State(e) => write!(f, "state blob rejected: {e}"),
            DurableError::InjectedCrash(p) => write!(f, "injected crash at {p}"),
            DurableError::Unrecoverable(d) => write!(f, "unrecoverable: {d}"),
            DurableError::StoreBusy { dir, pid } => write!(
                f,
                "store busy: {dir} is locked by live process {pid} \
                 (one writer per store; retry after it exits)"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::InvalidBatch(e) => Some(e),
            DurableError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<StateLoadError> for DurableError {
    fn from(e: StateLoadError) -> Self {
        DurableError::State(e)
    }
}

/// Configuration of a durable session.
#[derive(Clone, Debug, Default)]
pub struct DurableOptions {
    /// Fallback policy governing incremental updates — both live ones and
    /// the replayed ones during recovery.
    pub policy: FallbackPolicy,
    /// Take a checkpoint automatically every `n` applied batches
    /// (`None` = only on explicit [`DurableSession::checkpoint`] calls).
    pub checkpoint_every: Option<u64>,
    /// Coalesce each applied batch's effective ops before the incremental
    /// updates run ([`ExecOptions::micro_batch`]). Ingest schedulers that
    /// admit many unit updates per flush turn this on so cancelling
    /// insert/delete pairs never reach the propagation engine. Replay
    /// during [`recover`] uses the same setting, keeping the rebuilt
    /// states byte-identical to the pre-crash ones.
    pub micro_batch: bool,
}

/// A live graph + incremental states bound to a durable directory.
///
/// The commit protocol of [`apply`](Self::apply) is:
///
/// 1. validate and apply `ΔG` to the in-memory graph
///    ([`UpdateBatch::apply_validated`] — an invalid batch is rejected
///    before anything touches the log);
/// 2. append the batch to the WAL and **fsync** — this is the commit
///    point; a crash before it loses the batch (by design: it was never
///    acknowledged), a crash after it preserves the batch across
///    recovery;
/// 3. run the incremental update on every tracked state via
///    [`update_with`] under the session's [`FallbackPolicy`].
///
/// Recovery rebuilds the exact same in-memory world from the newest valid
/// checkpoint plus the logged suffix — see [`recover`].
pub struct DurableSession {
    pub(crate) dir: PathBuf,
    pub(crate) wal: Wal,
    pub(crate) graph: DynamicGraph,
    pub(crate) states: Vec<Box<dyn IncrementalState>>,
    pub(crate) options: DurableOptions,
    pub(crate) next_seq: u64,
    /// Replication epoch/term (see [`meta`]); starts at
    /// [`FIRST_EPOCH`] and only moves via [`bump_epoch`](Self::bump_epoch).
    pub(crate) epoch: u64,
    /// Sequence the WAL's history starts after: 0 normally, the
    /// snapshot's covered sequence on a snapshot-bootstrapped replica.
    pub(crate) base_seq: u64,
    pub(crate) crash: Option<CrashPoint>,
    /// Held for the session's whole lifetime; dropping the session
    /// releases the store to the next opener.
    pub(crate) lock: StoreLock,
}

impl DurableSession {
    /// Initializes a fresh durable directory: genesis checkpoint
    /// (sequence 0, holding `graph` and the current essence of every
    /// state), manifest, and an empty WAL. Fails if the directory already
    /// holds a durable store — re-initializing would orphan its history.
    pub fn create(
        dir: &Path,
        graph: DynamicGraph,
        states: Vec<Box<dyn IncrementalState>>,
        options: DurableOptions,
    ) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir)?;
        let lock = StoreLock::acquire(dir)?;
        if dir.join(checkpoint::MANIFEST_NAME).exists() || dir.join(WAL_NAME).exists() {
            return Err(DurableError::Corrupt(format!(
                "{} already holds a durable store; recover it instead",
                dir.display()
            )));
        }
        checkpoint::write_checkpoint(dir, 0, &graph, &states, None)?;
        checkpoint::write_manifest(dir, 0, meta::FIRST_EPOCH)?;
        meta::write_epoch(dir, meta::FIRST_EPOCH)?;
        let opened = Wal::open(&dir.join(WAL_NAME))?;
        Ok(DurableSession {
            dir: dir.to_path_buf(),
            wal: opened.wal,
            graph,
            states,
            options,
            next_seq: FIRST_SEQ,
            epoch: meta::FIRST_EPOCH,
            base_seq: 0,
            crash: None,
            lock,
        })
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The tracked incremental states, in creation order.
    pub fn states(&self) -> &[Box<dyn IncrementalState>] {
        &self.states
    }

    /// Sequence number of the last durably applied batch (0 = none yet;
    /// equals [`base_seq`](Self::base_seq) right after a snapshot
    /// bootstrap).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The store's replication epoch/term.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sequence the WAL's retained history starts after (0 for stores
    /// whose log reaches back to genesis).
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Durably bumps the replication epoch: the new epoch is fsynced to
    /// the `EPOCH` file, then stamped into the manifest via a fresh
    /// checkpoint. This is promotion's commit point — once this returns,
    /// any peer still on the old epoch is provably stale.
    pub fn bump_epoch(&mut self) -> Result<u64, DurableError> {
        self.epoch += 1;
        meta::write_epoch(&self.dir, self.epoch)?;
        self.checkpoint()?;
        incgraph_obs::gauge("repl.epoch", self.epoch);
        Ok(self.epoch)
    }

    /// Durably adopts a peer's (higher) epoch without promotion — the
    /// tail-mode half of rejoining a primary that moved on. A no-op when
    /// the epoch already matches; refuses to move backwards.
    pub fn adopt_epoch(&mut self, epoch: u64) -> Result<(), DurableError> {
        if epoch < self.epoch {
            return Err(DurableError::Corrupt(format!(
                "refusing to adopt epoch {epoch} below current {}",
                self.epoch
            )));
        }
        if epoch != self.epoch {
            meta::write_epoch(&self.dir, epoch)?;
            self.epoch = epoch;
            incgraph_obs::gauge("repl.epoch", self.epoch);
        }
        Ok(())
    }

    /// CRC-32 digest over the store's observable essence: directedness,
    /// node count, every edge (sorted), and each tracked state's
    /// `save_state` bytes in registration order — the same figure the
    /// stream harness pins in its baselines, and the one primary and
    /// replica exchange at matching sequences to detect divergence.
    pub fn digest(&self) -> String {
        let g = &self.graph;
        let mut bytes: Vec<u8> = Vec::new();
        bytes.push(g.is_directed() as u8);
        bytes.extend((g.node_count() as u64).to_le_bytes());
        let mut edges: Vec<(u32, u32, u32)> = g.edges().collect();
        edges.sort_unstable();
        for (u, v, w) in edges {
            bytes.extend(u.to_le_bytes());
            bytes.extend(v.to_le_bytes());
            bytes.extend(w.to_le_bytes());
        }
        for s in &self.states {
            bytes.extend(s.name().as_bytes());
            let blob = s.save_state();
            bytes.extend((blob.len() as u64).to_le_bytes());
            bytes.extend(blob);
        }
        format!("{:08x}", crc::crc32(&bytes))
    }

    /// Encodes the live world as a checkpoint payload covering
    /// [`last_seq`](Self::last_seq) — the exact bytes
    /// [`checkpoint::decode_payload`] (and therefore
    /// [`install_snapshot`](Self::install_snapshot)) accepts. The primary
    /// uses this to ship a bootstrap snapshot to a lagging replica.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        checkpoint::encode_payload(self.last_seq(), &self.graph, &self.states)
    }

    /// Replaces this store's entire world with a shipped snapshot,
    /// consuming the session and returning a new one whose history
    /// *begins* at the snapshot's covered sequence: the decoded payload
    /// becomes the base checkpoint, `BASE` records the covered sequence,
    /// the WAL restarts empty expecting `covered + 1`, and the manifest
    /// is stamped with `epoch` (adopted from the primary).
    ///
    /// Ordering is crash-safe: the new base checkpoint is durable
    /// *before* `BASE` commits the switch, and only then are the old log
    /// and checkpoints discarded — a crash anywhere leaves either the
    /// old world or the new one recoverable.
    pub fn install_snapshot(
        self,
        payload: &[u8],
        epoch: u64,
    ) -> Result<DurableSession, DurableError> {
        let DurableSession {
            dir,
            wal,
            options,
            lock,
            ..
        } = self;
        let (covered, graph, states) = checkpoint::decode_payload(payload)?;
        let old_checkpoints = checkpoint::list_checkpoints(&dir);
        checkpoint::write_checkpoint(&dir, covered, &graph, &states, None)?;
        meta::write_epoch(&dir, epoch)?;
        // The commit point: once BASE names the snapshot's sequence, the
        // old WAL records (whose sequences precede it) are dead history.
        meta::write_base(&dir, covered)?;
        drop(wal);
        // Restart the log: open_from truncates every pre-base record as
        // an out-of-sequence tail.
        let opened = Wal::open_from(&dir.join(WAL_NAME), covered + 1)?;
        for seq in old_checkpoints {
            if seq != covered {
                let _ = std::fs::remove_file(checkpoint::checkpoint_path(&dir, seq));
            }
        }
        checkpoint::write_manifest(&dir, covered, epoch)?;
        incgraph_obs::counter("repl.snapshots_installed", 1);
        Ok(DurableSession {
            dir,
            wal: opened.wal,
            graph,
            states,
            options,
            next_seq: covered + 1,
            epoch,
            base_seq: covered,
            crash: None,
            lock,
        })
    }

    /// The lock guarding this store against concurrent writers; released
    /// when the session drops.
    pub fn lock(&self) -> &StoreLock {
        &self.lock
    }

    /// Arms a one-shot crash injection: the next operation that reaches
    /// the given point dies there. WAL points fire in [`apply`](Self::apply),
    /// checkpoint points in [`checkpoint`](Self::checkpoint).
    pub fn arm_crash(&mut self, point: Option<CrashPoint>) {
        self.crash = point;
    }

    fn take_crash(&mut self, wal_point: bool) -> Option<CrashPoint> {
        if self.crash.is_some_and(|p| p.is_wal_point() == wal_point) {
            self.crash.take()
        } else {
            None
        }
    }

    /// Applies one batch durably (see the type-level docs for the commit
    /// protocol), returning one [`BoundednessReport`] per tracked state.
    ///
    /// On [`DurableError::InvalidBatch`] and real I/O errors the
    /// in-memory graph is rolled back and the log untouched — the session
    /// stays usable. On [`DurableError::InjectedCrash`] the session is
    /// dead by definition and must be dropped.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<Vec<BoundednessReport>, DurableError> {
        self.apply_with(batch, |_| Ok(()))
            .map(|(reports, _)| reports)
    }

    /// [`apply`](Self::apply) with a *pre-commit hook*: `pre_commit`
    /// runs after the batch validated and applied in memory, immediately
    /// before the WAL append that commits it, receiving the sequence
    /// number the batch is about to take. The service layer uses this
    /// seam to fsync its exactly-once intent record (client token +
    /// client sequence → WAL sequence) strictly *before* the batch can
    /// become durable: a crash between the two leaves an intent whose
    /// WAL sequence was never written, which recovery discards, so a
    /// client retry re-applies cleanly; a crash after the append leaves
    /// both records, so the retry is deduplicated. If `pre_commit`
    /// errors, the in-memory application is rolled back and nothing is
    /// logged — exactly the invalid-batch contract.
    ///
    /// Also returns the effective [`AppliedBatch`], which callers that
    /// maintain *additional* states outside the session (the service's
    /// standing queries) feed to their own incremental updates.
    pub fn apply_with<F>(
        &mut self,
        batch: &UpdateBatch,
        pre_commit: F,
    ) -> Result<(Vec<BoundednessReport>, AppliedBatch), DurableError>
    where
        F: FnOnce(u64) -> Result<(), DurableError>,
    {
        let applied = batch
            .apply_validated(&mut self.graph)
            .map_err(DurableError::InvalidBatch)?;
        if let Err(e) = pre_commit(self.next_seq) {
            applied.invert().apply(&mut self.graph);
            return Err(e);
        }
        let crash = self.take_crash(true);
        let seq = self.next_seq;
        if let Err(e) = self.wal.append(seq, batch, crash) {
            if !matches!(e, DurableError::InjectedCrash(_)) {
                // Real I/O failure: undo the in-memory application so the
                // session still mirrors the durable history exactly.
                applied.invert().apply(&mut self.graph);
            }
            return Err(e);
        }
        self.next_seq += 1;
        let exec = ExecOptions {
            policy: self.options.policy,
            micro_batch: self.options.micro_batch,
            ..Default::default()
        };
        let reports = self
            .states
            .iter_mut()
            .map(|s| update_with(s.as_mut(), &self.graph, &applied, &exec))
            .collect();
        if let Some(every) = self.options.checkpoint_every {
            if every > 0 && self.last_seq().is_multiple_of(every) {
                self.checkpoint()?;
            }
        }
        Ok((reports, applied))
    }

    /// Writes a checkpoint covering everything applied so far and points
    /// the manifest at it. Returns the covered WAL sequence number.
    pub fn checkpoint(&mut self) -> Result<u64, DurableError> {
        let _span = incgraph_obs::span("ckpt.write");
        let covered = self.last_seq();
        let crash = self.take_crash(false);
        checkpoint::write_checkpoint(&self.dir, covered, &self.graph, &self.states, crash)?;
        checkpoint::write_manifest(&self.dir, covered, self.epoch)?;
        incgraph_obs::counter("ckpt.writes", 1);
        incgraph_obs::gauge("ckpt.covered_seq", covered);
        Ok(covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_algos::{CcState, ReachState, SsspState};
    use incgraph_graph::UpdateBatch;
    use std::fs;

    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(false, n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, 1);
        }
        g
    }

    fn states_for(g: &DynamicGraph) -> Vec<Box<dyn IncrementalState>> {
        vec![
            Box::new(SsspState::batch(g, 0).0),
            Box::new(CcState::batch(g).0),
            Box::new(ReachState::batch(g, 0).0),
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("incgraph-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn schedule() -> Vec<UpdateBatch> {
        let mut batches = Vec::new();
        let mut b = UpdateBatch::new();
        b.insert(0, 5, 2).delete(2, 3);
        batches.push(b);
        let mut b = UpdateBatch::new();
        b.delete(0, 5).insert(2, 3, 4).insert(1, 7, 1);
        batches.push(b);
        let mut b = UpdateBatch::new();
        b.delete(7, 8).delete(1, 7);
        batches.push(b);
        batches
    }

    fn essences(states: &[Box<dyn IncrementalState>]) -> Vec<Vec<u8>> {
        states.iter().map(|s| s.save_state()).collect()
    }

    #[test]
    fn create_apply_recover_is_value_identical() {
        let dir = temp_dir("e2e");
        let g0 = ring(12);
        let mut session =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        for b in schedule() {
            session.apply(&b).unwrap();
        }
        session.checkpoint().unwrap();
        let mut b = UpdateBatch::new();
        b.insert(4, 9, 3);
        session.apply(&b).unwrap();
        let live = essences(session.states());
        let live_edges: Vec<_> = session.graph().edges().collect();
        drop(session);

        let (recovered, report) = recover(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.checkpoint_seq, 3, "newest checkpoint covers seq 3");
        assert_eq!(report.wal_records_replayed, 1, "only the suffix replays");
        assert_eq!(essences(recovered.states()), live);
        assert_eq!(recovered.graph().edges().collect::<Vec<_>>(), live_edges);
        assert_eq!(recovered.last_seq(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_store() {
        let dir = temp_dir("clobber");
        let g0 = ring(8);
        let s =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        drop(s);
        assert!(matches!(
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default()),
            Err(DurableError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_batch_leaves_session_usable_and_log_clean() {
        let dir = temp_dir("invalid");
        let g0 = ring(8);
        let mut session =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        let edges_before: Vec<_> = session.graph().edges().collect();
        let mut bad = UpdateBatch::new();
        bad.insert(0, 3, 1).insert(0, 99, 1); // out-of-range node
        assert!(matches!(
            session.apply(&bad),
            Err(DurableError::InvalidBatch(_))
        ));
        assert_eq!(session.graph().edges().collect::<Vec<_>>(), edges_before);
        assert_eq!(session.last_seq(), 0, "nothing was logged");
        let mut ok = UpdateBatch::new();
        ok.insert(0, 3, 1);
        session.apply(&ok).unwrap();
        assert_eq!(session.last_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_checkpoints_fire_on_the_interval() {
        let dir = temp_dir("periodic");
        let g0 = ring(10);
        let options = DurableOptions {
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let mut session =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), options).unwrap();
        for b in schedule() {
            session.apply(&b).unwrap();
        }
        // Genesis (0) + automatic checkpoint at seq 2.
        assert_eq!(checkpoint::list_checkpoints(&dir), vec![2, 0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_session_makes_concurrent_open_store_busy() {
        let dir = temp_dir("lock");
        let g0 = ring(8);
        let session =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        // A second writer — create or recover — must be refused while the
        // first session lives, and succeed once it is dropped.
        assert!(matches!(
            recover(&dir, DurableOptions::default()),
            Err(DurableError::StoreBusy { .. })
        ));
        assert!(matches!(
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default()),
            Err(DurableError::StoreBusy { .. })
        ));
        drop(session);
        let (reopened, _) = recover(&dir, DurableOptions::default()).unwrap();
        drop(reopened);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_commit_failure_rolls_back_and_logs_nothing() {
        let dir = temp_dir("precommit");
        let g0 = ring(8);
        let mut session =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        let edges_before: Vec<_> = session.graph().edges().collect();
        let mut b = UpdateBatch::new();
        b.insert(0, 3, 1);
        let mut seen_seq = 0;
        let err = session
            .apply_with(&b, |seq| {
                seen_seq = seq;
                Err(DurableError::Corrupt("intent fsync failed".into()))
            })
            .unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)));
        assert_eq!(seen_seq, FIRST_SEQ, "hook sees the would-be sequence");
        assert_eq!(session.graph().edges().collect::<Vec<_>>(), edges_before);
        assert_eq!(session.last_seq(), 0, "nothing was logged");
        // The session survives the refused commit.
        session.apply(&b).unwrap();
        assert_eq!(session.last_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_install_rebases_history_and_survives_recovery() {
        // Primary world: some history, then a snapshot of the live state.
        let src_dir = temp_dir("snap-src");
        let g0 = ring(12);
        let mut primary = DurableSession::create(
            &src_dir,
            g0.clone(),
            states_for(&g0),
            DurableOptions::default(),
        )
        .unwrap();
        for b in schedule() {
            primary.apply(&b).unwrap();
        }
        let snapshot = primary.encode_snapshot();
        let want_digest = primary.digest();
        let snap_seq = primary.last_seq();

        // Replica: fresh store, diverged by an unrelated batch, then the
        // snapshot is installed — its whole world must be replaced.
        let dst_dir = temp_dir("snap-dst");
        let mut replica = DurableSession::create(
            &dst_dir,
            ring(12),
            states_for(&ring(12)),
            DurableOptions::default(),
        )
        .unwrap();
        let mut stray = UpdateBatch::new();
        stray.insert(0, 6, 9);
        replica.apply(&stray).unwrap();
        let replica = replica.install_snapshot(&snapshot, 5).unwrap();
        assert_eq!(replica.last_seq(), snap_seq);
        assert_eq!(replica.base_seq(), snap_seq);
        assert_eq!(replica.epoch(), 5);
        assert_eq!(replica.digest(), want_digest);

        // New history continues at base + 1 and recovery honors the base.
        let mut replica = replica;
        let mut b = UpdateBatch::new();
        b.insert(4, 9, 3);
        replica.apply(&b).unwrap();
        let live = essences(replica.states());
        drop(replica);
        let (recovered, report) = recover(&dst_dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.base_seq(), snap_seq);
        assert_eq!(recovered.epoch(), 5);
        assert_eq!(recovered.last_seq(), snap_seq + 1);
        assert_eq!(
            report.checkpoint_seq, snap_seq,
            "base checkpoint is the floor"
        );
        assert_eq!(essences(recovered.states()), live);
        fs::remove_dir_all(&src_dir).unwrap();
        fs::remove_dir_all(&dst_dir).unwrap();
    }

    #[test]
    fn bump_epoch_is_durable_across_recovery() {
        let dir = temp_dir("epoch-bump");
        let g0 = ring(8);
        let mut session =
            DurableSession::create(&dir, g0.clone(), states_for(&g0), DurableOptions::default())
                .unwrap();
        assert_eq!(session.epoch(), meta::FIRST_EPOCH);
        assert_eq!(session.bump_epoch().unwrap(), 2);
        assert_eq!(session.bump_epoch().unwrap(), 3);
        drop(session);
        let (recovered, _) = recover(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.epoch(), 3);
        assert_eq!(checkpoint::read_manifest(&dir).unwrap().1, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_points_round_trip_their_names() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.name()), Some(p));
        }
        assert_eq!(CrashPoint::parse("nope"), None);
    }

    #[test]
    fn kill_and_recover_at_every_crash_point() {
        // The core durability contract, in miniature (the oracle's crash
        // mode scales this to every round of a fuzzed schedule): crash at
        // each injection point, recover, and the recovered world must be
        // value-identical to an uninterrupted run over the surviving
        // prefix of the history.
        let batches = schedule();
        for point in CrashPoint::ALL {
            let dir = temp_dir(point.name());
            let g0 = ring(12);
            let mut session = DurableSession::create(
                &dir,
                g0.clone(),
                states_for(&g0),
                DurableOptions::default(),
            )
            .unwrap();
            // Two clean rounds, then the faulty operation.
            session.apply(&batches[0]).unwrap();
            session.apply(&batches[1]).unwrap();
            session.arm_crash(Some(point));
            let survived = if point.is_wal_point() {
                let err = session.apply(&batches[2]).unwrap_err();
                assert!(matches!(err, DurableError::InjectedCrash(p) if p == point));
                // Pre-fsync: the in-flight batch dies with the process.
                // Post-fsync: it committed first.
                if point == CrashPoint::WalPostFsync {
                    3
                } else {
                    2
                }
            } else {
                let err = session.checkpoint().unwrap_err();
                assert!(matches!(err, DurableError::InjectedCrash(p) if p == point));
                2
            };
            drop(session);

            // Uninterrupted reference over the surviving prefix.
            let mut ref_g = g0.clone();
            let mut ref_states = states_for(&ref_g);
            for b in &batches[..survived] {
                let applied = b.apply(&mut ref_g);
                for s in &mut ref_states {
                    s.update(&ref_g, &applied);
                }
            }

            let (recovered, report) = recover(&dir, DurableOptions::default()).unwrap();
            assert_eq!(
                recovered.last_seq(),
                survived as u64,
                "{point}: wrong history length"
            );
            assert_eq!(
                essences(recovered.states()),
                essences(&ref_states),
                "{point}: recovered essence diverges"
            );
            assert_eq!(
                recovered.graph().edges().collect::<Vec<_>>(),
                ref_g.edges().collect::<Vec<_>>(),
                "{point}: recovered graph diverges"
            );
            if point == CrashPoint::WalPreFsync {
                assert!(report.wal_truncated_bytes > 0, "torn tail must be cut");
            }
            if point == CrashPoint::PostRename {
                // The renamed checkpoint is durable even though the
                // manifest never learned about it.
                assert_eq!(report.checkpoint_seq, 2);
                assert!(!report.used_manifest);
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
