//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! integrity check for WAL records and checkpoint files.
//!
//! Hand-rolled because the workspace is dependency-free by policy; the
//! table is built at compile time, so the runtime cost is the classic
//! one-lookup-per-byte loop. This is the same polynomial as zlib/PNG, so
//! the vectors in the tests can be cross-checked against any external
//! implementation.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`, as a one-shot convenience.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

/// Incremental CRC-32, for checksumming a file while streaming it out.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh digest.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the digest.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ TABLE[((self.0 ^ b as u32) & 0xFF) as usize];
        }
        self
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let whole = crc32(b"hello, world");
        let split = Crc32::new().update(b"hello").update(b", world").finish();
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = crc32(b"checkpoint payload");
        let mut corrupted = b"checkpoint payload".to_vec();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
            corrupted[i] ^= 1;
        }
    }
}
