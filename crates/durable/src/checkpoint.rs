//! Checkpoints of the full incremental state, and the manifest that
//! points at the newest one.
//!
//! A checkpoint file is
//!
//! ```text
//! [magic: 8 bytes][payload][crc: u32 over payload]
//! ```
//!
//! whose payload captures everything recovery needs: the WAL sequence
//! number the checkpoint covers, the graph at that point (direction flag,
//! labels, edges), and one self-describing `SaveState` blob per tracked
//! query class (see `incgraph_algos::persist`). The CRC is over the whole
//! payload, so *any* corruption — graph bytes, a single state blob —
//! invalidates the file as a unit and the recovery ladder moves on to an
//! older checkpoint rather than trusting a half-good one.
//!
//! **Atomicity**: checkpoints are written to a `.tmp` sibling, fsynced,
//! and atomically renamed into place, then the directory is fsynced so
//! the rename itself is durable. The manifest (`MANIFEST`) is replaced
//! the same way. A crash at any point leaves either the old world or the
//! new world, never a half-written visible file; a crash between rename
//! and manifest update leaves a valid checkpoint the manifest does not
//! know about, which recovery finds anyway by scanning the directory.
//!
//! Checkpoint 0 — the *genesis* checkpoint written when a durable
//! directory is created — is never rotated out: together with the
//! append-only WAL it guarantees full replay remains possible even if
//! every later checkpoint is lost.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use incgraph_algos::{restore_state, IncrementalState};
use incgraph_graph::DynamicGraph;

use crate::bytes::{put_bytes, put_u32, put_u64, put_u8, Reader};
use crate::crc::crc32;
use crate::{CrashPoint, DurableError};

/// Magic prefix of a checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"ICKP0001";
/// Magic prefix of the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"IMAN0001";
/// File name of the manifest inside a durable directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Path of the checkpoint covering WAL sequence `seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:020}.ckpt"))
}

/// Sequence numbers of all well-named checkpoint files in `dir`, sorted
/// descending (newest first). Purely name-based; validity is decided by
/// [`load_checkpoint`].
pub fn list_checkpoints(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return seqs;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name
            .strip_prefix("checkpoint-")
            .and_then(|r| r.strip_suffix(".ckpt"))
        {
            if let Ok(seq) = rest.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    seqs.dedup();
    seqs
}

/// Serializes the checkpoint payload (everything between magic and CRC).
pub fn encode_payload(
    covered_seq: u64,
    g: &DynamicGraph,
    states: &[Box<dyn IncrementalState>],
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, covered_seq);
    put_u8(&mut out, g.is_directed() as u8);
    put_u64(&mut out, g.node_count() as u64);
    for v in g.nodes() {
        put_u32(&mut out, g.label(v));
    }
    put_u64(&mut out, g.edge_count() as u64);
    for (u, v, w) in g.edges() {
        put_u32(&mut out, u);
        put_u32(&mut out, v);
        put_u32(&mut out, w);
    }
    put_u32(&mut out, states.len() as u32);
    for s in states {
        put_bytes(&mut out, &s.save_state());
    }
    out
}

/// A fully validated checkpoint: the WAL sequence it covers, the graph,
/// and one restored state per saved blob.
pub type LoadedCheckpoint = (u64, DynamicGraph, Vec<Box<dyn IncrementalState>>);

/// Deserializes a checkpoint payload back into a [`LoadedCheckpoint`].
/// Every structural or semantic violation is an error — the ladder
/// treats the file as a unit.
pub fn decode_payload(payload: &[u8]) -> Result<LoadedCheckpoint, DurableError> {
    let mut r = Reader::new(payload);
    let covered_seq = r.u64()?;
    let directed = match r.u8()? {
        0 => false,
        1 => true,
        b => return Err(DurableError::Corrupt(format!("direction flag {b}"))),
    };
    let n = r.len(4)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(r.u32()?);
    }
    let mut g = DynamicGraph::with_labels(directed, labels);
    let m = r.len(12)?;
    for _ in 0..m {
        let u = r.u32()?;
        let v = r.u32()?;
        let w = r.u32()?;
        if (u as usize) >= n || (v as usize) >= n {
            return Err(DurableError::Corrupt(format!(
                "edge ({u}, {v}) out of range for {n} nodes"
            )));
        }
        if !g.insert_edge(u, v, w) {
            return Err(DurableError::Corrupt(format!("duplicate edge ({u}, {v})")));
        }
    }
    let k = r.u32()? as usize;
    let mut states = Vec::with_capacity(k.min(64));
    for _ in 0..k {
        let blob = r.bytes()?;
        states.push(restore_state(&g, blob)?);
    }
    r.finish()?;
    Ok((covered_seq, g, states))
}

fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Writes the checkpoint covering `covered_seq` via temp-file + fsync +
/// atomic rename + directory fsync, returning the final path.
///
/// `crash` injects a failure for the recovery harness:
/// [`CrashPoint::MidCheckpoint`] dies with a half-written temp file (no
/// rename — the previous checkpoint world is untouched);
/// [`CrashPoint::PostRename`] completes the rename, then dies before the
/// caller can update the manifest (the new checkpoint is on disk but
/// unannounced). Other crash points are ignored here.
pub fn write_checkpoint(
    dir: &Path,
    covered_seq: u64,
    g: &DynamicGraph,
    states: &[Box<dyn IncrementalState>],
    crash: Option<CrashPoint>,
) -> Result<PathBuf, DurableError> {
    let payload = encode_payload(covered_seq, g, states);
    let mut bytes = Vec::with_capacity(12 + payload.len());
    bytes.extend_from_slice(CKPT_MAGIC);
    bytes.extend_from_slice(&payload);
    put_u32(&mut bytes, crc32(&payload));

    let final_path = checkpoint_path(dir, covered_seq);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    let mut tmp = File::create(&tmp_path)?;
    if crash == Some(CrashPoint::MidCheckpoint) {
        // Torn temp file, never renamed: the visible world is unchanged.
        tmp.write_all(&bytes[..bytes.len() / 2])?;
        tmp.flush()?;
        return Err(DurableError::InjectedCrash(CrashPoint::MidCheckpoint));
    }
    tmp.write_all(&bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir)?;
    if crash == Some(CrashPoint::PostRename) {
        // Checkpoint durable, manifest stale: recovery must find it by
        // directory scan.
        return Err(DurableError::InjectedCrash(CrashPoint::PostRename));
    }
    Ok(final_path)
}

/// Loads and fully validates the checkpoint at `path`: magic, whole-file
/// CRC, then payload decoding (which itself restores every state blob).
pub fn load_checkpoint(path: &Path) -> Result<LoadedCheckpoint, DurableError> {
    let bytes = fs::read(path)?;
    if bytes.len() < CKPT_MAGIC.len() + 4 || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(DurableError::Corrupt(format!(
            "{} is not a checkpoint",
            path.display()
        )));
    }
    let payload = &bytes[CKPT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(payload) != stored {
        return Err(DurableError::Corrupt(format!(
            "{}: checksum mismatch",
            path.display()
        )));
    }
    decode_payload(payload)
}

/// Atomically (re)writes the manifest to point at checkpoint `seq`,
/// stamped with the store's replication `epoch`.
///
/// Wire layout (v2, 28 bytes): magic, `seq: u64`, `epoch: u64`, CRC-32
/// over `seq || epoch`. [`read_manifest`] also accepts the 20-byte v1
/// form (no epoch field) from stores written before replication existed,
/// reading it as epoch 1.
pub fn write_manifest(dir: &Path, seq: u64, epoch: u64) -> Result<(), DurableError> {
    let mut bytes = Vec::with_capacity(28);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    put_u64(&mut bytes, seq);
    put_u64(&mut bytes, epoch);
    let mut sum = Vec::with_capacity(16);
    sum.extend_from_slice(&seq.to_le_bytes());
    sum.extend_from_slice(&epoch.to_le_bytes());
    put_u32(&mut bytes, crc32(&sum));
    let final_path = dir.join(MANIFEST_NAME);
    let tmp_path = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(&bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir)?;
    Ok(())
}

/// Reads the manifest's `(checkpoint seq, epoch)` pointer. `None` means
/// missing or unusable — recovery then falls back to a directory scan,
/// so a corrupt manifest costs a scan, never the data. Legacy 20-byte
/// manifests (written before replication) read as epoch 1.
pub fn read_manifest(dir: &Path) -> Option<(u64, u64)> {
    let bytes = fs::read(dir.join(MANIFEST_NAME)).ok()?;
    if &bytes[..8.min(bytes.len())] != MANIFEST_MAGIC {
        return None;
    }
    match bytes.len() {
        20 => {
            let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            let stored = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
            (crc32(&seq.to_le_bytes()) == stored).then_some((seq, crate::meta::FIRST_EPOCH))
        }
        28 => {
            let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            let epoch = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            let stored = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
            (crc32(&bytes[8..24]) == stored).then_some((seq, epoch))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_algos::{CcState, SsspState};

    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(false, n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, 1);
        }
        g
    }

    fn states_for(g: &DynamicGraph) -> Vec<Box<dyn IncrementalState>> {
        vec![
            Box::new(SsspState::batch(g, 0).0),
            Box::new(CcState::batch(g).0),
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incgraph-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = temp_dir("roundtrip");
        let g = ring(12);
        let states = states_for(&g);
        let path = write_checkpoint(&dir, 7, &g, &states, None).unwrap();
        let (seq, g2, states2) = load_checkpoint(&path).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(g2.node_count(), 12);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        assert_eq!(states2.len(), 2);
        for (a, b) in states.iter().zip(&states2) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.save_state(), b.save_state());
        }
        assert_eq!(list_checkpoints(&dir), vec![7]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_corrupted_byte_invalidates_the_file() {
        let dir = temp_dir("corrupt");
        let g = ring(8);
        let states = states_for(&g);
        let path = write_checkpoint(&dir, 3, &g, &states, None).unwrap();
        let clean = fs::read(&path).unwrap();
        // Flip a byte in several regions: graph bytes, state blob, CRC.
        for &i in &[10usize, clean.len() / 2, clean.len() - 2] {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(
                load_checkpoint(&path).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
        fs::write(&path, &clean).unwrap();
        assert!(load_checkpoint(&path).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = temp_dir("manifest");
        assert_eq!(read_manifest(&dir), None);
        write_manifest(&dir, 42, 3).unwrap();
        assert_eq!(read_manifest(&dir), Some((42, 3)));
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_manifest(&dir),
            None,
            "corrupt manifest must be ignored"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v1_manifest_reads_as_epoch_one() {
        let dir = temp_dir("manifest-v1");
        // Hand-build the 20-byte pre-replication form.
        let seq = 9u64;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MANIFEST_MAGIC);
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&crate::crc::crc32(&seq.to_le_bytes()).to_le_bytes());
        fs::write(dir.join(MANIFEST_NAME), &bytes).unwrap();
        assert_eq!(read_manifest(&dir), Some((9, 1)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_checkpoint_crash_leaves_old_world_intact() {
        let dir = temp_dir("midckpt");
        let g = ring(8);
        let states = states_for(&g);
        write_checkpoint(&dir, 1, &g, &states, None).unwrap();
        let err = write_checkpoint(&dir, 2, &g, &states, Some(CrashPoint::MidCheckpoint));
        assert!(matches!(
            err,
            Err(DurableError::InjectedCrash(CrashPoint::MidCheckpoint))
        ));
        // Only the torn temp file exists for seq 2; the scan sees seq 1.
        assert_eq!(list_checkpoints(&dir), vec![1]);
        assert!(load_checkpoint(&checkpoint_path(&dir, 1)).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
