//! WAL codec property tests: seeded random batch streams through
//! encode → mutilate → scan.
//!
//! The scanner's contract is *longest valid prefix*: whatever happens to
//! the byte stream — a torn tail from a crash mid-`write`, a flipped bit
//! from storage rot — `scan_records` must return exactly the unharmed
//! leading records and report where the damage starts, never a phantom
//! record and never a short read of intact history. These tests check
//! that contract exhaustively over every truncation boundary and every
//! single-byte corruption of the stream.

use incgraph_durable::{encode_record, scan_records, FIRST_SEQ};
use incgraph_graph::rng::SplitMix64;
use incgraph_graph::UpdateBatch;

fn random_batch(rng: &mut SplitMix64) -> UpdateBatch {
    let mut b = UpdateBatch::new();
    let ops = 1 + (rng.next_u64() % 6) as usize;
    for _ in 0..ops {
        let u = (rng.next_u64() % 64) as u32;
        let v = (rng.next_u64() % 64) as u32;
        if rng.next_u64().is_multiple_of(4) {
            b.delete(u, v);
        } else {
            b.insert(u, v, 1 + (rng.next_u64() % 9) as u32);
        }
    }
    b
}

/// A random record stream plus the byte offset where each record starts
/// (with one final entry for the end of the stream).
fn random_stream(seed: u64, n: usize) -> (Vec<u8>, Vec<UpdateBatch>, Vec<usize>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut body = Vec::new();
    let mut batches = Vec::with_capacity(n);
    let mut offsets = vec![0usize];
    for i in 0..n {
        let batch = random_batch(&mut rng);
        body.extend_from_slice(&encode_record(FIRST_SEQ + i as u64, &batch));
        batches.push(batch);
        offsets.push(body.len());
    }
    (body, batches, offsets)
}

#[test]
fn truncation_at_every_boundary_recovers_longest_valid_prefix() {
    for seed in [1u64, 2, 3] {
        let (body, batches, offsets) = random_stream(seed, 8);
        for cut in 0..=body.len() {
            let scan = scan_records(&body[..cut], FIRST_SEQ);
            // Exactly the records wholly contained in the prefix survive.
            let expected = offsets[1..].iter().filter(|&&end| end <= cut).count();
            assert_eq!(
                scan.records.len(),
                expected,
                "seed {seed}: cut at byte {cut} of {}",
                body.len()
            );
            assert_eq!(scan.valid_len, offsets[expected], "seed {seed}, cut {cut}");
            for (i, rec) in scan.records.iter().enumerate() {
                assert_eq!(rec.seq, FIRST_SEQ + i as u64);
                assert_eq!(rec.offset, offsets[i]);
                assert_eq!(rec.batch, batches[i], "seed {seed}: record {i} mutated");
            }
        }
    }
}

#[test]
fn single_byte_corruption_cuts_the_stream_at_the_damaged_record() {
    for seed in [4u64, 5] {
        let (body, batches, offsets) = random_stream(seed, 5);
        for pos in 0..body.len() {
            let mut bad = body.clone();
            bad[pos] ^= 0x40;
            // The record the damaged byte falls in.
            let hit = offsets[1..].iter().filter(|&&end| end <= pos).count();
            let scan = scan_records(&bad, FIRST_SEQ);
            assert_eq!(
                scan.records.len(),
                hit,
                "seed {seed}: flip at byte {pos} must kill record {hit}, not survive it"
            );
            assert_eq!(scan.valid_len, offsets[hit], "seed {seed}, flip {pos}");
            for (i, rec) in scan.records.iter().enumerate() {
                assert_eq!(
                    rec.batch, batches[i],
                    "seed {seed}: intact record {i} misread"
                );
            }
        }
    }
}

#[test]
fn empty_and_garbage_streams_scan_to_nothing() {
    let scan = scan_records(&[], FIRST_SEQ);
    assert!(scan.records.is_empty());
    assert_eq!(scan.valid_len, 0);

    let mut rng = SplitMix64::seed_from_u64(6);
    let garbage: Vec<u8> = (0..256).map(|_| rng.next_u64() as u8).collect();
    let scan = scan_records(&garbage, FIRST_SEQ);
    assert!(
        scan.records.is_empty(),
        "random bytes must not decode to a record"
    );
    assert_eq!(scan.valid_len, 0);
}
