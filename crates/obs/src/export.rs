//! Exporters for [`Snapshot`]: canonical JSON-lines, a parser for that
//! format, and a human-readable summary.
//!
//! The JSON-lines form is *canonical*: `serialize(parse(serialize(s)))`
//! is byte-identical to `serialize(s)`. That holds because map keys come
//! out of `BTreeMap`s in sorted order, spans keep their sequence
//! numbers, numbers are plain decimal `u64`s, and string escaping is
//! deterministic (`\"`, `\\`, `\n`, `\r`, `\t`, and `\u00XX` for other
//! control bytes — printable text is never escaped).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::{Histogram, BUCKETS};
use crate::registry::{EventRec, Snapshot, SpanRec};

/// Schema tag emitted on (and required in) the leading meta line.
pub const SCHEMA: &str = "incgraph-metrics/1";

/// Serializes a snapshot as canonical JSON-lines.
pub fn to_jsonl(s: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":\"{SCHEMA}\",\"events_dropped\":{},\"spans_dropped\":{}}}",
        s.events_dropped, s.spans_dropped
    );
    for ((class, name), value) in &s.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"class\":\"{}\",\"name\":\"{}\",\"value\":{value}}}",
            escape(class),
            escape(name)
        );
    }
    for ((class, name), value) in &s.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"class\":\"{}\",\"name\":\"{}\",\"value\":{value}}}",
            escape(class),
            escape(name)
        );
    }
    for ((class, name), h) in &s.hists {
        let mut buckets = String::from("[");
        for (i, (idx, c)) in h.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "[{idx},{c}]");
        }
        buckets.push(']');
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"class\":\"{}\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{buckets}}}",
            escape(class),
            escape(name),
            h.count(),
            h.sum(),
            h.min(),
            h.max()
        );
    }
    for e in &s.events {
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"class\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\"}}",
            escape(&e.class),
            escape(&e.name),
            escape(&e.detail)
        );
    }
    for sp in &s.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"class\":\"{}\",\"name\":\"{}\",\"seq\":{},\"ns\":{}}}",
            escape(&sp.class),
            escape(&sp.name),
            sp.seq,
            sp.ns
        );
    }
    out
}

/// Parses canonical JSON-lines back into a [`Snapshot`].
pub fn parse_jsonl(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    let mut saw_meta = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let get = |k: &str| -> Result<&Value, String> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("line {}: missing key `{k}`", lineno + 1))
        };
        let str_of = |k: &str| -> Result<String, String> {
            match get(k)? {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(format!("line {}: `{k}` is not a string", lineno + 1)),
            }
        };
        let num_of = |k: &str| -> Result<u64, String> {
            match get(k)? {
                Value::Num(n) => Ok(*n),
                _ => Err(format!("line {}: `{k}` is not a number", lineno + 1)),
            }
        };
        match str_of("type")?.as_str() {
            "meta" => {
                let schema = str_of("schema")?;
                if schema != SCHEMA {
                    return Err(format!("unsupported schema `{schema}`"));
                }
                snap.events_dropped = num_of("events_dropped")?;
                snap.spans_dropped = num_of("spans_dropped")?;
                saw_meta = true;
            }
            "counter" => {
                snap.counters
                    .insert((str_of("class")?, str_of("name")?), num_of("value")?);
            }
            "gauge" => {
                snap.gauges
                    .insert((str_of("class")?, str_of("name")?), num_of("value")?);
            }
            "hist" => {
                let pairs = match get("buckets")? {
                    Value::Pairs(p) => p.clone(),
                    _ => return Err(format!("line {}: `buckets` is not an array", lineno + 1)),
                };
                for &(i, _) in &pairs {
                    if i >= BUCKETS {
                        return Err(format!(
                            "line {}: bucket index {i} out of range",
                            lineno + 1
                        ));
                    }
                }
                let h = Histogram::from_parts(
                    num_of("count")?,
                    num_of("sum")?,
                    num_of("min")?,
                    num_of("max")?,
                    &pairs,
                );
                snap.hists.insert((str_of("class")?, str_of("name")?), h);
            }
            "event" => snap.events.push(EventRec {
                class: str_of("class")?,
                name: str_of("name")?,
                detail: str_of("detail")?,
            }),
            "span" => snap.spans.push(SpanRec {
                class: str_of("class")?,
                name: str_of("name")?,
                seq: num_of("seq")?,
                ns: num_of("ns")?,
            }),
            other => return Err(format!("line {}: unknown type `{other}`", lineno + 1)),
        }
    }
    if !saw_meta {
        return Err("missing meta line".to_string());
    }
    Ok(snap)
}

/// Renders a snapshot as an aligned, human-readable summary.
pub fn render_summary(s: &Snapshot) -> String {
    let mut out = String::new();
    let mut classes: Vec<&String> = Vec::new();
    for (class, _) in s
        .counters
        .keys()
        .chain(s.gauges.keys())
        .chain(s.hists.keys())
    {
        if !classes.contains(&class) {
            classes.push(class);
        }
    }
    classes.sort();
    for class in classes {
        let label = if class.is_empty() { "(session)" } else { class };
        let _ = writeln!(out, "[{label}]");
        let of_class = |m: &BTreeMap<(String, String), u64>| -> Vec<(String, u64)> {
            m.iter()
                .filter(|((c, _), _)| c == class)
                .map(|((_, n), v)| (n.clone(), *v))
                .collect()
        };
        for (name, v) in of_class(&s.counters) {
            let _ = writeln!(out, "  counter {name:<28} {v}");
        }
        for (name, v) in of_class(&s.gauges) {
            let _ = writeln!(out, "  gauge   {name:<28} {v}");
        }
        for ((c, name), h) in &s.hists {
            if c != class {
                continue;
            }
            let _ = writeln!(
                out,
                "  hist    {name:<28} count={} sum={} min={} mean={:.0} max={}",
                h.count(),
                h.sum(),
                h.min(),
                h.mean(),
                h.max()
            );
        }
    }
    let _ = writeln!(
        out,
        "events: {} ({} dropped)   spans: {} ({} dropped)",
        s.events.len(),
        s.events_dropped,
        s.spans.len(),
        s.spans_dropped
    );
    for e in &s.events {
        let label = if e.class.is_empty() {
            "(session)"
        } else {
            &e.class
        };
        let _ = writeln!(out, "  event [{label}] {}: {}", e.name, e.detail);
    }
    out
}

/// Deterministic JSON string escaping (see the module docs).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed flat-JSON value: everything the exporter can emit.
#[derive(Clone, Debug)]
enum Value {
    Str(String),
    Num(u64),
    Pairs(Vec<(usize, u64)>),
}

/// Minimal parser for one flat JSON object line in the canonical form.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut fields = Vec::new();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = p.value()?;
            fields.push((key, value));
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                c => return Err(format!("unexpected byte `{}`", c as char)),
            }
        }
    }
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".to_string());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of line")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next_byte()? {
            b if b == want => Ok(()),
            b => Err(format!("expected `{}`, got `{}`", want as char, b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Ok(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next_byte()?;
                            code = code * 16 + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    c => return Err(format!("bad escape `\\{}`", c as char)),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: copy the sequence through intact.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 sequence")?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected a number".to_string());
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| "number out of range".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(Value::Str(self.string()?)),
            b'0'..=b'9' => Ok(Value::Num(self.number()?)),
            b'[' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Pairs(pairs));
                }
                loop {
                    self.expect(b'[')?;
                    let idx = self.number()? as usize;
                    self.expect(b',')?;
                    let count = self.number()?;
                    self.expect(b']')?;
                    pairs.push((idx, count));
                    match self.next_byte()? {
                        b',' => continue,
                        b']' => break,
                        c => return Err(format!("unexpected byte `{}`", c as char)),
                    }
                }
                Ok(Value::Pairs(pairs))
            }
            c => Err(format!("unexpected byte `{}`", c as char)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::Recorder;

    fn sample() -> Snapshot {
        let r = Registry::with_trace();
        r.counter("sssp", "engine.seq.pops", 41);
        r.counter("", "wal.records", 2);
        r.gauge("cc", "engine.par.threads", 4);
        r.observe("sssp", "scope.size", 17);
        r.span("sssp", "engine.run", 120_000);
        r.span("", "wal.commit", 950);
        r.event(
            "sssp",
            "fallback",
            "scope_exceeded observed=9 limit=4\nsecond line \"q\"",
        );
        r.snapshot()
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        let snap = sample();
        let first = to_jsonl(&snap);
        let parsed = parse_jsonl(&first).unwrap();
        assert_eq!(parsed, snap);
        let second = to_jsonl(&parsed);
        assert_eq!(first, second);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("{\"type\":\"counter\"}\n").is_err());
        assert!(parse_jsonl(
            "{\"type\":\"meta\",\"schema\":\"other/9\",\"events_dropped\":0,\"spans_dropped\":0}\n"
        )
        .is_err());
        // A counter line alone is valid JSON but the meta line is required.
        assert!(
            parse_jsonl("{\"type\":\"counter\",\"class\":\"\",\"name\":\"x\",\"value\":1}\n")
                .is_err()
        );
    }

    #[test]
    fn summary_lists_every_class() {
        let text = render_summary(&sample());
        assert!(text.contains("[sssp]"));
        assert!(text.contains("[(session)]"));
        assert!(text.contains("engine.seq.pops"));
        assert!(text.contains("wal.commit"));
        assert!(text.contains("events: 1"));
    }
}
