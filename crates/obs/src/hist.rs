//! Log₂-bucketed histogram for latencies and per-run sizes.
//!
//! 65 fixed buckets cover the whole `u64` range: bucket 0 holds the
//! exact value 0 and bucket `k` (1..=64) holds `[2^(k-1), 2^k - 1]`,
//! so `index = 64 - v.leading_zeros()` for any nonzero `v`. Fixed
//! power-of-two boundaries keep recording branch-free and make
//! histograms from different runs mergeable bucket-by-bucket, at the
//! cost of ~2x relative resolution — plenty for latency profiles.

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram with saturating sum and exact min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` range of values a bucket covers.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            k => (1u64 << (k - 1), (1u64 << k) - 1),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), linearly interpolated
    /// inside the bucket where the cumulative count crosses `q · count`
    /// and clamped to the exact recorded min/max. With log₂ buckets the
    /// relative error is at most 2× inside one bucket — plenty for the
    /// p50/p99 latency lines the service load harness reports. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * (self.count as f64 - 1.0);
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = below + c;
            if rank < upto as f64 {
                let (lo, hi) = Self::bucket_bounds(i);
                // Position of the rank inside this bucket, in [0, 1).
                let frac = (rank - below as f64) / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).clamp(self.min(), self.max);
            }
            below = upto;
        }
        self.max
    }

    /// Non-empty `(bucket_index, count)` pairs in index order — the
    /// sparse form used by the JSON-lines exporter.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from exported parts (the JSON-lines parser).
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, pairs: &[(usize, u64)]) -> Self {
        let mut h = Histogram::new();
        for &(i, c) in pairs {
            assert!(i < BUCKETS, "bucket index out of range");
            h.buckets[i] += c;
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_across_u64_range() {
        // Bucket 0 is exactly {0}.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        // Every other bucket k covers [2^(k-1), 2^k - 1]; both edges land
        // in-bucket and the values straddling an edge split correctly.
        for k in 1..=64usize {
            let (lo, hi) = Histogram::bucket_bounds(k);
            assert_eq!(lo, 1u64 << (k - 1));
            assert_eq!(hi, if k == 64 { u64::MAX } else { (1u64 << k) - 1 });
            assert_eq!(Histogram::bucket_index(lo), k, "low edge of bucket {k}");
            assert_eq!(Histogram::bucket_index(hi), k, "high edge of bucket {k}");
            if k < 64 {
                assert_eq!(Histogram::bucket_index(hi + 1), k + 1, "first of {k}+1");
            }
        }
        // Spot checks at the extremes.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [0u64, 1, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (10, 1), (64, 1)]);
    }

    #[test]
    fn merge_and_from_parts_round_trip() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(700);
        let mut b = Histogram::new();
        b.record(5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 710);

        let rebuilt = Histogram::from_parts(
            merged.count(),
            merged.sum(),
            merged.min(),
            merged.max(),
            &merged.nonzero_buckets(),
        );
        assert_eq!(rebuilt, merged);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Exact at the extremes, within one log₂ bucket in between.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50={p50} off by >1 bucket");
        let p99 = h.quantile(0.99);
        assert!((512..=1000).contains(&p99), "p99={p99} off by >1 bucket");
        // Quantiles are monotone in q.
        assert!(h.quantile(0.25) <= p50 && p50 <= h.quantile(0.9));
    }

    /// Exact reference quantile under the same rank rule the histogram
    /// uses (`rank = q·(n−1)`, linear interpolation between neighbours).
    fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
        let rank = q * (sorted.len() as f64 - 1.0);
        let lo = sorted[rank.floor() as usize] as f64;
        let hi = sorted[rank.ceil() as usize] as f64;
        lo + (rank - rank.floor()) * (hi - lo)
    }

    /// Records a distribution and checks p50/p99/p999 against the exact
    /// quantiles: the log₂ buckets promise ≤2× relative error, so the
    /// estimate must stay within a factor of 2 of truth (and inside the
    /// recorded [min, max] thanks to the clamp).
    fn assert_tail_quantiles(mut values: Vec<u64>, label: &str) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.99, 0.999] {
            let est = h.quantile(q) as f64;
            let exact = exact_quantile(&values, q).max(1.0);
            let ratio = est.max(1.0) / exact;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{label}: p{} est {est} vs exact {exact} (ratio {ratio:.3})",
                q * 1000.0
            );
            assert!(h.quantile(q) >= h.min() && h.quantile(q) <= h.max());
        }
    }

    #[test]
    fn p50_p99_p999_track_exact_on_known_distributions() {
        // Uniform: every value 1..=10_000 once.
        assert_tail_quantiles((1..=10_000u64).collect(), "uniform");
        // Constant: a degenerate spike — every quantile is the spike.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(777);
        }
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 777, "constant distribution at q={q}");
        }
        // Bimodal: 90% fast mode at ~100, 10% slow mode at ~100_000 —
        // p50 must sit in the fast mode, p99/p999 in the slow one.
        let mut bimodal: Vec<u64> = Vec::new();
        for i in 0..900u64 {
            bimodal.push(90 + i % 20);
        }
        for i in 0..100u64 {
            bimodal.push(99_000 + i * 20);
        }
        assert_tail_quantiles(bimodal.clone(), "bimodal");
        let mut h = Histogram::new();
        for &v in &bimodal {
            h.record(v);
        }
        assert!(h.quantile(0.5) < 256, "p50 belongs to the fast mode");
        assert!(h.quantile(0.99) > 50_000, "p99 belongs to the slow mode");
        // Heavy tail: exponentially spread samples (one per bucket span).
        let heavy: Vec<u64> = (0..4000u64).map(|i| 1u64 << (i % 20)).collect();
        assert_tail_quantiles(heavy, "heavy-tail");
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        for v in [0u64, 1, 1023, 1024, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
                // The min/max clamp makes a 1-sample histogram exact at
                // every quantile, boundary values included.
                assert_eq!(h.quantile(q), v, "value {v} at q={q}");
            }
        }
    }

    #[test]
    fn bucket_boundary_samples_stay_exact_under_clamp() {
        // All mass on one bucket's low edge: interpolation would drift
        // upward inside [1024, 2047], the clamp pins it to the data.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(1024);
        }
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(h.quantile(q), 1024);
        }
        // Mass on both edges of one bucket: estimates never escape it.
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(1024);
            h.record(2047);
        }
        for q in [0.5, 0.99, 0.999] {
            let est = h.quantile(q);
            assert!((1024..=2047).contains(&est), "q={q} escaped: {est}");
        }
        // Two adjacent buckets' worth: p50 crosses the 1023→1024 edge
        // without discontinuity beyond one bucket.
        let mut h = Histogram::new();
        for _ in 0..500 {
            h.record(1023);
            h.record(1024);
        }
        let p50 = h.quantile(0.5);
        assert!(
            (512..=2047).contains(&p50),
            "p50={p50} strayed past the adjacent buckets"
        );
        assert_eq!(h.quantile(0.0), 1023);
        assert_eq!(h.quantile(1.0), 1024);
    }
}
