//! Observability layer: metrics registry, structured spans, exporters.
//!
//! The incremental pipeline's headline claim — cost bounded by `|AFF|`,
//! not `|G|` — was only visible after the fact through
//! `BoundednessReport`. This crate makes the breakdown *watchable*:
//! where a run spends its time (scope function `h` vs. resumed step
//! function vs. WAL commit vs. audit), exported from long `bench`/`fuzz`
//! campaigns as JSON-lines or a human summary.
//!
//! # Design
//!
//! Everything funnels through one process-global [`Recorder`], mirroring
//! `core::trace::CaseTrace`: the paper-mandated APIs (`update`, `batch`,
//! the engines) stay exactly as Fig. 4/Alg. 2 describe them, with no
//! recorder handle threaded through every signature. The global is
//! gated by a single relaxed [`AtomicBool`]: with no recorder installed
//! (the default — the "noop recorder"), every instrumentation site costs
//! one atomic load and nothing else, which is how the ≤5 % overhead
//! budget on the bench suite is met. Install a [`Registry`] to collect.
//!
//! Metrics are keyed by `(class, name)`. The *class* (a query-class
//! label like `"sssp"`, or `""` for session-level work such as WAL
//! commits) comes from a thread-local set by [`class_scope`]; the
//! engines and the guarded update path record on the caller's thread, so
//! attribution follows the call stack without any plumbing.
//!
//! | kind      | use                                              |
//! |-----------|--------------------------------------------------|
//! | counter   | monotonic totals (pops, evals, WAL bytes)        |
//! | gauge     | last-write-wins levels (threads, heap peak)      |
//! | histogram | log₂-bucketed distributions (latencies, sizes)   |
//! | span      | timed sections (`scope.h`, `engine.run`, ...)    |
//! | event     | discrete decisions (fallbacks, audit failures)   |
//!
//! Spans always aggregate into a histogram of their duration under the
//! span's name; a [`Registry::with_trace`] additionally keeps each raw
//! span for the `--trace` JSON-lines export. See `docs/OBSERVABILITY.md`
//! for the span taxonomy and exporter formats.

pub mod export;
pub mod hist;
pub mod registry;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

pub use export::{parse_jsonl, render_summary, to_jsonl, SCHEMA};
pub use hist::{Histogram, BUCKETS};
pub use registry::{EventRec, Registry, Snapshot, SpanRec};

/// A sink for instrumentation. `class` is the query-class label from
/// the ambient [`class_scope`] (`""` outside any class), `name` the
/// static metric name.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter(&self, class: &'static str, name: &'static str, delta: u64);
    /// Sets a last-write-wins level.
    fn gauge(&self, class: &'static str, name: &'static str, value: u64);
    /// Records one observation into a histogram.
    fn observe(&self, class: &'static str, name: &'static str, value: u64);
    /// Records a discrete decision with free-form detail.
    fn event(&self, class: &'static str, name: &'static str, detail: &str);
    /// Records a completed timed section of `ns` nanoseconds.
    fn span(&self, class: &'static str, name: &'static str, ns: u64);
}

/// The zero-cost default: discards everything. Installing it is
/// equivalent to (but slightly slower than) installing nothing, since
/// an installed recorder flips the enabled bit; it exists for tests and
/// for explicitly exercising the dispatch path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _: &'static str, _: &'static str, _: u64) {}
    fn gauge(&self, _: &'static str, _: &'static str, _: u64) {}
    fn observe(&self, _: &'static str, _: &'static str, _: u64) {}
    fn event(&self, _: &'static str, _: &'static str, _: &str) {}
    fn span(&self, _: &'static str, _: &'static str, _: u64) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

thread_local! {
    static CLASS: Cell<&'static str> = const { Cell::new("") };
}

/// Installs the process-global recorder, replacing any previous one.
pub fn install(recorder: Arc<dyn Recorder>) {
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global recorder; instrumentation reverts to one relaxed
/// atomic load per site.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a recorder is installed. The fast path every site checks.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with(f: impl FnOnce(&dyn Recorder)) {
    let guard = RECORDER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(r) = guard.as_ref() {
        f(r.as_ref());
    }
}

/// The ambient query-class label on this thread (`""` outside scopes).
pub fn current_class() -> &'static str {
    CLASS.with(|c| c.get())
}

/// Sets the ambient query-class label until the guard drops (scopes
/// nest; the previous label is restored).
#[must_use = "the class label reverts when the guard drops"]
pub fn class_scope(class: &'static str) -> ClassScope {
    let prev = CLASS.with(|c| c.replace(class));
    ClassScope { prev }
}

/// RAII guard restoring the previous class label. See [`class_scope`].
pub struct ClassScope {
    prev: &'static str,
}

impl Drop for ClassScope {
    fn drop(&mut self) {
        CLASS.with(|c| c.set(self.prev));
    }
}

/// Adds `delta` to the counter `name` under the ambient class.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with(|r| r.counter(current_class(), name, delta));
    }
}

/// Sets the gauge `name` under the ambient class.
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if enabled() {
        with(|r| r.gauge(current_class(), name, value));
    }
}

/// Records one histogram observation under the ambient class.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        with(|r| r.observe(current_class(), name, value));
    }
}

/// Records an event under the ambient class. Call sites that build the
/// detail string should gate on [`enabled`] to keep the disabled path
/// allocation-free.
#[inline]
pub fn event(name: &'static str, detail: &str) {
    if enabled() {
        with(|r| r.event(current_class(), name, detail));
    }
}

/// Starts a timed span; the duration is recorded when the returned
/// guard drops. Disabled ⇒ the guard is inert and no clock is read.
#[inline]
#[must_use = "the span is recorded when the guard drops"]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Guard for a timed section. See [`span`].
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if enabled() {
                with(|r| r.span(current_class(), self.name, ns));
            }
        }
    }
}

/// `span!("scope.h")` — sugar for [`span`] with a literal name; binds
/// the guard to a caller-supplied slot: `let _s = span!("scope.h");`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide; keep every test that touches
    // it in one #[test] body so cargo's parallel runner can't interleave.
    #[test]
    fn global_recorder_lifecycle_and_class_scopes() {
        assert!(!enabled());
        // Disabled: free functions are inert (nothing to assert beyond
        // not panicking — there is no recorder to observe them).
        counter("x", 1);
        {
            let _s = span!("noop.section");
        }

        let registry = Arc::new(Registry::with_trace());
        install(registry.clone());
        assert!(enabled());

        assert_eq!(current_class(), "");
        {
            let _outer = class_scope("sssp");
            assert_eq!(current_class(), "sssp");
            counter("engine.seq.pops", 2);
            {
                let _inner = class_scope("cc");
                assert_eq!(current_class(), "cc");
                counter("engine.seq.pops", 5);
            }
            assert_eq!(current_class(), "sssp", "scopes nest and restore");
            let _s = span("engine.run");
        }
        assert_eq!(current_class(), "");
        gauge("threads", 3);
        if enabled() {
            event("fallback", "detail");
        }

        let snap = registry.snapshot();
        assert_eq!(
            snap.counters[&("sssp".to_string(), "engine.seq.pops".to_string())],
            2
        );
        assert_eq!(
            snap.counters[&("cc".to_string(), "engine.seq.pops".to_string())],
            5
        );
        assert_eq!(snap.gauges[&(String::new(), "threads".to_string())], 3);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].class, "sssp");
        assert_eq!(snap.spans[0].name, "engine.run");
        assert_eq!(snap.events.len(), 1);

        uninstall();
        assert!(!enabled());
        counter("after", 1);
        assert!(!registry
            .snapshot()
            .counters
            .contains_key(&(String::new(), "after".to_string())));

        // NoopRecorder: dispatch runs, nothing observable happens.
        install(Arc::new(NoopRecorder));
        assert!(enabled());
        counter("into.noop", 1);
        uninstall();
    }
}
