//! The in-memory [`Recorder`] implementation: a registry of counters,
//! gauges, and histograms keyed by `(class, name)`, plus capped event
//! and span logs.
//!
//! All maps are `BTreeMap`s so iteration — and therefore every export —
//! is deterministic regardless of recording order. The registry takes
//! one short mutex per operation; the hot paths in `core` only reach it
//! once per completed fixpoint run, so contention is a non-issue, and
//! the disabled path never gets here at all (see the crate root).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::Histogram;
use crate::Recorder;

/// Most recorded events kept before counting drops instead.
const EVENT_CAP: usize = 1 << 16;

/// Most raw spans kept (trace mode) before counting drops instead.
const SPAN_CAP: usize = 1 << 20;

type Key = (&'static str, &'static str);

/// One recorded event (a discrete decision, e.g. a fallback).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRec {
    /// Query-class label ("" when recorded outside any class scope).
    pub class: String,
    /// Event name (e.g. `fallback`).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

/// One raw span occurrence (trace mode only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Query-class label ("" when recorded outside any class scope).
    pub class: String,
    /// Span name (e.g. `engine.run`).
    pub name: String,
    /// Registry-wide completion order.
    pub seq: u64,
    /// Wall-clock duration in nanoseconds.
    pub ns: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    hists: BTreeMap<Key, Histogram>,
    events: Vec<(&'static str, &'static str, String)>,
    events_dropped: u64,
    spans: Vec<(&'static str, &'static str, u64, u64)>,
    spans_dropped: u64,
    span_seq: u64,
}

/// A thread-safe metrics registry. Install with [`crate::install`],
/// read back with [`Registry::snapshot`].
#[derive(Default)]
pub struct Registry {
    trace_spans: bool,
    inner: Mutex<Inner>,
}

/// An owned, immutable copy of a registry's contents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by `(class, name)`.
    pub counters: BTreeMap<(String, String), u64>,
    /// Last-write-wins gauges by `(class, name)`.
    pub gauges: BTreeMap<(String, String), u64>,
    /// Histograms by `(class, name)`; span durations land here too.
    pub hists: BTreeMap<(String, String), Histogram>,
    /// Recorded events in arrival order.
    pub events: Vec<EventRec>,
    /// Events discarded once [`EVENT_CAP`] was reached.
    pub events_dropped: u64,
    /// Raw spans in completion order (empty unless trace mode is on).
    pub spans: Vec<SpanRec>,
    /// Spans discarded once [`SPAN_CAP`] was reached.
    pub spans_dropped: u64,
}

impl Registry {
    /// A metrics-only registry: spans aggregate into histograms but raw
    /// per-span records are not kept.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A tracing registry: like [`Registry::new`] but every span is
    /// also kept individually (up to [`SPAN_CAP`]) for the trace export.
    pub fn with_trace() -> Self {
        Registry {
            trace_spans: true,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry mutex only means a panic elsewhere while
        // recording; the data is still sound for export.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copies the current contents out for export.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let key = |k: &Key| (k.0.to_string(), k.1.to_string());
        Snapshot {
            counters: inner.counters.iter().map(|(k, v)| (key(k), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (key(k), *v)).collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, v)| (key(k), v.clone()))
                .collect(),
            events: inner
                .events
                .iter()
                .map(|(c, n, d)| EventRec {
                    class: c.to_string(),
                    name: n.to_string(),
                    detail: d.clone(),
                })
                .collect(),
            events_dropped: inner.events_dropped,
            spans: inner
                .spans
                .iter()
                .map(|(c, n, seq, ns)| SpanRec {
                    class: c.to_string(),
                    name: n.to_string(),
                    seq: *seq,
                    ns: *ns,
                })
                .collect(),
            spans_dropped: inner.spans_dropped,
        }
    }
}

impl Recorder for Registry {
    fn counter(&self, class: &'static str, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry((class, name)).or_insert(0) += delta;
    }

    fn gauge(&self, class: &'static str, name: &'static str, value: u64) {
        let mut inner = self.lock();
        inner.gauges.insert((class, name), value);
    }

    fn observe(&self, class: &'static str, name: &'static str, value: u64) {
        let mut inner = self.lock();
        inner.hists.entry((class, name)).or_default().record(value);
    }

    fn event(&self, class: &'static str, name: &'static str, detail: &str) {
        let mut inner = self.lock();
        if inner.events.len() < EVENT_CAP {
            inner.events.push((class, name, detail.to_string()));
        } else {
            inner.events_dropped += 1;
        }
    }

    fn span(&self, class: &'static str, name: &'static str, ns: u64) {
        let mut inner = self.lock();
        inner.hists.entry((class, name)).or_default().record(ns);
        if self.trace_spans {
            let seq = inner.span_seq;
            inner.span_seq += 1;
            if inner.spans.len() < SPAN_CAP {
                inner.spans.push((class, name, seq, ns));
            } else {
                inner.spans_dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_aggregates_by_class_and_name() {
        let r = Registry::with_trace();
        r.counter("sssp", "engine.seq.pops", 3);
        r.counter("sssp", "engine.seq.pops", 4);
        r.counter("cc", "engine.seq.pops", 1);
        r.gauge("", "threads", 2);
        r.gauge("", "threads", 4);
        r.observe("sssp", "scope.size", 10);
        r.span("sssp", "engine.run", 1_000);
        r.span("sssp", "engine.run", 2_000);
        r.event("sssp", "fallback", "scope exceeded");

        let s = r.snapshot();
        assert_eq!(
            s.counters[&("sssp".to_string(), "engine.seq.pops".to_string())],
            7
        );
        assert_eq!(
            s.counters[&("cc".to_string(), "engine.seq.pops".to_string())],
            1
        );
        assert_eq!(s.gauges[&(String::new(), "threads".to_string())], 4);
        let run = &s.hists[&("sssp".to_string(), "engine.run".to_string())];
        assert_eq!(run.count(), 2);
        assert_eq!(run.sum(), 3_000);
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].seq, 0);
        assert_eq!(s.spans[1].seq, 1);
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn metrics_only_registry_keeps_no_raw_spans() {
        let r = Registry::new();
        r.span("", "wal.commit", 500);
        let s = r.snapshot();
        assert!(s.spans.is_empty());
        assert_eq!(
            s.hists[&(String::new(), "wal.commit".to_string())].count(),
            1
        );
    }
}
