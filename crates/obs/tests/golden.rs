//! Golden-file test for the metrics JSON-lines schema.
//!
//! The exported form is canonical: this test pins the exact bytes for a
//! fixed snapshot against `tests/golden/metrics.jsonl`, then checks the
//! serialize → parse → re-serialize round trip is byte-identical. Any
//! intentional schema change must regenerate the golden file (run with
//! `INCGRAPH_REGEN_GOLDEN=1`) and show up in review as a diff.

use incgraph_obs::{parse_jsonl, to_jsonl, Recorder, Registry, Snapshot};

fn golden_snapshot() -> Snapshot {
    let r = Registry::with_trace();
    // One of each line type, covering the corners: empty (session)
    // class, escaping in event details, multi-bucket histograms, and
    // extreme values.
    r.counter("sssp", "engine.seq.pops", 12_345);
    r.counter("sssp", "scope.evals", 99);
    r.counter("", "wal.bytes", 4_096);
    r.gauge("cc", "engine.par.threads", 4);
    r.gauge("", "recover.checkpoint_seq", 7);
    r.observe("sssp", "scope.size", 0);
    r.observe("sssp", "scope.size", 1);
    r.observe("sssp", "scope.size", 1023);
    r.observe("sssp", "scope.size", u64::MAX);
    r.span("cc", "engine.run", 1_500_000);
    r.span("", "wal.commit", 800);
    r.event("lcc", "fallback", "scope_exceeded observed=10 limit=5");
    r.event("", "note", "quote \" backslash \\ newline \n tab \t done");
    r.snapshot()
}

#[test]
fn golden_file_matches_and_round_trips() {
    let snap = golden_snapshot();
    let serialized = to_jsonl(&snap);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.jsonl");
    if std::env::var_os("INCGRAPH_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &serialized).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        serialized, golden,
        "schema drifted from tests/golden/metrics.jsonl; \
         regenerate with INCGRAPH_REGEN_GOLDEN=1 if intentional"
    );

    let parsed = parse_jsonl(&serialized).expect("own output parses");
    assert_eq!(parsed, snap, "parse loses nothing");
    assert_eq!(
        to_jsonl(&parsed),
        serialized,
        "serialize → parse → re-serialize is byte-identical"
    );
}
