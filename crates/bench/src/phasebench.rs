//! Instrumented per-phase pass for `incgraph bench`.
//!
//! Where [`crate::parbench`] measures end-to-end wall clock per class,
//! this pass answers *where the time goes*: it drives one batch build
//! plus one guarded incremental update per query class — all seven,
//! including the engine-less DFS/BC — and a small durable
//! WAL/checkpoint/recover segment, with every stage recording into
//! whatever `incgraph_obs` recorder is installed. The resulting
//! snapshot carries the phase latency histograms (`scope.h`,
//! `engine.run`, `audit.run`, `wal.commit`, …) that
//! [`render_phase_table`] turns into the bench breakdown table and that
//! `--metrics` exports as JSON-lines.

use incgraph_algos::{IncrementalState, QueryClass, Session};
use incgraph_core::audit::FixpointAudit;
use incgraph_durable::{recover, DurableOptions, DurableSession};
use incgraph_obs::Snapshot;
use incgraph_workloads::{random_batch_pct, random_pattern, sample_sources, Dataset};
use std::fmt::Write as _;

/// |ΔG| as a percentage of |G|, matching [`crate::parbench`].
const DELTA_PCT: f64 = 1.0;

/// The pipeline spans the breakdown table reports, in pipeline order.
const PHASES: [&str; 8] = [
    "scope.h",
    "engine.run",
    "update.guarded",
    "audit.run",
    "graph.apply",
    "wal.commit",
    "ckpt.write",
    "recover.replay",
];

/// Runs the instrumented pass: per class, a batch build and one guarded
/// update over a 1% ΔG (with a full fixpoint audit so `audit.run` shows
/// up), then a throwaway durable store exercising the WAL, checkpoint,
/// and recovery spans. Metrics land in the installed recorder; with the
/// noop recorder this is just a slow no-op, so callers only invoke it
/// when a registry is live.
pub fn run_phases(threads: usize, scale: f64) {
    for (i, &class) in QueryClass::ALL.iter().enumerate() {
        // Attribute the batch build too — update_guarded scopes itself.
        let _cls = incgraph_obs::class_scope(class.name());
        // Keep the quadratic kernels in budget, like the timing suite.
        let class_scale = match class {
            QueryClass::Sim | QueryClass::Dfs => scale * 0.5,
            QueryClass::Lcc | QueryClass::Bc => scale * 0.25,
            _ => scale,
        };
        let directed = !class.requires_undirected();
        let g0 = Dataset::LiveJournal.graph(directed, class_scale);
        let src = sample_sources(&g0, 1, 7)[0];
        let mut builder = Session::builder(class)
            .threads(threads)
            .audit(FixpointAudit::full());
        if class.source_rooted() {
            builder = builder.source(src);
        }
        if class == QueryClass::Sim {
            builder = builder.pattern(random_pattern(&g0, 4, 6, 11));
        }
        let mut session = builder.build(&g0).expect("sim pattern supplied");
        let delta = random_batch_pct(&g0, DELTA_PCT, 100, 0xb5 + i as u64);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let tracked = session.update_guarded(&g1, &applied);
        // The typed output delta is the probe's freshness payload: how
        // many digest entries the 1% ΔG actually moved, per class — the
        // same figure the service ships as a DELTA notification.
        incgraph_obs::observe("output.delta.entries", tracked.delta.changes.len() as u64);
    }

    // Durable segment: two WAL-logged batches, a checkpoint, one more
    // batch, then verified recovery — populating the storage-side spans
    // (`wal.commit`, `ckpt.write`, `recover.replay`) outside any class
    // scope. The store is throwaway; failures here (e.g. an unwritable
    // temp dir) cost the storage rows, not the bench.
    let dir = std::env::temp_dir().join(format!("incgraph-phasebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let g0 = Dataset::WikiDe.graph(false, (scale * 0.25).max(0.01));
    let states: Vec<Box<dyn IncrementalState>> = vec![
        Box::new(
            Session::builder(QueryClass::Sssp)
                .build(&g0)
                .expect("sssp needs no pattern"),
        ),
        Box::new(
            Session::builder(QueryClass::Cc)
                .build(&g0)
                .expect("cc needs no pattern"),
        ),
    ];
    if let Ok(mut session) =
        DurableSession::create(&dir, g0.clone(), states, DurableOptions::default())
    {
        for seed in [51u64, 52] {
            let batch = random_batch_pct(session.graph(), DELTA_PCT, 100, seed);
            let _ = session.apply(&batch);
        }
        let _ = session.checkpoint();
        let batch = random_batch_pct(session.graph(), DELTA_PCT, 100, 53);
        let _ = session.apply(&batch);
        drop(session);
        let _ = recover(&dir, DurableOptions::default());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Renders the per-phase breakdown: one row per (class, span) pair with
/// the count, total, and mean of its latency histogram. Rows come out
/// of the snapshot's `BTreeMap` sorted by class then phase, so the
/// table is deterministic; storage-side spans recorded outside any
/// class scope show under class `-`.
pub fn render_phase_table(s: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<16} {:>8} {:>12} {:>12}",
        "class", "phase", "count", "total", "mean"
    );
    for ((class, name), h) in &s.hists {
        if !PHASES.contains(&name.as_str()) {
            continue;
        }
        let class_label = if class.is_empty() { "-" } else { class };
        let _ = writeln!(
            out,
            "{:<6} {:<16} {:>8} {:>12} {:>12}",
            class_label,
            name,
            h.count(),
            crate::parbench::fmt_ns(h.sum() as f64),
            crate::parbench::fmt_ns(h.mean())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_obs::Registry;
    use std::sync::Arc;

    #[test]
    fn phase_pass_covers_all_classes_and_storage() {
        let registry = Arc::new(Registry::new());
        incgraph_obs::install(registry.clone());
        run_phases(2, 0.02);
        incgraph_obs::uninstall();
        let snap = registry.snapshot();

        for class in QueryClass::ALL {
            let key = (class.name().to_string(), "update.guarded".to_string());
            assert!(
                snap.hists.get(&key).is_some_and(|h| h.count() >= 1),
                "missing update.guarded histogram for {}",
                class.name()
            );
            let key = (class.name().to_string(), "output.delta.entries".to_string());
            assert!(
                snap.hists.get(&key).is_some_and(|h| h.count() >= 1),
                "missing output.delta.entries histogram for {}",
                class.name()
            );
        }
        for storage in ["wal.commit", "ckpt.write", "recover.replay"] {
            assert!(
                snap.hists
                    .iter()
                    .any(|((_, name), h)| name == storage && h.count() >= 1),
                "missing {storage} histogram"
            );
        }

        let table = render_phase_table(&snap);
        assert!(table.contains("update.guarded"), "{table}");
        assert!(table.contains("wal.commit"), "{table}");
        // One row per class for the guarded-update phase at minimum.
        assert!(table.lines().count() > QueryClass::ALL.len(), "{table}");
    }
}
