//! Shared measurement drivers: each query class gets one "suite" that
//! times the batch algorithm, the deduced incremental algorithm, its
//! unit-at-a-time variant, and the class's fine-tuned competitor on the
//! same `(graph, ΔG)` instance.

use crate::report::measure;
use incgraph_algos::{CcState, DfsState, LccState, SimState, SsspState};
use incgraph_baselines::{DynCc, DynDfs, DynDij, DynLcc, IncMatch, RrSssp};
use incgraph_graph::{DynamicGraph, NodeId, Pattern, UpdateBatch};

/// Wall-clock seconds for the four contenders on one instance.
#[derive(Clone, Copy, Debug)]
pub struct Timings {
    /// Batch recompute on the updated graph.
    pub batch: f64,
    /// The deduced incremental algorithm, whole batch at once.
    pub inc: f64,
    /// The deduced algorithm processing unit updates one by one.
    pub inc_n: f64,
    /// The class's fine-tuned competitor.
    pub competitor: f64,
}

/// Applies `batch` to a copy of `g0`, returning the updated graph.
pub fn updated(g0: &DynamicGraph, batch: &UpdateBatch) -> DynamicGraph {
    let mut g = g0.clone();
    batch.apply(&mut g);
    g
}

/// Times a unit-at-a-time replay: the state evolves across the whole
/// batch (graph application included — it is inherent to the method).
fn unit_replay<S>(
    g0: &DynamicGraph,
    batch: &UpdateBatch,
    mut state: S,
    mut step: impl FnMut(&mut S, &DynamicGraph, &incgraph_graph::AppliedBatch),
) -> f64 {
    let mut g = g0.clone();
    let t = std::time::Instant::now();
    for unit in batch.as_units() {
        let applied = unit.apply(&mut g);
        if !applied.is_empty() {
            step(&mut state, &g, &applied);
        }
    }
    t.elapsed().as_secs_f64()
}

/// SSSP: Dijkstra / IncSSSP / IncSSSP_n / DynDij.
pub fn sssp_suite(reps: usize, g0: &DynamicGraph, batch: &UpdateBatch, src: NodeId) -> Timings {
    let g1 = updated(g0, batch);
    let batch_t = measure(
        reps,
        || (),
        |_| {
            std::hint::black_box(SsspState::batch(&g1, src));
        },
    );
    let inc = measure(
        reps,
        || {
            let (state, _) = SsspState::batch(g0, src);
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.update(g, applied);
        },
    );
    let inc_n = measure(
        reps,
        || Some(SsspState::batch(g0, src).0),
        |state| {
            let s = state.take().expect("fresh state per rep");
            let _ = unit_replay(g0, batch, s, |s, g, a| {
                s.update(g, a);
            });
        },
    );
    let competitor = measure(
        reps,
        || {
            let state = DynDij::new(g0, src);
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.apply_batch(g, applied);
        },
    );
    Timings {
        batch: batch_t,
        inc,
        inc_n,
        competitor,
    }
}

/// CC: CC_fp / IncCC / IncCC_n / DynCC.
pub fn cc_suite(reps: usize, g0: &DynamicGraph, batch: &UpdateBatch) -> Timings {
    let g1 = updated(g0, batch);
    let batch_t = measure(
        reps,
        || (),
        |_| {
            std::hint::black_box(CcState::batch(&g1));
        },
    );
    let inc = measure(
        reps,
        || {
            let (state, _) = CcState::batch(g0);
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.update(g, applied);
        },
    );
    let inc_n = measure(
        reps,
        || Some(CcState::batch(g0).0),
        |state| {
            let s = state.take().expect("fresh state per rep");
            let _ = unit_replay(g0, batch, s, |s, g, a| {
                s.update(g, a);
            });
        },
    );
    // DynCC processes unit updates one by one by construction; computing
    // the component labelling afterwards is part of answering the query.
    let competitor = measure(
        reps,
        || DynCc::new(g0),
        |state| {
            let mut g = g0.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut g);
                state.apply_batch(&applied);
            }
            std::hint::black_box(state.components());
        },
    );
    Timings {
        batch: batch_t,
        inc,
        inc_n,
        competitor,
    }
}

/// Sim: Sim_fp / IncSim / IncSim_n / IncMatch.
pub fn sim_suite(reps: usize, g0: &DynamicGraph, batch: &UpdateBatch, q: &Pattern) -> Timings {
    let g1 = updated(g0, batch);
    let batch_t = measure(
        reps,
        || (),
        |_| {
            std::hint::black_box(SimState::batch(&g1, q.clone()));
        },
    );
    let inc = measure(
        reps,
        || {
            let (state, _) = SimState::batch(g0, q.clone());
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.update(g, applied);
        },
    );
    let inc_n = measure(
        reps,
        || Some(SimState::batch(g0, q.clone()).0),
        |state| {
            let s = state.take().expect("fresh state per rep");
            let _ = unit_replay(g0, batch, s, |s, g, a| {
                s.update(g, a);
            });
        },
    );
    let competitor = measure(
        reps,
        || {
            let state = IncMatch::new(g0, q.clone());
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.apply_batch(g, applied);
        },
    );
    Timings {
        batch: batch_t,
        inc,
        inc_n,
        competitor,
    }
}

/// DFS: DFS_fp / IncDFS / IncDFS_n / DynDFS.
pub fn dfs_suite(reps: usize, g0: &DynamicGraph, batch: &UpdateBatch) -> Timings {
    let g1 = updated(g0, batch);
    let batch_t = measure(
        reps,
        || (),
        |_| {
            std::hint::black_box(DfsState::batch(&g1));
        },
    );
    let inc = measure(
        reps,
        || {
            let (state, _) = DfsState::batch(g0);
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.update(g, applied);
        },
    );
    let inc_n = measure(
        reps,
        || Some(DfsState::batch(g0).0),
        |state| {
            let s = state.take().expect("fresh state per rep");
            let _ = unit_replay(g0, batch, s, |s, g, a| {
                s.update(g, a);
            });
        },
    );
    let competitor = measure(
        reps,
        || DynDfs::new(g0),
        |state| {
            let mut g = g0.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut g);
                for op in applied.ops() {
                    state.apply_unit(&g, op.inserted, op.src, op.dst);
                }
            }
        },
    );
    Timings {
        batch: batch_t,
        inc,
        inc_n,
        competitor,
    }
}

/// LCC: LCC_fp / IncLCC / IncLCC_n / DynLCC.
pub fn lcc_suite(reps: usize, g0: &DynamicGraph, batch: &UpdateBatch) -> Timings {
    let g1 = updated(g0, batch);
    let batch_t = measure(
        reps,
        || (),
        |_| {
            std::hint::black_box(LccState::batch(&g1));
        },
    );
    let inc = measure(
        reps,
        || {
            let (state, _) = LccState::batch(g0);
            let mut g = g0.clone();
            let applied = batch.apply(&mut g);
            (state, g, applied)
        },
        |(state, g, applied)| {
            state.update(g, applied);
        },
    );
    let inc_n = measure(
        reps,
        || Some(LccState::batch(g0).0),
        |state| {
            let s = state.take().expect("fresh state per rep");
            let _ = unit_replay(g0, batch, s, |s, g, a| {
                s.update(g, a);
            });
        },
    );
    let competitor = measure(
        reps,
        || DynLcc::new(g0),
        |state| {
            let mut g = g0.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut g);
                for op in applied.ops() {
                    state.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
                }
            }
        },
    );
    Timings {
        batch: batch_t,
        inc,
        inc_n,
        competitor,
    }
}

/// Per-unit averages over a stream of unit updates, with the state and
/// graph evolving across the stream (the Exp-1 protocol). Returns average
/// seconds per unit update for each contender.
pub struct UnitSuite {
    /// The deduced incremental algorithm.
    pub inc: f64,
    /// The class's unit-update competitor.
    pub competitor: f64,
}

/// Generic per-unit driver.
pub fn unit_avg<S>(
    g0: &DynamicGraph,
    batch: &UpdateBatch,
    mut state: S,
    mut step: impl FnMut(&mut S, &DynamicGraph, &incgraph_graph::AppliedBatch),
) -> f64 {
    let mut g = g0.clone();
    let mut total = 0.0;
    let mut units = 0usize;
    for unit in batch.as_units() {
        let applied = unit.apply(&mut g);
        if applied.is_empty() {
            continue;
        }
        let t = std::time::Instant::now();
        step(&mut state, &g, &applied);
        total += t.elapsed().as_secs_f64();
        units += 1;
    }
    if units == 0 {
        0.0
    } else {
        total / units as f64
    }
}

/// Exp-1 unit averages for SSSP (IncSSSP vs RR).
pub fn sssp_units(g0: &DynamicGraph, batch: &UpdateBatch, src: NodeId) -> UnitSuite {
    let inc = unit_avg(g0, batch, SsspState::batch(g0, src).0, |s, g, a| {
        s.update(g, a);
    });
    let competitor = unit_avg(g0, batch, RrSssp::new(g0, src), |s, g, a| {
        for op in a.ops() {
            s.apply_unit(g, op.inserted, op.src, op.dst, op.weight);
        }
    });
    UnitSuite { inc, competitor }
}

/// Exp-1 unit averages for CC (IncCC vs DynCC).
pub fn cc_units(g0: &DynamicGraph, batch: &UpdateBatch) -> UnitSuite {
    let inc = unit_avg(g0, batch, CcState::batch(g0).0, |s, g, a| {
        s.update(g, a);
    });
    let competitor = unit_avg(g0, batch, DynCc::new(g0), |s, _g, a| {
        s.apply_batch(a);
    });
    UnitSuite { inc, competitor }
}

/// Exp-1 unit averages for Sim (IncSim vs IncMatch).
pub fn sim_units(g0: &DynamicGraph, batch: &UpdateBatch, q: &Pattern) -> UnitSuite {
    let inc = unit_avg(g0, batch, SimState::batch(g0, q.clone()).0, |s, g, a| {
        s.update(g, a);
    });
    let competitor = unit_avg(g0, batch, IncMatch::new(g0, q.clone()), |s, g, a| {
        s.apply_batch(g, a);
    });
    UnitSuite { inc, competitor }
}

/// Exp-1 unit averages for DFS (IncDFS vs DynDFS).
pub fn dfs_units(g0: &DynamicGraph, batch: &UpdateBatch) -> UnitSuite {
    let inc = unit_avg(g0, batch, DfsState::batch(g0).0, |s, g, a| {
        s.update(g, a);
    });
    let competitor = unit_avg(g0, batch, DynDfs::new(g0), |s, g, a| {
        for op in a.ops() {
            s.apply_unit(g, op.inserted, op.src, op.dst);
        }
    });
    UnitSuite { inc, competitor }
}

/// Exp-1 unit averages for LCC (IncLCC vs DynLCC).
pub fn lcc_units(g0: &DynamicGraph, batch: &UpdateBatch) -> UnitSuite {
    let inc = unit_avg(g0, batch, LccState::batch(g0).0, |s, g, a| {
        s.update(g, a);
    });
    let competitor = unit_avg(g0, batch, DynLcc::new(g0), |s, g, a| {
        for op in a.ops() {
            s.apply_unit(g, op.inserted, op.src, op.dst, op.weight);
        }
    });
    UnitSuite { inc, competitor }
}
