//! The experiments, keyed by the ids of DESIGN.md §6.

pub mod ablations;
pub mod drivers;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod summary;
pub mod table1;

use crate::report::Ctx;

/// All experiment ids, in DESIGN.md order.
pub const ALL: &[&str] = &[
    "table1",
    "fig6-ins",
    "fig6-del",
    "fig6-aff",
    "fig7-sssp",
    "fig7-cc",
    "fig7-sim",
    "fig7-lcc",
    "fig7-dfs",
    "fig7-wd",
    "fig7-scale",
    "fig8-mem",
    "summary",
    "abl-scope",
    "abl-ts",
    "abl-local",
];

/// Dispatches one experiment id. Returns `false` for unknown ids.
pub fn run(id: &str, ctx: &mut Ctx) -> bool {
    match id {
        "table1" => table1::run(ctx),
        "fig6-ins" => fig6::run(ctx, true),
        "fig6-del" => fig6::run(ctx, false),
        "fig6-aff" => fig6::run_aff(ctx),
        "fig7-sssp" => fig7::sssp(ctx),
        "fig7-cc" => fig7::cc(ctx),
        "fig7-sim" => fig7::sim(ctx),
        "fig7-lcc" => fig7::lcc(ctx),
        "fig7-dfs" => fig7::dfs(ctx),
        "fig7-wd" => fig7::wd(ctx),
        "fig7-scale" => fig7::scale(ctx),
        "fig8-mem" => fig8::run(ctx),
        "summary" => summary::run(ctx),
        "abl-scope" => ablations::scope(ctx),
        "abl-ts" => ablations::timestamps(ctx),
        "abl-local" => ablations::locality(ctx),
        _ => return false,
    }
    true
}
