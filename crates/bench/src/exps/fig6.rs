//! Exp-1 / Fig. 6: unit-update efficiency across all six datasets and
//! all five query classes, deduced algorithms vs the per-class dynamic
//! baselines — plus the affected-area fractions of Exp-1(1c)/(2c).

use super::drivers;
use crate::report::Ctx;
use incgraph_algos::{CcState, DfsState, LccState, SimState, SsspState};
use incgraph_workloads::datasets::MAX_WEIGHT;
use incgraph_workloads::{random_batch, random_pattern, sample_sources, Dataset};

/// Number of sampled unit updates per dataset (the paper uses 10 000;
/// scaled down with the graphs).
fn unit_count(ctx: &Ctx) -> usize {
    ((400.0 * ctx.scale) as usize).clamp(50, 2000)
}

/// Runs Fig. 6(a,c,e,g,i) (`insertions = true`) or Fig. 6(b,d,f,h,j).
pub fn run(ctx: &mut Ctx, insertions: bool) {
    let exp = if insertions { "fig6-ins" } else { "fig6-del" };
    let frac = if insertions { 1.0 } else { 0.0 };
    let count = unit_count(ctx);

    for ds in Dataset::ALL {
        let tag = ds.tag();
        let gd = ds.graph(true, ctx.scale);
        let gu = ds.graph(false, ctx.scale);
        let seed = 0xF16 ^ ds.nodes() as u64;

        // SSSP: IncSSSP vs RR.
        let batch = random_batch(&gd, count, frac, MAX_WEIGHT, seed);
        let src = sample_sources(&gd, 1, seed)[0];
        let t = drivers::sssp_units(&gd, &batch, src);
        ctx.record(exp, "IncSSSP", tag, 0.0, t.inc, "s/unit");
        ctx.record(exp, "RR", tag, 0.0, t.competitor, "s/unit");

        // CC: IncCC vs DynCC.
        let batch = random_batch(&gu, count, frac, 1, seed ^ 1);
        let t = drivers::cc_units(&gu, &batch);
        ctx.record(exp, "IncCC", tag, 0.0, t.inc, "s/unit");
        ctx.record(exp, "DynCC", tag, 0.0, t.competitor, "s/unit");

        // Sim: IncSim vs IncMatch.
        let q = random_pattern(&gd, 4, 6, seed ^ 2);
        let batch = random_batch(&gd, count, frac, MAX_WEIGHT, seed ^ 3);
        let t = drivers::sim_units(&gd, &batch, &q);
        ctx.record(exp, "IncSim", tag, 0.0, t.inc, "s/unit");
        ctx.record(exp, "IncMatch", tag, 0.0, t.competitor, "s/unit");

        // DFS: IncDFS vs DynDFS.
        let batch = random_batch(&gd, count, frac, MAX_WEIGHT, seed ^ 4);
        let t = drivers::dfs_units(&gd, &batch);
        ctx.record(exp, "IncDFS", tag, 0.0, t.inc, "s/unit");
        ctx.record(exp, "DynDFS", tag, 0.0, t.competitor, "s/unit");

        // LCC: IncLCC vs DynLCC.
        let batch = random_batch(&gu, count, frac, 1, seed ^ 5);
        let t = drivers::lcc_units(&gu, &batch);
        ctx.record(exp, "IncLCC", tag, 0.0, t.inc, "s/unit");
        ctx.record(exp, "DynLCC", tag, 0.0, t.competitor, "s/unit");
    }
}

/// Exp-1(1c)/(2c): |AFF| as a fraction of the status-variable universe on
/// the OKT stand-in, per class, for unit insertions and deletions.
pub fn run_aff(ctx: &mut Ctx) {
    let exp = "fig6-aff";
    let count = unit_count(ctx).min(200);
    let ds = Dataset::Orkut;
    let gd = ds.graph(true, ctx.scale);
    let gu = ds.graph(false, ctx.scale);

    for (label, frac, x) in [("ins", 1.0, 0.0), ("del", 0.0, 1.0)] {
        let seed = 0xAFF ^ (x as u64);

        // SSSP.
        let batch = incgraph_workloads::random_batch(&gd, count, frac, MAX_WEIGHT, seed);
        let src = sample_sources(&gd, 1, seed)[0];
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut g = gd.clone();
        let (mut st, _) = SsspState::batch(&g, src);
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            if applied.is_empty() {
                continue;
            }
            sum += st.update(&g, &applied).aff_fraction();
            n += 1;
        }
        ctx.record(
            exp,
            "IncSSSP",
            &format!("OKT/{label}"),
            x,
            sum / n.max(1) as f64,
            "fraction",
        );

        // CC.
        let batch = incgraph_workloads::random_batch(&gu, count, frac, 1, seed ^ 1);
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut g = gu.clone();
        let (mut st, _) = CcState::batch(&g);
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            if applied.is_empty() {
                continue;
            }
            sum += st.update(&g, &applied).aff_fraction();
            n += 1;
        }
        ctx.record(
            exp,
            "IncCC",
            &format!("OKT/{label}"),
            x,
            sum / n.max(1) as f64,
            "fraction",
        );

        // Sim.
        let q = random_pattern(&gd, 4, 6, seed ^ 2);
        let batch = incgraph_workloads::random_batch(&gd, count, frac, MAX_WEIGHT, seed ^ 3);
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut g = gd.clone();
        let (mut st, _) = SimState::batch(&g, q);
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            if applied.is_empty() {
                continue;
            }
            sum += st.update(&g, &applied).aff_fraction();
            n += 1;
        }
        ctx.record(
            exp,
            "IncSim",
            &format!("OKT/{label}"),
            x,
            sum / n.max(1) as f64,
            "fraction",
        );

        // DFS.
        let batch = incgraph_workloads::random_batch(&gd, count, frac, MAX_WEIGHT, seed ^ 4);
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut g = gd.clone();
        let (mut st, _) = DfsState::batch(&g);
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            if applied.is_empty() {
                continue;
            }
            sum += st.update(&g, &applied).aff_fraction();
            n += 1;
        }
        ctx.record(
            exp,
            "IncDFS",
            &format!("OKT/{label}"),
            x,
            sum / n.max(1) as f64,
            "fraction",
        );

        // LCC.
        let batch = incgraph_workloads::random_batch(&gu, count, frac, 1, seed ^ 5);
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut g = gu.clone();
        let (mut st, _) = LccState::batch(&g);
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            if applied.is_empty() {
                continue;
            }
            sum += st.update(&g, &applied).aff_fraction();
            n += 1;
        }
        ctx.record(
            exp,
            "IncLCC",
            &format!("OKT/{label}"),
            x,
            sum / n.max(1) as f64,
            "fraction",
        );
    }
}
