//! Table 1 (introduction): batch vs fine-tuned competitor vs deduced
//! incremental algorithm for SSSP, Sim and LCC on a 73.7M-element graph
//! (LiveJournal) with 4% updates — here the LJ stand-in at the configured
//! scale.

use super::drivers;
use crate::report::Ctx;
use incgraph_workloads::datasets::MAX_WEIGHT;
use incgraph_workloads::{random_batch_pct, random_pattern, sample_sources, Dataset};

const EXP: &str = "table1";

/// Runs the Table 1 measurement.
pub fn run(ctx: &mut Ctx) {
    let reps = ctx.reps;

    // SSSP on the directed LJ stand-in.
    let g = Dataset::LiveJournal.graph(true, ctx.scale);
    let batch = random_batch_pct(&g, 4.0, MAX_WEIGHT, 0xA1);
    let src = sample_sources(&g, 1, 0xB1)[0];
    let t = drivers::sssp_suite(reps, &g, &batch, src);
    ctx.record(EXP, "Batch (Dijkstra)", "LJ/SSSP", 4.0, t.batch, "s");
    ctx.record(
        EXP,
        "Competitor (DynDij)",
        "LJ/SSSP",
        4.0,
        t.competitor,
        "s",
    );
    ctx.record(EXP, "Deduced (IncSSSP)", "LJ/SSSP", 4.0, t.inc, "s");

    // Sim on the directed LJ stand-in, |Q| = (4, 6).
    let q = random_pattern(&g, 4, 6, 0xC1);
    let batch = random_batch_pct(&g, 4.0, MAX_WEIGHT, 0xA2);
    let t = drivers::sim_suite(reps, &g, &batch, &q);
    ctx.record(EXP, "Batch (Sim_fp)", "LJ/Sim", 4.0, t.batch, "s");
    ctx.record(
        EXP,
        "Competitor (IncMatch)",
        "LJ/Sim",
        4.0,
        t.competitor,
        "s",
    );
    ctx.record(EXP, "Deduced (IncSim)", "LJ/Sim", 4.0, t.inc, "s");

    // LCC on the undirected LJ stand-in.
    let gu = Dataset::LiveJournal.graph(false, ctx.scale);
    let batch = random_batch_pct(&gu, 4.0, 1, 0xA3);
    let t = drivers::lcc_suite(reps, &gu, &batch);
    ctx.record(EXP, "Batch (LCC_fp)", "LJ/LCC", 4.0, t.batch, "s");
    ctx.record(EXP, "Competitor (DynLCC)", "LJ/LCC", 4.0, t.competitor, "s");
    ctx.record(EXP, "Deduced (IncLCC)", "LJ/LCC", 4.0, t.inc, "s");
}
