//! Ablations for the design choices DESIGN.md calls out:
//!
//! * `abl-scope` — the Fig. 4 bounded scope function vs the Theorem 1
//!   PE-reset flood, for SSSP and CC (the paper's Example 2 vs Example 5
//!   contrast, quantified).
//! * `abl-ts` — the value of timestamps for the weakly deducible
//!   algorithms: IncCC and IncSim with their timestamp oracles vs the
//!   timestamp-free PE-reset fallbacks.

use crate::report::{measure, Ctx};
use incgraph_algos::{CcState, SimState, SsspState};
use incgraph_workloads::datasets::MAX_WEIGHT;
use incgraph_workloads::{
    clustered_batch, random_batch_pct, random_pattern, sample_sources, Dataset,
};

/// Bounded `h` (Fig. 4) vs brute-force PE reset (Theorem 1).
pub fn scope(ctx: &mut Ctx) {
    let exp = "abl-scope";
    for pct in [0.5, 1.0, 4.0] {
        // SSSP on LJ.
        let g0 = Dataset::LiveJournal.graph(true, ctx.scale);
        let src = sample_sources(&g0, 1, 5)[0];
        let batch = random_batch_pct(&g0, pct, MAX_WEIGHT, 0xAB ^ pct as u64);
        let bounded = measure(
            ctx.reps,
            || {
                let (state, _) = SsspState::batch(&g0, src);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update(g, applied);
            },
        );
        let pe = measure(
            ctx.reps,
            || {
                let (state, _) = SsspState::batch(&g0, src);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update_pe_reset(g, applied);
            },
        );
        ctx.record(exp, "SSSP bounded h", "LJ", pct, bounded, "s");
        ctx.record(exp, "SSSP PE-reset", "LJ", pct, pe, "s");

        // CC on OKT.
        let g0 = Dataset::Orkut.graph(false, ctx.scale);
        let batch = random_batch_pct(&g0, pct, 1, 0xAC ^ pct as u64);
        let bounded = measure(
            ctx.reps,
            || {
                let (state, _) = CcState::batch(&g0);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update(g, applied);
            },
        );
        let pe = measure(
            ctx.reps,
            || {
                let (state, _) = CcState::batch(&g0);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update_pe_reset(g, applied);
            },
        );
        ctx.record(exp, "CC bounded h", "OKT", pct, bounded, "s");
        ctx.record(exp, "CC PE-reset", "OKT", pct, pe, "s");
    }
}

/// Timestamps (weak deducibility) vs no auxiliary structure at all.
pub fn timestamps(ctx: &mut Ctx) {
    let exp = "abl-ts";
    for pct in [0.5, 1.0, 4.0] {
        // IncCC with vs without timestamps.
        let g0 = Dataset::Orkut.graph(false, ctx.scale);
        let batch = random_batch_pct(&g0, pct, 1, 0xAD ^ pct as u64);
        let with_ts = measure(
            ctx.reps,
            || {
                let (state, _) = CcState::batch(&g0);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update(g, applied);
            },
        );
        let without = measure(
            ctx.reps,
            || {
                let (state, _) = CcState::batch(&g0);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update_pe_reset(g, applied);
            },
        );
        ctx.record(exp, "IncCC timestamps", "OKT", pct, with_ts, "s");
        ctx.record(exp, "IncCC no-ts (PE)", "OKT", pct, without, "s");

        // IncSim with vs without timestamps.
        let g0 = Dataset::DbPedia.graph(true, ctx.scale);
        let q = random_pattern(&g0, 4, 6, 0xAE);
        let batch = random_batch_pct(&g0, pct, MAX_WEIGHT, 0xAF ^ pct as u64);
        let with_ts = measure(
            ctx.reps,
            || {
                let (state, _) = SimState::batch(&g0, q.clone());
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update(g, applied);
            },
        );
        let without = measure(
            ctx.reps,
            || {
                let (state, _) = SimState::batch(&g0, q.clone());
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update_pe_reset(g, applied);
            },
        );
        ctx.record(exp, "IncSim timestamps", "DP", pct, with_ts, "s");
        ctx.record(exp, "IncSim no-ts (PE)", "DP", pct, without, "s");
    }
}

/// Update locality (`abl-local`): the same |ΔG| delivered uniformly vs
/// clustered into a 2-hop ball. Relative boundedness predicts the
/// clustered case inspects (and costs) far less — the affected areas of
/// the unit updates overlap.
pub fn locality(ctx: &mut Ctx) {
    let exp = "abl-local";
    let g0 = Dataset::Twitter.graph(true, ctx.scale);
    let src = sample_sources(&g0, 1, 4)[0];
    let count = g0.size() / 100; // 1% of |G|

    for (label, batch) in [
        (
            "uniform",
            incgraph_workloads::random_batch(&g0, count, 0.5, MAX_WEIGHT, 0xB0),
        ),
        (
            "clustered",
            clustered_batch(&g0, count, 0.5, MAX_WEIGHT, src, 2, 0xB1),
        ),
    ] {
        let secs = measure(
            ctx.reps,
            || {
                let (state, _) = SsspState::batch(&g0, src);
                let mut g = g0.clone();
                let applied = batch.apply(&mut g);
                (state, g, applied)
            },
            |(state, g, applied)| {
                state.update(g, applied);
            },
        );
        // Separate (untimed) run to collect the AFF fraction.
        let (mut state, _) = SsspState::batch(&g0, src);
        let mut g = g0.clone();
        let applied = batch.apply(&mut g);
        let report = state.update(&g, &applied);
        ctx.record(exp, &format!("SSSP {label}"), "TW", 1.0, secs, "s");
        ctx.record(
            exp,
            &format!("SSSP {label} AFF"),
            "TW",
            1.0,
            report.aff_fraction(),
            "fraction",
        );
    }
}
