//! Exp-2 and Exp-3 / Fig. 7: batch-update effectiveness (varying |ΔG|,
//! real-life temporal updates) and scalability (varying |G|).

use super::drivers;
use crate::report::{measure, Ctx};
use incgraph_algos::{CcState, SimState, SsspState};
use incgraph_baselines::{DynCc, DynDij, IncMatch};
use incgraph_workloads::datasets::MAX_WEIGHT;
use incgraph_workloads::{random_batch_pct, random_pattern, sample_sources, Dataset};

/// Fig. 7(a,b): SSSP on FS and TW, |ΔG| from 2% to 32%.
pub fn sssp(ctx: &mut Ctx) {
    let exp = "fig7-sssp";
    for ds in [Dataset::Friendster, Dataset::Twitter] {
        let g = ds.graph(true, ctx.scale);
        let src = sample_sources(&g, 1, 7)[0];
        for pct in [2.0, 4.0, 8.0, 16.0, 32.0] {
            let batch = random_batch_pct(&g, pct, MAX_WEIGHT, 0x7A ^ pct as u64);
            let t = drivers::sssp_suite(ctx.reps, &g, &batch, src);
            ctx.record(exp, "Dijkstra", ds.tag(), pct, t.batch, "s");
            ctx.record(exp, "IncSSSP", ds.tag(), pct, t.inc, "s");
            ctx.record(exp, "IncSSSP_n", ds.tag(), pct, t.inc_n, "s");
            ctx.record(exp, "DynDij", ds.tag(), pct, t.competitor, "s");
        }
    }
}

/// Fig. 7(c): CC on OKT, |ΔG| from 4% to 64%.
pub fn cc(ctx: &mut Ctx) {
    let exp = "fig7-cc";
    let ds = Dataset::Orkut;
    let g = ds.graph(false, ctx.scale);
    for pct in [4.0, 8.0, 16.0, 32.0, 64.0] {
        let batch = random_batch_pct(&g, pct, 1, 0x7C ^ pct as u64);
        let t = drivers::cc_suite(ctx.reps, &g, &batch);
        ctx.record(exp, "CC_fp", ds.tag(), pct, t.batch, "s");
        ctx.record(exp, "IncCC", ds.tag(), pct, t.inc, "s");
        ctx.record(exp, "IncCC_n", ds.tag(), pct, t.inc_n, "s");
        ctx.record(exp, "DynCC", ds.tag(), pct, t.competitor, "s");
    }
}

/// Fig. 7(d,e): Sim on DP and FS, |ΔG| from 4% to 64%, |Q| = (4, 6).
pub fn sim(ctx: &mut Ctx) {
    let exp = "fig7-sim";
    for ds in [Dataset::DbPedia, Dataset::Friendster] {
        let g = ds.graph(true, ctx.scale);
        let q = random_pattern(&g, 4, 6, 0x51);
        for pct in [4.0, 8.0, 16.0, 32.0, 64.0] {
            let batch = random_batch_pct(&g, pct, MAX_WEIGHT, 0x7D ^ pct as u64);
            let t = drivers::sim_suite(ctx.reps, &g, &batch, &q);
            ctx.record(exp, "Sim_fp", ds.tag(), pct, t.batch, "s");
            ctx.record(exp, "IncSim", ds.tag(), pct, t.inc, "s");
            ctx.record(exp, "IncSim_n", ds.tag(), pct, t.inc_n, "s");
            ctx.record(exp, "IncMatch", ds.tag(), pct, t.competitor, "s");
        }
    }
}

/// Fig. 7(f): LCC on LJ, |ΔG| from 2% to 32%.
pub fn lcc(ctx: &mut Ctx) {
    let exp = "fig7-lcc";
    let ds = Dataset::LiveJournal;
    let g = ds.graph(false, ctx.scale);
    for pct in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let batch = random_batch_pct(&g, pct, 1, 0x7E ^ pct as u64);
        let t = drivers::lcc_suite(ctx.reps, &g, &batch);
        ctx.record(exp, "LCC_fp", ds.tag(), pct, t.batch, "s");
        ctx.record(exp, "IncLCC", ds.tag(), pct, t.inc, "s");
        ctx.record(exp, "IncLCC_n", ds.tag(), pct, t.inc_n, "s");
        ctx.record(exp, "DynLCC", ds.tag(), pct, t.competitor, "s");
    }
}

/// Exp-2(1e): DFS on OKT across small |ΔG|, locating the crossover where
/// batch DFS overtakes IncDFS (the paper puts it above 4%).
pub fn dfs(ctx: &mut Ctx) {
    let exp = "fig7-dfs";
    let ds = Dataset::Orkut;
    let g = ds.graph(true, ctx.scale);
    for pct in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let batch = random_batch_pct(&g, pct, MAX_WEIGHT, 0x7F ^ (pct * 4.0) as u64);
        let t = drivers::dfs_suite(ctx.reps, &g, &batch);
        ctx.record(exp, "DFS_fp", ds.tag(), pct, t.batch, "s");
        ctx.record(exp, "IncDFS", ds.tag(), pct, t.inc, "s");
        ctx.record(exp, "IncDFS_n", ds.tag(), pct, t.inc_n, "s");
        ctx.record(exp, "DynDFS", ds.tag(), pct, t.competitor, "s");
    }
}

/// Fig. 7(g,h,i): real-life temporal updates on the WD stand-in, five
/// monthly windows of ~1.9% |G| with an 81/19 insert/delete mix; SSSP,
/// CC and Sim. Also records the scope function's share of the total
/// incremental cost (Exp-2(2d)).
pub fn wd(ctx: &mut Ctx) {
    let exp = "fig7-wd";
    let t = Dataset::WikiDe.temporal(true, 5, 1.9, ctx.scale);

    // SSSP over the window sequence.
    {
        let g0 = &t.initial;
        let src = sample_sources(g0, 1, 3)[0];
        let mut scope_share = 0.0;
        // IncSSSP: evolve state across windows, measure total update time.
        let mut g = g0.clone();
        let (mut st, _) = SsspState::batch(&g, src);
        let mut inc_total = 0.0;
        for w in &t.windows {
            let applied = w.apply(&mut g);
            let t0 = std::time::Instant::now();
            let rep = st.update(&g, &applied);
            inc_total += t0.elapsed().as_secs_f64();
            scope_share += rep.scope_share() / t.windows.len() as f64;
        }
        ctx.record(exp, "IncSSSP", "WD", 5.0, inc_total, "s");
        ctx.record(
            exp,
            "IncSSSP scope-share",
            "WD",
            5.0,
            scope_share,
            "fraction",
        );
        // Batch recompute per window.
        let batch_total = measure(
            1,
            || (),
            |_| {
                let mut g = g0.clone();
                for w in &t.windows {
                    w.apply(&mut g);
                    std::hint::black_box(SsspState::batch(&g, src));
                }
            },
        );
        ctx.record(exp, "Dijkstra", "WD", 5.0, batch_total, "s");
        // DynDij.
        let dd_total = measure(
            1,
            || (),
            |_| {
                let mut g = g0.clone();
                let mut dd = DynDij::new(&g, src);
                for w in &t.windows {
                    let applied = w.apply(&mut g);
                    dd.apply_batch(&g, &applied);
                }
                std::hint::black_box(dd.distances().len());
            },
        );
        ctx.record(exp, "DynDij", "WD", 5.0, dd_total, "s");
    }

    // CC over the window sequence (undirected view is approximated by the
    // weak-connectivity mode of CcState on the directed stand-in).
    {
        let g0 = &t.initial;
        let mut g = g0.clone();
        let (mut st, _) = CcState::batch(&g);
        let mut inc_total = 0.0;
        let mut scope_share = 0.0;
        for w in &t.windows {
            let applied = w.apply(&mut g);
            let t0 = std::time::Instant::now();
            let rep = st.update(&g, &applied);
            inc_total += t0.elapsed().as_secs_f64();
            scope_share += rep.scope_share() / t.windows.len() as f64;
        }
        ctx.record(exp, "IncCC", "WD", 5.0, inc_total, "s");
        ctx.record(exp, "IncCC scope-share", "WD", 5.0, scope_share, "fraction");
        let batch_total = measure(
            1,
            || (),
            |_| {
                let mut g = g0.clone();
                for w in &t.windows {
                    w.apply(&mut g);
                    std::hint::black_box(CcState::batch(&g));
                }
            },
        );
        ctx.record(exp, "CC_fp", "WD", 5.0, batch_total, "s");
        let dyn_total = measure(
            1,
            || (),
            |_| {
                let mut g = g0.clone();
                let mut dc = DynCc::new(&g);
                for w in &t.windows {
                    for unit in w.as_units() {
                        let applied = unit.apply(&mut g);
                        dc.apply_batch(&applied);
                    }
                    std::hint::black_box(dc.components());
                }
            },
        );
        ctx.record(exp, "DynCC", "WD", 5.0, dyn_total, "s");
    }

    // Sim over the window sequence.
    {
        let g0 = &t.initial;
        let q = random_pattern(g0, 4, 6, 0x99);
        let mut g = g0.clone();
        let (mut st, _) = SimState::batch(&g, q.clone());
        let mut inc_total = 0.0;
        let mut scope_share = 0.0;
        for w in &t.windows {
            let applied = w.apply(&mut g);
            let t0 = std::time::Instant::now();
            let rep = st.update(&g, &applied);
            inc_total += t0.elapsed().as_secs_f64();
            scope_share += rep.scope_share() / t.windows.len() as f64;
        }
        ctx.record(exp, "IncSim", "WD", 5.0, inc_total, "s");
        ctx.record(
            exp,
            "IncSim scope-share",
            "WD",
            5.0,
            scope_share,
            "fraction",
        );
        let batch_total = measure(
            1,
            || (),
            |_| {
                let mut g = g0.clone();
                for w in &t.windows {
                    w.apply(&mut g);
                    std::hint::black_box(SimState::batch(&g, q.clone()));
                }
            },
        );
        ctx.record(exp, "Sim_fp", "WD", 5.0, batch_total, "s");
        let im_total = measure(
            1,
            || (),
            |_| {
                let mut g = g0.clone();
                let mut im = IncMatch::new(&g, q.clone());
                for w in &t.windows {
                    let applied = w.apply(&mut g);
                    im.apply_batch(&g, &applied);
                }
                std::hint::black_box(im.match_count());
            },
        );
        ctx.record(exp, "IncMatch", "WD", 5.0, im_total, "s");
    }
}

/// Exp-3 / Fig. 7(j,k,l): scalability on synthetic graphs, |ΔG| = 1%|G|,
/// |G| swept over four sizes; SSSP, CC, Sim.
pub fn scale(ctx: &mut Ctx) {
    let exp = "fig7-scale";
    for mult in [0.5, 1.0, 2.0, 4.0] {
        let n = ((20_000.0 * ctx.scale * mult) as usize).max(200);
        let m = n * 9;
        let size = (n + m) as f64;

        // SSSP + Sim on a directed synthetic graph.
        let g = incgraph_graph::gen::uniform(n, m, true, MAX_WEIGHT, 5, 0x5CA1E);
        let src = sample_sources(&g, 1, 1)[0];
        let batch = random_batch_pct(&g, 1.0, MAX_WEIGHT, 0x5CA1E ^ mult as u64);
        let t = drivers::sssp_suite(ctx.reps, &g, &batch, src);
        ctx.record(exp, "Dijkstra", "synthetic", size, t.batch, "s");
        ctx.record(exp, "IncSSSP", "synthetic", size, t.inc, "s");
        ctx.record(exp, "DynDij", "synthetic", size, t.competitor, "s");

        let q = random_pattern(&g, 4, 6, 0x5CA1F);
        let t = drivers::sim_suite(ctx.reps, &g, &batch, &q);
        ctx.record(exp, "Sim_fp", "synthetic", size, t.batch, "s");
        ctx.record(exp, "IncSim", "synthetic", size, t.inc, "s");
        ctx.record(exp, "IncMatch", "synthetic", size, t.competitor, "s");

        // CC on an undirected synthetic graph.
        let gu = incgraph_graph::gen::uniform(n, m, false, 1, 5, 0x5CA20);
        let batch = random_batch_pct(&gu, 1.0, 1, 0x5CA21 ^ mult as u64);
        let t = drivers::cc_suite(ctx.reps, &gu, &batch);
        ctx.record(exp, "CC_fp", "synthetic", size, t.batch, "s");
        ctx.record(exp, "IncCC", "synthetic", size, t.inc, "s");
        ctx.record(exp, "DynCC", "synthetic", size, t.competitor, "s");
    }
}
