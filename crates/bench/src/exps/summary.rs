//! §6 Summary: speedups of the deduced algorithms over their batch
//! counterparts and over the fine-tuned competitors at |ΔG| = 1% and 4%.

use super::drivers;
use crate::report::Ctx;
use incgraph_workloads::datasets::MAX_WEIGHT;
use incgraph_workloads::{random_batch_pct, random_pattern, sample_sources, Dataset};

const EXP: &str = "summary";

/// Runs the summary speedup table.
pub fn run(ctx: &mut Ctx) {
    for pct in [1.0, 4.0] {
        // SSSP on FS.
        let g = Dataset::Friendster.graph(true, ctx.scale);
        let src = sample_sources(&g, 1, 2)[0];
        let batch = random_batch_pct(&g, pct, MAX_WEIGHT, 0x90 ^ pct as u64);
        let t = drivers::sssp_suite(ctx.reps, &g, &batch, src);
        ctx.record(EXP, "SSSP vs batch", "FS", pct, t.batch / t.inc, "x");
        ctx.record(
            EXP,
            "SSSP vs competitor",
            "FS",
            pct,
            t.competitor / t.inc,
            "x",
        );

        // CC on OKT.
        let g = Dataset::Orkut.graph(false, ctx.scale);
        let batch = random_batch_pct(&g, pct, 1, 0x91 ^ pct as u64);
        let t = drivers::cc_suite(ctx.reps, &g, &batch);
        ctx.record(EXP, "CC vs batch", "OKT", pct, t.batch / t.inc, "x");
        ctx.record(
            EXP,
            "CC vs competitor",
            "OKT",
            pct,
            t.competitor / t.inc,
            "x",
        );

        // Sim on DP.
        let g = Dataset::DbPedia.graph(true, ctx.scale);
        let q = random_pattern(&g, 4, 6, 0x92);
        let batch = random_batch_pct(&g, pct, MAX_WEIGHT, 0x93 ^ pct as u64);
        let t = drivers::sim_suite(ctx.reps, &g, &batch, &q);
        ctx.record(EXP, "Sim vs batch", "DP", pct, t.batch / t.inc, "x");
        ctx.record(
            EXP,
            "Sim vs competitor",
            "DP",
            pct,
            t.competitor / t.inc,
            "x",
        );

        // DFS on OKT.
        let g = Dataset::Orkut.graph(true, ctx.scale);
        let batch = random_batch_pct(&g, pct, MAX_WEIGHT, 0x94 ^ pct as u64);
        let t = drivers::dfs_suite(ctx.reps, &g, &batch);
        ctx.record(EXP, "DFS vs batch", "OKT", pct, t.batch / t.inc, "x");
        ctx.record(
            EXP,
            "DFS vs competitor",
            "OKT",
            pct,
            t.competitor / t.inc,
            "x",
        );

        // LCC on LJ.
        let g = Dataset::LiveJournal.graph(false, ctx.scale);
        let batch = random_batch_pct(&g, pct, 1, 0x95 ^ pct as u64);
        let t = drivers::lcc_suite(ctx.reps, &g, &batch);
        ctx.record(EXP, "LCC vs batch", "LJ", pct, t.batch / t.inc, "x");
        ctx.record(
            EXP,
            "LCC vs competitor",
            "LJ",
            pct,
            t.competitor / t.inc,
            "x",
        );
    }
}
