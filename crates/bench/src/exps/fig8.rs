//! Exp-4 / Fig. 8: memory cost of batch algorithms, deduced incremental
//! algorithms and baselines on OKT with |ΔG| = 1%|G|.
//!
//! The paper reports resident set size; we report the bytes held by each
//! algorithm's own state (status variables, auxiliary structures,
//! engines), which isolates exactly the deducible/weakly-deducible
//! distinction the experiment is about.

use crate::report::Ctx;
use incgraph_algos::cc::CcSpec;
use incgraph_algos::sim::SimSpec;
use incgraph_algos::{CcState, DfsState, LccState, SimState, SsspState};
use incgraph_baselines::{DynCc, DynDfs, DynDij, DynLcc, IncMatch, RrSssp};
use incgraph_core::{run_fixpoint, Status};
use incgraph_workloads::datasets::MAX_WEIGHT;
use incgraph_workloads::{random_batch_pct, random_pattern, sample_sources, Dataset};

const EXP: &str = "fig8-mem";

/// Runs the space-cost measurement.
pub fn run(ctx: &mut Ctx) {
    let ds = Dataset::Orkut;
    let gd0 = ds.graph(true, ctx.scale);
    let gu0 = ds.graph(false, ctx.scale);

    // SSSP.
    {
        let src = sample_sources(&gd0, 1, 1)[0];
        let batch = random_batch_pct(&gd0, 1.0, MAX_WEIGHT, 0x81);
        let mut g = gd0.clone();
        let (mut inc, _) = SsspState::batch(&g, src);
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        // Batch Dijkstra's working state = one distance array; model it
        // with a fresh batch run's status only.
        let (batch_state, _) = SsspState::batch(&g, src);
        ctx.record(
            EXP,
            "Dijkstra",
            "OKT",
            0.0,
            batch_state.space_bytes() as f64,
            "bytes",
        );
        ctx.record(
            EXP,
            "IncSSSP",
            "OKT",
            0.0,
            inc.space_bytes() as f64,
            "bytes",
        );
        let mut rr = RrSssp::new(&gd0, src);
        let mut g = gd0.clone();
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            for op in applied.ops() {
                rr.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
            }
        }
        ctx.record(EXP, "RR", "OKT", 0.0, rr.space_bytes() as f64, "bytes");
        let mut dd = DynDij::new(&gd0, src);
        let mut g = gd0.clone();
        let applied = batch.apply(&mut g);
        dd.apply_batch(&g, &applied);
        ctx.record(EXP, "DynDij", "OKT", 0.0, dd.space_bytes() as f64, "bytes");
    }

    // CC.
    {
        let batch = random_batch_pct(&gu0, 1.0, 1, 0x82);
        let mut g = gu0.clone();
        let (mut inc, _) = CcState::batch(&g);
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        // CC_fp keeps no timestamps — measure a stamp-free fixpoint run
        // (the weakly-deducible IncCC pays for its stamps; Fig. 8's point).
        {
            let spec = CcSpec::new(&g);
            let mut status = Status::init(&spec, false);
            run_fixpoint(&spec, &mut status, 0..g.node_count());
            // Both batch and incremental pay the engine scratch while
            // running; the stamp array is the weakly-deducible delta.
            let engine = incgraph_core::engine::Engine::new(g.node_count());
            ctx.record(
                EXP,
                "CC_fp",
                "OKT",
                0.0,
                (status.space_bytes() + engine.space_bytes()) as f64,
                "bytes",
            );
        }
        ctx.record(EXP, "IncCC", "OKT", 0.0, inc.space_bytes() as f64, "bytes");
        let mut dc = DynCc::new(&gu0);
        let mut g = gu0.clone();
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            dc.apply_batch(&applied);
        }
        ctx.record(EXP, "DynCC", "OKT", 0.0, dc.space_bytes() as f64, "bytes");
    }

    // Sim.
    {
        let q = random_pattern(&gd0, 4, 6, 0x83);
        let batch = random_batch_pct(&gd0, 1.0, MAX_WEIGHT, 0x84);
        let mut g = gd0.clone();
        let (mut inc, _) = SimState::batch(&g, q.clone());
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        // Sim_fp without timestamps, as above.
        {
            let spec = SimSpec::new(&g, &q);
            let mut status = Status::init(&spec, false);
            let scope: Vec<usize> = (0..g.node_count() * q.node_count())
                .filter(|&x| status.get(x))
                .collect();
            run_fixpoint(&spec, &mut status, scope);
            let engine = incgraph_core::engine::Engine::new(g.node_count() * q.node_count());
            ctx.record(
                EXP,
                "Sim_fp",
                "OKT",
                0.0,
                (status.space_bytes() + engine.space_bytes()) as f64,
                "bytes",
            );
        }
        ctx.record(EXP, "IncSim", "OKT", 0.0, inc.space_bytes() as f64, "bytes");
        let mut im = IncMatch::new(&gd0, q);
        let mut g = gd0.clone();
        let applied = batch.apply(&mut g);
        im.apply_batch(&g, &applied);
        ctx.record(
            EXP,
            "IncMatch",
            "OKT",
            0.0,
            im.space_bytes() as f64,
            "bytes",
        );
    }

    // DFS.
    {
        let batch = random_batch_pct(&gd0, 1.0, MAX_WEIGHT, 0x85);
        let mut g = gd0.clone();
        let (mut inc, _) = DfsState::batch(&g);
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        let (batch_state, _) = DfsState::batch(&g);
        ctx.record(
            EXP,
            "DFS_fp",
            "OKT",
            0.0,
            batch_state.space_bytes() as f64,
            "bytes",
        );
        ctx.record(EXP, "IncDFS", "OKT", 0.0, inc.space_bytes() as f64, "bytes");
        let mut dd = DynDfs::new(&gd0);
        let mut g = gd0.clone();
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            for op in applied.ops() {
                dd.apply_unit(&g, op.inserted, op.src, op.dst);
            }
        }
        ctx.record(EXP, "DynDFS", "OKT", 0.0, dd.space_bytes() as f64, "bytes");
    }

    // LCC.
    {
        let batch = random_batch_pct(&gu0, 1.0, 1, 0x86);
        let mut g = gu0.clone();
        let (mut inc, _) = LccState::batch(&g);
        let applied = batch.apply(&mut g);
        inc.update(&g, &applied);
        let (batch_state, _) = LccState::batch(&g);
        ctx.record(
            EXP,
            "LCC_fp",
            "OKT",
            0.0,
            batch_state.space_bytes() as f64,
            "bytes",
        );
        ctx.record(EXP, "IncLCC", "OKT", 0.0, inc.space_bytes() as f64, "bytes");
        let mut dl = DynLcc::new(&gu0);
        let mut g = gu0.clone();
        for unit in batch.as_units() {
            let applied = unit.apply(&mut g);
            for op in applied.ops() {
                dl.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
            }
        }
        ctx.record(EXP, "DynLCC", "OKT", 0.0, dl.space_bytes() as f64, "bytes");
    }
}
