//! Measurement records, timing helpers and table rendering.

use std::fmt::Write as _;
use std::time::Instant;

/// One measured data point of an experiment: a `(series, dataset, x) → y`
/// tuple, e.g. `("IncSSSP", "FS", 4.0) → 0.0123 s`.
#[derive(Clone, Debug)]
pub struct Record {
    /// Experiment id (e.g. `fig7-sssp`).
    pub experiment: String,
    /// Line/series name (algorithm).
    pub series: String,
    /// Dataset tag.
    pub dataset: String,
    /// X coordinate: |ΔG| percentage, |G| size, etc.
    pub x: f64,
    /// Measured value.
    pub y: f64,
    /// Unit of `y` (`s`, `bytes`, `fraction`).
    pub unit: String,
}

/// Experiment context: scale knobs plus the record sink.
pub struct Ctx {
    /// Multiplier on stand-in dataset sizes (1.0 = the DESIGN.md base).
    pub scale: f64,
    /// Repetitions per measurement (the paper uses 5; smaller by default
    /// to keep the full suite fast).
    pub reps: usize,
    /// Collected records.
    pub sink: Sink,
}

impl Ctx {
    /// Context with the given knobs.
    pub fn new(scale: f64, reps: usize) -> Self {
        Ctx {
            scale,
            reps,
            sink: Sink::default(),
        }
    }

    /// Records a data point.
    pub fn record(
        &mut self,
        experiment: &str,
        series: &str,
        dataset: &str,
        x: f64,
        y: f64,
        unit: &str,
    ) {
        self.sink.records.push(Record {
            experiment: experiment.to_string(),
            series: series.to_string(),
            dataset: dataset.to_string(),
            x,
            y,
            unit: unit.to_string(),
        });
    }
}

/// Collects records and renders/persists them.
#[derive(Default)]
pub struct Sink {
    /// All records, in insertion order.
    pub records: Vec<Record>,
}

impl Sink {
    /// Renders the records of one experiment as a Markdown table:
    /// one row per `(dataset, x)`, one column per series.
    pub fn table(&self, experiment: &str) -> String {
        let recs: Vec<&Record> = self
            .records
            .iter()
            .filter(|r| r.experiment == experiment)
            .collect();
        if recs.is_empty() {
            return format!("(no records for {experiment})\n");
        }
        let mut series: Vec<&str> = recs.iter().map(|r| r.series.as_str()).collect();
        series.dedup();
        let mut uniq = Vec::new();
        for s in series {
            if !uniq.contains(&s) {
                uniq.push(s);
            }
        }
        let unit = recs[0].unit.clone();
        let mut keys: Vec<(String, f64)> = Vec::new();
        for r in &recs {
            if !keys.iter().any(|(d, x)| *d == r.dataset && *x == r.x) {
                keys.push((r.dataset.clone(), r.x));
            }
        }
        let mut out = String::new();
        let _ = write!(out, "| dataset | x |");
        for s in &uniq {
            let _ = write!(out, " {s} ({unit}) |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|---|");
        for _ in &uniq {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (d, x) in keys {
            let _ = write!(out, "| {d} | {x} |");
            for s in &uniq {
                let v = recs
                    .iter()
                    .find(|r| r.dataset == d && r.x == x && r.series == *s)
                    .map(|r| r.y);
                match v {
                    Some(v) => {
                        let _ = write!(out, " {v:.6} |");
                    }
                    None => {
                        let _ = write!(out, " - |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes all records of one experiment to `results/<id>.json`.
    pub fn persist(&self, experiment: &str, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let recs: Vec<&Record> = self
            .records
            .iter()
            .filter(|r| r.experiment == experiment)
            .collect();
        let mut json = String::from("[");
        for (i, r) in recs.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "\n  {{\n    \"experiment\": {},\n    \"series\": {},\n    \"dataset\": {},\n    \"x\": {},\n    \"y\": {},\n    \"unit\": {}\n  }}",
                json_str(&r.experiment),
                json_str(&r.series),
                json_str(&r.dataset),
                json_f64(r.x),
                json_f64(r.y),
                json_str(&r.unit),
            );
        }
        json.push_str("\n]");
        std::fs::write(dir.join(format!("{experiment}.json")), json)
    }

    /// Distinct experiment ids present.
    pub fn experiments(&self) -> Vec<String> {
        let mut ids: Vec<String> = Vec::new();
        for r in &self.records {
            if !ids.contains(&r.experiment) {
                ids.push(r.experiment.clone());
            }
        }
        ids
    }
}

/// JSON string literal with the escapes our record fields can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number for an f64; non-finite values have no JSON literal, so
/// they serialize as null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // Shortest representation that round-trips.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Measures the average wall time of `run` over `reps` repetitions, with
/// a fresh `setup()` product per repetition (setup time excluded).
pub fn measure<S>(reps: usize, setup: impl FnMut() -> S, run: impl FnMut(&mut S)) -> f64 {
    measure_stats(reps, setup, run).0
}

/// Like [`measure`], but also returns the fastest sample. The min is
/// the robust estimator for µs-scale operations — scheduler hiccups
/// only ever add time, so the floor tracks the true cost while the
/// mean absorbs every interrupt that landed inside a sample. The
/// bench-regression gate compares mins for exactly that reason.
pub fn measure_stats<S>(
    reps: usize,
    mut setup: impl FnMut() -> S,
    mut run: impl FnMut(&mut S),
) -> (f64, f64) {
    assert!(reps > 0);
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let mut s = setup();
        let t = Instant::now();
        run(&mut s);
        let dt = t.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
        std::hint::black_box(&mut s);
    }
    (total / reps as f64, min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_grid() {
        let mut ctx = Ctx::new(1.0, 1);
        ctx.record("e", "A", "LJ", 2.0, 0.5, "s");
        ctx.record("e", "B", "LJ", 2.0, 0.25, "s");
        ctx.record("e", "A", "LJ", 4.0, 0.6, "s");
        let t = ctx.sink.table("e");
        assert!(t.contains("| LJ | 2 |"), "{t}");
        assert!(t.contains("A (s)") && t.contains("B (s)"));
        assert!(t.contains("0.500000") && t.contains("0.250000"));
        assert!(t.contains(" - |"), "missing B@4 renders as dash: {t}");
    }

    #[test]
    fn measure_runs_setup_per_rep() {
        let mut count = 0;
        let _ = measure(3, || count += 1, |_: &mut ()| {});
        assert_eq!(count, 3);
    }

    #[test]
    fn persist_writes_json() {
        let mut ctx = Ctx::new(1.0, 1);
        ctx.record("unit-test-exp", "A", "LJ", 1.0, 2.0, "s");
        let dir = std::env::temp_dir().join("incgraph-bench-test");
        ctx.sink.persist("unit-test-exp", &dir).unwrap();
        let body = std::fs::read_to_string(dir.join("unit-test-exp.json")).unwrap();
        assert!(body.contains("\"series\": \"A\""));
    }
}
