//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--scale S] [--reps R] [--out DIR] <exp-id>... | all | list
//! ```
//!
//! Prints one Markdown table per experiment and writes JSON records to
//! `results/` (or `--out`). Experiment ids are listed in DESIGN.md §6.

use incgraph_bench::exps;
use incgraph_bench::report::Ctx;
use std::path::PathBuf;

fn main() {
    let mut scale = 0.25_f64;
    let mut reps = 2_usize;
    let mut out = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs an integer"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "list" => {
                for id in exps::ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(exps::ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: experiments [--scale S] [--reps R] [--out DIR] <exp-id>... | all | list");
        eprintln!("experiments: {}", exps::ALL.join(", "));
        std::process::exit(2);
    }

    let mut ctx = Ctx::new(scale, reps);
    for id in &ids {
        eprintln!("== running {id} (scale {scale}, reps {reps}) ==");
        let t = std::time::Instant::now();
        if !exps::run(id, &mut ctx) {
            die(&format!("unknown experiment id {id} (try `list`)"));
        }
        eprintln!("   {id} done in {:.1}s", t.elapsed().as_secs_f64());
        println!("\n### {id}\n");
        print!("{}", ctx.sink.table(id));
        if let Err(e) = ctx.sink.persist(id, &out) {
            eprintln!("warning: could not write {id}.json: {e}");
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
