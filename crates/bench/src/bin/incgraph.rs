//! `incgraph` CLI: run any query class over an edge-list graph file and
//! keep the answer fresh under an update-stream file.
//!
//! ```text
//! incgraph <class> --graph G.txt [--updates D.txt] [--directed] [--source N] [--out result.txt]
//! ```
//!
//! Classes: `sssp` (needs `--source`), `cc`, `sim` (built-in (4,6) random
//! pattern seeded by `--seed`), `dfs`, `lcc`, `bc`, `reach` (needs
//! `--source`). Graph files use the SNAP/KONECT edge-list format of
//! `incgraph_graph::io`; update streams use `+ u v [w]` / `- u v` lines.
//! With `--updates`, the batch result is computed first, the stream is
//! applied as one `ΔG`, and the incremental algorithm reports its
//! affected-area statistics — the library's two-phase shape, end to end.

use incgraph_algos::{BcState, CcState, DfsState, LccState, ReachState, SimState, SsspState};
use incgraph_core::metrics::BoundednessReport;
use incgraph_graph::io::{read_graph, read_updates};
use incgraph_graph::DynamicGraph;
use incgraph_workloads::random_pattern;
use std::io::Write;
use std::time::Instant;

struct Args {
    class: String,
    graph: String,
    updates: Option<String>,
    directed: bool,
    source: u32,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        class: String::new(),
        graph: String::new(),
        updates: None,
        directed: false,
        source: 0,
        seed: 42,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--graph" => args.graph = it.next().unwrap_or_else(|| die("--graph needs a path")),
            "--updates" => args.updates = Some(it.next().unwrap_or_else(|| die("--updates needs a path"))),
            "--directed" => args.directed = true,
            "--source" => {
                args.source = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--source needs a node id"))
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"))
            }
            "--out" => args.out = Some(it.next().unwrap_or_else(|| die("--out needs a path"))),
            flag if flag.starts_with('-') => die(&format!("unknown flag {flag}")),
            class if args.class.is_empty() => args.class = class.to_string(),
            extra => die(&format!("unexpected argument {extra}")),
        }
    }
    if args.class.is_empty() || args.graph.is_empty() {
        eprintln!(
            "usage: incgraph <sssp|cc|sim|dfs|lcc|bc|reach> --graph G.txt \
             [--updates D.txt] [--directed] [--source N] [--seed S] [--out F]"
        );
        std::process::exit(2);
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn report(phase: &str, secs: f64, rep: Option<&BoundednessReport>) {
    match rep {
        Some(r) => eprintln!(
            "{phase}: {:.3} ms | scope {} | inspected {} of {} vars ({:.4}%)",
            secs * 1e3,
            r.scope_size,
            r.inspected_vars,
            r.total_vars,
            100.0 * r.aff_fraction()
        ),
        None => eprintln!("{phase}: {:.3} ms", secs * 1e3),
    }
}

fn write_out(path: &Option<String>, lines: impl Iterator<Item = String>) {
    match path {
        Some(p) => {
            let f = std::fs::File::create(p).unwrap_or_else(|e| die(&format!("{p}: {e}")));
            let mut w = std::io::BufWriter::new(f);
            for l in lines {
                writeln!(w, "{l}").expect("write");
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            for l in lines {
                writeln!(w, "{l}").expect("write");
            }
        }
    }
}

fn load(args: &Args) -> (DynamicGraph, Option<incgraph_graph::UpdateBatch>) {
    let f = std::fs::File::open(&args.graph).unwrap_or_else(|e| die(&format!("{}: {e}", args.graph)));
    let g = read_graph(f, args.directed).unwrap_or_else(|e| die(&format!("{}: {e}", args.graph)));
    eprintln!(
        "loaded {}: |V|={}, |E|={}, {}",
        args.graph,
        g.node_count(),
        g.edge_count(),
        if args.directed { "directed" } else { "undirected" }
    );
    let updates = args.updates.as_ref().map(|p| {
        let f = std::fs::File::open(p).unwrap_or_else(|e| die(&format!("{p}: {e}")));
        read_updates(f).unwrap_or_else(|e| die(&format!("{p}: {e}")))
    });
    (g, updates)
}

fn main() {
    let args = parse_args();
    let (mut g, updates) = load(&args);

    macro_rules! run {
        ($batch:expr, $update:expr, $emit:expr) => {{
            let t = Instant::now();
            let mut state = $batch;
            report("batch", t.elapsed().as_secs_f64(), None);
            if let Some(batch) = &updates {
                let applied = batch.apply(&mut g);
                eprintln!("applying ΔG: {} effective unit updates", applied.len());
                let t = Instant::now();
                let rep = $update(&mut state, &g, &applied);
                report("incremental", t.elapsed().as_secs_f64(), Some(&rep));
            }
            write_out(&args.out, $emit(&state, &g));
        }};
    }

    match args.class.as_str() {
        "sssp" => run!(
            SsspState::batch(&g, args.source).0,
            |s: &mut SsspState, g: &_, a: &_| s.update(g, a),
            |s: &SsspState, _g: &DynamicGraph| {
                let d = s.distances().to_vec();
                d.into_iter().enumerate().map(|(v, d)| {
                    if d == u64::MAX {
                        format!("{v} inf")
                    } else {
                        format!("{v} {d}")
                    }
                })
            }
        ),
        "reach" => run!(
            ReachState::batch(&g, args.source).0,
            |s: &mut ReachState, g: &_, a: &_| s.update(g, a),
            |s: &ReachState, _g: &DynamicGraph| {
                let r = s.reached().to_vec();
                r.into_iter()
                    .enumerate()
                    .map(|(v, b)| format!("{v} {}", b as u8))
            }
        ),
        "cc" => run!(
            CcState::batch(&g).0,
            |s: &mut CcState, g: &_, a: &_| s.update(g, a),
            |s: &CcState, _g: &DynamicGraph| {
                let c = s.components().to_vec();
                c.into_iter().enumerate().map(|(v, c)| format!("{v} {c}"))
            }
        ),
        "dfs" => run!(
            DfsState::batch(&g).0,
            |s: &mut DfsState, g: &_, a: &_| s.update(g, a),
            |s: &DfsState, g: &DynamicGraph| {
                let rows: Vec<String> = (0..g.node_count() as u32)
                    .map(|v| format!("{v} {} {} {}", s.first(v), s.last(v), s.parent(v)))
                    .collect();
                rows.into_iter()
            }
        ),
        "lcc" => run!(
            LccState::batch(&g).0,
            |s: &mut LccState, g: &_, a: &_| s.update(g, a),
            |s: &LccState, g: &DynamicGraph| {
                let rows: Vec<String> = (0..g.node_count() as u32)
                    .map(|v| format!("{v} {:.6}", s.coefficient(v)))
                    .collect();
                rows.into_iter()
            }
        ),
        "bc" => run!(
            BcState::batch(&g).0,
            |s: &mut BcState, g: &_, a: &_| s.update(g, a),
            |s: &BcState, g: &DynamicGraph| {
                let mut rows = vec![format!(
                    "articulation_points {}",
                    s.articulation_points(g)
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )];
                rows.push(format!(
                    "bridges {}",
                    s.bridges(g)
                        .iter()
                        .map(|(a, b)| format!("{a}-{b}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
                rows.into_iter()
            }
        ),
        "sim" => {
            let q = random_pattern(&g, 4, 6, args.seed);
            eprintln!("pattern |Q|=(4,6), seed {}", args.seed);
            run!(
                SimState::batch(&g, q.clone()).0,
                |s: &mut SimState, g: &_, a: &_| s.update(g, a),
                |s: &SimState, _g: &DynamicGraph| {
                    let rel = s.relation();
                    rel.into_iter().map(|(v, u)| format!("{v} {u}"))
                }
            )
        }
        other => die(&format!("unknown class {other}")),
    }
}
