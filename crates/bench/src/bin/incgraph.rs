//! `incgraph` CLI: run any query class over an edge-list graph file and
//! keep the answer fresh under an update-stream file.
//!
//! ```text
//! incgraph <class> --graph G.txt [--updates D.txt] [--directed] [--source N] [--out result.txt]
//! ```
//!
//! Classes: `sssp` (needs `--source`), `cc`, `sim` (built-in (4,6) random
//! pattern seeded by `--seed`), `dfs`, `lcc`, `bc`, `reach` (needs
//! `--source`). Graph files use the SNAP/KONECT edge-list format of
//! `incgraph_graph::io`; update streams use `+ u v [w]` / `- u v` lines.
//! With `--updates`, the batch result is computed first, the stream is
//! validated and applied transactionally as one `ΔG`
//! ([`UpdateBatch::apply_validated`]), and the incremental algorithm runs
//! through the hardened pipeline ([`incgraph_algos::update_with`]) —
//! opt into its degradation and auditing knobs with `--max-aff-frac F`
//! (fall back to batch recompute past that affected fraction),
//! `--max-scope N` (absolute cap), and `--audit` / `--audit-stride K`
//! (post-run fixpoint re-check).
//!
//! Every subcommand accepts `--metrics PATH` and `--trace PATH`
//! (see `crates/obs` and docs/OBSERVABILITY.md): `--metrics` installs
//! the metrics registry and writes the aggregate counters, gauges, and
//! phase-latency histograms as canonical JSON-lines at exit; `--trace`
//! additionally keeps every completed span and writes the full snapshot
//! (raw spans included) to its own file. Either flag also prints the
//! human-readable summary to stderr. Without them the no-op recorder
//! stays installed and the pipeline pays one atomic load per site.
//!
//! Durability lives behind two subcommands over a *store* directory
//! (WAL + checkpoints + manifest, see `crates/durable`):
//! `incgraph checkpoint --store DIR` creates the store from `--graph` on
//! first use, WAL-logs an optional `--updates` batch, and forces a
//! checkpoint; `incgraph recover --store DIR` rebuilds the live state
//! from the newest valid checkpoint plus incremental WAL replay and
//! prints the recovery report with per-class state digests. The
//! `DURABLE_CRASH_AT` environment variable (`pre-fsync`, `post-fsync`,
//! `mid-checkpoint`, `post-rename`) arms a one-shot injected crash at
//! that point — the process dies mid-pipeline exactly as `kill -9`
//! would, which is how the crash-injection CI matrix exercises recovery
//! end to end.
//!
//! The long-running **service** (see `crates/service` and
//! docs/SERVICE.md) gets three subcommands: `incgraph serve` binds the
//! `incgraph-wire/1` TCP server over an in-memory store or a WAL-durable
//! one (`--store DIR`, one writer per store — a second opener exits with
//! code 7) and runs until a wire `SHUTDOWN` drains it; `incgraph load`
//! drives many concurrent client sessions against a live server and
//! prints per-class `UPDATE`→`ACK` latency percentiles; `incgraph chaos`
//! runs the network-chaos oracle (byte-cutting proxy, abrupt server
//! kill/restart cycles) and exits 1 on any exactly-once or recovery
//! violation.
//!
//! Output paths (`--out`, `--metrics`, `--trace`, bench datapoints) get
//! their parent directories created on demand, so pointing a run at
//! `results/new/dir/out.txt` just works.
//!
//! Failures map to distinct exit codes so scripts can tell them apart:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | oracle violation (`fuzz`, `replay`, `chaos`, failed `load` sessions) |
//! | 2    | usage error (bad flags, missing class/graph) |
//! | 3    | file unreadable / output unwritable / durable store corrupt |
//! | 4    | parse error (reported with its line number) |
//! | 5    | invalid update stream (rejected by validation, graph rolled back) |
//! | 6    | injected crash fired (`DURABLE_CRASH_AT`) |
//! | 7    | store busy: another live process holds the store's `LOCK` |

use incgraph_algos::{
    update_with, BcState, CcState, DfsState, ExecOptions, IncrementalState, LccState, QueryClass,
    ReachState, Session, SimState, SsspState,
};
use incgraph_core::audit::FixpointAudit;
use incgraph_core::fallback::FallbackPolicy;
use incgraph_core::metrics::BoundednessReport;
use incgraph_durable::{crc::crc32, CrashPoint, DurableError, DurableOptions, DurableSession};
use incgraph_graph::io::{read_graph, read_updates, IoError, ParseError};
use incgraph_graph::{BatchError, DynamicGraph, UpdateBatch};
use incgraph_obs::Registry;
use incgraph_workloads::random_pattern;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Everything that can end a run early, with its process exit code.
#[derive(Debug)]
enum CliError {
    /// A fuzz/replay run observed an unexpected oracle outcome (a real
    /// divergence during `fuzz`, a corpus case violating its
    /// expectation during `replay`).
    Oracle(String),
    /// Bad invocation: unknown flag/class, missing argument.
    Usage(String),
    /// A named input could not be opened or read.
    FileUnreadable {
        path: String,
        source: std::io::Error,
    },
    /// A named input was readable but malformed.
    Parse { path: String, source: ParseError },
    /// The update stream parsed but failed batch validation; the graph
    /// was rolled back to its pre-batch state before exiting.
    InvalidUpdates { path: String, source: BatchError },
    /// The output destination could not be written.
    Output {
        path: String,
        source: std::io::Error,
    },
    /// A durable-store operation failed (I/O, corruption beyond
    /// recovery, …).
    Durable { store: String, source: DurableError },
    /// The one-shot crash armed via `DURABLE_CRASH_AT` fired; the store
    /// was left exactly as a real mid-pipeline kill would leave it.
    InjectedCrash(CrashPoint),
    /// Another live process holds the store's `LOCK` file; nothing was
    /// touched and a retry after the owner exits will succeed.
    StoreBusy { store: String, pid: u32 },
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Oracle(_) => 1,
            CliError::Usage(_) => 2,
            CliError::FileUnreadable { .. }
            | CliError::Output { .. }
            | CliError::Durable { .. } => 3,
            CliError::Parse { .. } => 4,
            CliError::InvalidUpdates { .. } => 5,
            CliError::InjectedCrash(_) => 6,
            CliError::StoreBusy { .. } => 7,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Oracle(msg) => write!(f, "{msg}"),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::FileUnreadable { path, source } => write!(f, "{path}: {source}"),
            CliError::Parse { path, source } => {
                write!(f, "{path}:{}: {}", source.line, source.message)
            }
            CliError::InvalidUpdates { path, source } => {
                write!(f, "{path}: invalid update stream: {source}")
            }
            CliError::Output { path, source } => write!(f, "{path}: {source}"),
            CliError::Durable { store, source } => write!(f, "{store}: {source}"),
            CliError::InjectedCrash(p) => write!(f, "injected crash fired at {p}"),
            CliError::StoreBusy { store, pid } => write!(
                f,
                "{store}: busy — locked by live process {pid} \
                 (one writer per store; retry after it exits)"
            ),
        }
    }
}

/// Wraps a durable-store failure, routing the cases with their own exit
/// codes (invalid ΔG → 5, injected crash → 6, lock held → 7) past the
/// generic 3.
fn durable_error(store: &str, e: DurableError) -> CliError {
    match e {
        DurableError::InvalidBatch(source) => CliError::InvalidUpdates {
            path: store.to_string(),
            source,
        },
        DurableError::InjectedCrash(p) => CliError::InjectedCrash(p),
        DurableError::StoreBusy { dir, pid } => CliError::StoreBusy { store: dir, pid },
        source => CliError::Durable {
            store: store.to_string(),
            source,
        },
    }
}

/// Creates the parent directory of an output path on demand, so
/// `--out results/new/dir/f.txt` (and `--metrics`/`--trace`/bench
/// datapoints) never fail on a missing directory.
fn ensure_parent(path: &str) -> Result<(), CliError> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| CliError::Output {
                path: path.to_string(),
                source: e,
            })?;
        }
    }
    Ok(())
}

/// Splits an [`IoError`] from reading `path` into the two exit classes.
fn read_error(path: &str, e: IoError) -> CliError {
    match e {
        IoError::Io(source) => CliError::FileUnreadable {
            path: path.to_string(),
            source,
        },
        IoError::Parse(source) => CliError::Parse {
            path: path.to_string(),
            source,
        },
    }
}

struct Args {
    class: String,
    graph: String,
    updates: Option<String>,
    directed: bool,
    source: u32,
    seed: u64,
    out: Option<String>,
    max_aff_frac: f64,
    max_scope: usize,
    audit: bool,
    audit_stride: usize,
    /// Thread counts. Per-class runs use exactly one; `bench` sweeps
    /// the whole list, one suite (and one BENCH entry) per count.
    threads: Vec<usize>,
    scale: f64,
    /// `bench` only: committed baseline JSON for the regression gate.
    check_against: Option<String>,
}

const USAGE: &str = "usage: incgraph <sssp|cc|sim|dfs|lcc|bc|reach> --graph G.txt \
                     [--updates D.txt] [--directed] [--source N] [--seed S] [--out F] \
                     [--threads N] [--max-aff-frac F] [--max-scope N] [--audit] \
                     [--audit-stride K]\n\
                     \u{20}      incgraph bench [--threads N[,N…]] [--scale F] [--out BENCH.json] \
                     [--check-against BASELINE.json]\n\
                     \u{20}      incgraph fuzz [--seed S] [--cases N] [--budget-secs T] \
                     [--inject-fault skip-op|drop-deletes] [--crash] [--coalesce] [--dataflow] \
                     [--corpus DIR] [--max-nodes N]\n\
                     \u{20}      incgraph query --plan 'a = sssp(source=0); n = count(a)' \
                     --graph G.txt [--updates D.txt] [--directed] [--pattern-seed S] [--out F]\n\
                     \u{20}      incgraph replay <FILE.case|DIR>...\n\
                     \u{20}      incgraph checkpoint --store DIR [--graph G.txt] [--updates D.txt] \
                     [--directed] [--source N] [--seed S] [--classes c1,c2,…]\n\
                     \u{20}      incgraph recover --store DIR [--out F]\n\
                     \u{20}      incgraph serve [--addr H:P] [--store DIR [--graph-name G] \
                     [--nodes N] [--directed]] [--max-sessions N] [--max-pending N] \
                     [--idle-timeout-secs S] [--retry-after-ms MS] [--no-remote-shutdown] \
                     [--flush-ops N] [--flush-ms MS] [--replica-of H:P] [--digest-every N] \
                     [--snapshot-lag N] [--ack-timeout-ms MS]\n\
                     \u{20}      incgraph promote --addr H:P\n\
                     \u{20}      incgraph verify-store --store DIR\n\
                     \u{20}      incgraph failover --store DIR [--seed S] [--clients N] \
                     [--batches N] [--crash-at pre-fsync|post-fsync|mid-checkpoint|post-rename]\n\
                     \u{20}      incgraph load --addr H:P [--sessions N] [--batches N] \
                     [--units N] [--nodes N] [--seed S]\n\
                     \u{20}      incgraph chaos --store DIR [--seed S] [--clients N] \
                     [--batches N] [--kills N] [--no-proxy-faults]\n\
                     \u{20}      incgraph stream [--store DIR] [--virtual-time] [--rate OPS_S] \
                     [--flush-ops N] [--flush-ms MS] [--deadline-ms MS] [--max-lag-ms MS] \
                     [--seed S] [--scale F] [--windows N] [--max-ops N] [--checkpoint-every N] \
                     [--crash-at pre-fsync|post-fsync|mid-checkpoint|post-rename [--kill-at FRAC]] \
                     [--ramp] [--out STREAM.json] [--check-against BASELINE.json]\n\
                     every subcommand also accepts: [--metrics METRICS.jsonl] [--trace TRACE.jsonl]";

fn parse_args(argv: &[String]) -> Result<Args, CliError> {
    let mut args = Args {
        class: String::new(),
        graph: String::new(),
        updates: None,
        directed: false,
        source: 0,
        seed: 42,
        out: None,
        max_aff_frac: 1.0,
        max_scope: usize::MAX,
        audit: false,
        audit_stride: 1,
        threads: vec![1],
        scale: 1.0,
        check_against: None,
    };
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--graph" => args.graph = it.next().ok_or_else(|| usage("--graph needs a path"))?,
            "--updates" => {
                args.updates = Some(it.next().ok_or_else(|| usage("--updates needs a path"))?)
            }
            "--directed" => args.directed = true,
            "--audit" => args.audit = true,
            "--source" => {
                args.source = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--source needs a node id"))?
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            "--max-aff-frac" => {
                args.max_aff_frac = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or_else(|| usage("--max-aff-frac needs a fraction in [0, 1]"))?
            }
            "--max-scope" => {
                args.max_scope = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--max-scope needs a variable count"))?
            }
            "--threads" => {
                let list = it
                    .next()
                    .ok_or_else(|| usage("--threads needs an integer ≥ 1 (bench: N[,N…])"))?;
                args.threads = list
                    .split(',')
                    .map(|v| v.trim().parse::<usize>().ok().filter(|&t| t >= 1))
                    .collect::<Option<Vec<_>>>()
                    .filter(|l| !l.is_empty())
                    .ok_or_else(|| usage("--threads needs an integer ≥ 1 (bench: N[,N…])"))?;
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f| f > 0.0)
                    .ok_or_else(|| usage("--scale needs a positive factor"))?
            }
            "--audit-stride" => {
                args.audit_stride = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| usage("--audit-stride needs an integer ≥ 1"))?
            }
            "--out" => args.out = Some(it.next().ok_or_else(|| usage("--out needs a path"))?),
            "--check-against" => {
                args.check_against = Some(
                    it.next()
                        .ok_or_else(|| usage("--check-against needs a path"))?,
                )
            }
            flag if flag.starts_with('-') => return Err(usage(&format!("unknown flag {flag}"))),
            class if args.class.is_empty() => args.class = class.to_string(),
            extra => return Err(usage(&format!("unexpected argument {extra}"))),
        }
    }
    if args.class.is_empty() || (args.graph.is_empty() && args.class != "bench") {
        return Err(CliError::Usage(USAGE.to_string()));
    }
    if args.class != "bench" && args.threads.len() > 1 {
        return Err(usage("--threads N,N,… sweeps are bench-only"));
    }
    Ok(args)
}

fn report(phase: &str, secs: f64, rep: Option<&BoundednessReport>) {
    match rep {
        Some(r) => {
            eprintln!(
                "{phase}: {:.3} ms | scope {} | inspected {} of {} vars ({:.4}%)",
                secs * 1e3,
                r.scope_size,
                r.inspected_vars,
                r.total_vars,
                100.0 * r.aff_fraction()
            );
            if let Some(d) = r.fallback {
                eprintln!(
                    "fell back to batch recompute: {:?} (observed {} > limit {})",
                    d.reason, d.observed, d.limit
                );
            }
        }
        None => eprintln!("{phase}: {:.3} ms", secs * 1e3),
    }
}

fn write_out(path: &Option<String>, lines: impl Iterator<Item = String>) -> Result<(), CliError> {
    let out_err = |p: &str, e: std::io::Error| CliError::Output {
        path: p.to_string(),
        source: e,
    };
    match path {
        Some(p) => {
            ensure_parent(p)?;
            let f = std::fs::File::create(p).map_err(|e| out_err(p, e))?;
            let mut w = std::io::BufWriter::new(f);
            for l in lines {
                writeln!(w, "{l}").map_err(|e| out_err(p, e))?;
            }
            w.flush().map_err(|e| out_err(p, e))
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            for l in lines {
                writeln!(w, "{l}").map_err(|e| out_err("<stdout>", e))?;
            }
            w.flush().map_err(|e| out_err("<stdout>", e))
        }
    }
}

fn load(args: &Args) -> Result<(DynamicGraph, Option<UpdateBatch>), CliError> {
    let f = std::fs::File::open(&args.graph).map_err(|e| CliError::FileUnreadable {
        path: args.graph.clone(),
        source: e,
    })?;
    let g = read_graph(f, args.directed).map_err(|e| read_error(&args.graph, e))?;
    eprintln!(
        "loaded {}: |V|={}, |E|={}, {}",
        args.graph,
        g.node_count(),
        g.edge_count(),
        if args.directed {
            "directed"
        } else {
            "undirected"
        }
    );
    let updates = match &args.updates {
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| CliError::FileUnreadable {
                path: p.clone(),
                source: e,
            })?;
            Some(read_updates(f).map_err(|e| read_error(p, e))?)
        }
        None => None,
    };
    Ok((g, updates))
}

/// The `--metrics` / `--trace` observability flags, shared by every
/// subcommand: they are stripped out of `argv` *before* dispatch so the
/// per-subcommand strict parsers never see them, and when either is
/// present the process-wide metrics registry is installed for the whole
/// run.
struct ObsSetup {
    metrics: Option<String>,
    trace: Option<String>,
    registry: Option<Arc<Registry>>,
}

impl ObsSetup {
    fn extract(argv: &mut Vec<String>) -> Result<ObsSetup, CliError> {
        let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
        let mut metrics = None;
        let mut trace = None;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--metrics" | "--trace" => {
                    if i + 1 >= argv.len() {
                        return Err(usage(&format!("{} needs a path", argv[i])));
                    }
                    let flag = argv.remove(i);
                    let path = argv.remove(i);
                    if flag == "--metrics" {
                        metrics = Some(path);
                    } else {
                        trace = Some(path);
                    }
                }
                _ => i += 1,
            }
        }
        let registry = if metrics.is_some() || trace.is_some() {
            let r = Arc::new(if trace.is_some() {
                Registry::with_trace()
            } else {
                Registry::new()
            });
            incgraph_obs::install(r.clone());
            Some(r)
        } else {
            None
        };
        Ok(ObsSetup {
            metrics,
            trace,
            registry,
        })
    }

    /// Writes the collected telemetry and prints the human summary to
    /// stderr. Runs even when the subcommand failed, so a failing run
    /// still leaves its metrics behind for postmortems.
    fn export(&self) -> Result<(), CliError> {
        let Some(registry) = &self.registry else {
            return Ok(());
        };
        let snap = registry.snapshot();
        let out_err = |p: &str, e: std::io::Error| CliError::Output {
            path: p.to_string(),
            source: e,
        };
        if let Some(path) = &self.metrics {
            // The metrics file carries the aggregate view; raw spans
            // (when traced) belong to the --trace file.
            let mut aggregate = snap.clone();
            aggregate.spans.clear();
            ensure_parent(path)?;
            std::fs::write(path, incgraph_obs::to_jsonl(&aggregate))
                .map_err(|e| out_err(path, e))?;
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &self.trace {
            ensure_parent(path)?;
            std::fs::write(path, incgraph_obs::to_jsonl(&snap)).map_err(|e| out_err(path, e))?;
            eprintln!("wrote trace to {path}");
        }
        eprint!("{}", incgraph_obs::render_summary(&snap));
        Ok(())
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

/// `incgraph bench`: runs the parallel-engine suite, writes the
/// machine-readable `BENCH_<date>.json` datapoint (see
/// [`incgraph_bench::parbench`]), then runs the instrumented per-phase
/// pass ([`incgraph_bench::phasebench`]) and prints its breakdown
/// table. The phase metrics are written as JSON-lines next to the
/// datapoint (`<path>.metrics.jsonl`), in addition to whatever
/// `--metrics`/`--trace` requested.
fn run_bench(args: &Args, registry: &Option<Arc<Registry>>) -> Result<(), CliError> {
    use incgraph_bench::{parbench, phasebench};
    let reps = std::env::var("INCGRAPH_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let mut sweep: Vec<(usize, Vec<parbench::ClassResult>)> = Vec::new();
    for &threads in &args.threads {
        eprintln!("parallel-engine bench: {threads} thread(s), {reps} sample(s) per point");
        let results = parbench::run_suite(threads, args.scale, reps);
        print!("{}", parbench::render_table(&results));
        sweep.push((threads, results));
    }
    let date = parbench::today_utc();
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| format!("results/BENCH_{date}.json"));
    let out_err = |p: &str, e: std::io::Error| CliError::Output {
        path: p.to_string(),
        source: e,
    };
    ensure_parent(&path)?;
    let json = parbench::to_json_sweep(&date, reps, &sweep);
    std::fs::write(&path, json).map_err(|e| out_err(&path, e))?;
    eprintln!("wrote {path}");

    // Regression gate (the CI smoke job): the single-thread
    // incremental/batch min-ratio against the committed baseline, with
    // 25% headroom — see `parbench::regressions` for why ratios of mins.
    if let Some(baseline_path) = &args.check_against {
        let baseline = std::fs::read_to_string(baseline_path).map_err(|e| CliError::Output {
            path: baseline_path.clone(),
            source: e,
        })?;
        let bad = parbench::regressions(&baseline, &sweep[0].1, 0.25);
        if bad.is_empty() {
            eprintln!("bench-regression gate vs {baseline_path}: ok");
        } else {
            for line in &bad {
                eprintln!("bench-regression: {line}");
            }
            return Err(CliError::Usage(format!(
                "bench-regression gate failed: {} class(es) slower than {baseline_path} + 25%",
                bad.len()
            )));
        }
    }

    // Per-phase pass: reuse the `--metrics` registry when one is live
    // (the pass then also lands in the exported file); otherwise
    // install a bench-local one just for this pass.
    let phase_registry = match registry {
        Some(r) => r.clone(),
        None => {
            let r = Arc::new(Registry::new());
            incgraph_obs::install(r.clone());
            r
        }
    };
    // The phase breakdown runs once, at the largest swept count.
    phasebench::run_phases(args.threads.iter().copied().max().unwrap_or(1), args.scale);
    let snap = phase_registry.snapshot();
    if registry.is_none() {
        incgraph_obs::uninstall();
    }
    print!("{}", phasebench::render_phase_table(&snap));
    let metrics_path = format!(
        "{}.metrics.jsonl",
        path.strip_suffix(".json").unwrap_or(&path)
    );
    let mut aggregate = snap;
    aggregate.spans.clear();
    std::fs::write(&metrics_path, incgraph_obs::to_jsonl(&aggregate))
        .map_err(|e| out_err(&metrics_path, e))?;
    eprintln!("wrote {metrics_path}");
    Ok(())
}

/// `incgraph fuzz`: a differential-fuzzing campaign over generated
/// cases (see `crates/oracle`). Exit codes: 0 = campaign met its goal,
/// 1 = a real divergence was found (clean mode) or the injected fault
/// escaped the oracles (`--inject-fault` mode).
fn run_fuzz(argv: &[String]) -> Result<(), CliError> {
    use incgraph_oracle::{fuzz, Fault, FuzzConfig};
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut cfg = FuzzConfig::new(1, 100);
    cfg.corpus_dir = Some(std::path::PathBuf::from("tests/corpus"));
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            "--cases" => {
                cfg.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage("--cases needs an integer ≥ 1"))?
            }
            "--budget-secs" => {
                let secs: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0.0)
                    .ok_or_else(|| usage("--budget-secs needs a positive number"))?;
                cfg.time_budget = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--inject-fault" => {
                let name = it
                    .next()
                    .ok_or_else(|| usage("--inject-fault needs a fault name"))?;
                cfg.inject_fault = Some(
                    Fault::from_name(name)
                        .ok_or_else(|| usage(&format!("unknown fault `{name}`")))?,
                );
            }
            "--corpus" => {
                cfg.corpus_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or_else(|| usage("--corpus needs a dir"))?,
                ))
            }
            "--no-corpus" => cfg.corpus_dir = None,
            "--crash" => cfg.crash = true,
            "--coalesce" => cfg.coalesce = true,
            "--dataflow" => cfg.dataflow = true,
            "--max-nodes" => {
                cfg.gen.max_nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 6)
                    .ok_or_else(|| usage("--max-nodes needs an integer ≥ 6"))?
            }
            flag => return Err(usage(&format!("unknown fuzz flag {flag}"))),
        }
    }
    // Create the corpus directory up front so a campaign that finds a
    // failure hours in cannot lose its reproducer to a missing dir.
    if let Some(dir) = &cfg.corpus_dir {
        std::fs::create_dir_all(dir).map_err(|source| CliError::Output {
            path: dir.display().to_string(),
            source,
        })?;
    }
    match cfg.inject_fault {
        Some(f) => eprintln!(
            "fuzz: seed {}, up to {} cases, injecting fault `{}`",
            cfg.seed,
            cfg.cases,
            f.name()
        ),
        None => eprintln!(
            "fuzz: seed {}, up to {} cases{}{}{}",
            cfg.seed,
            cfg.cases,
            if cfg.crash {
                ", sweeping crash-recovery"
            } else {
                ""
            },
            if cfg.coalesce {
                ", with the coalesce oracle"
            } else {
                ""
            },
            if cfg.dataflow {
                ", with the dataflow oracle"
            } else {
                ""
            }
        ),
    }
    let report = fuzz(&cfg);
    let classes: Vec<&str> = report.classes_exercised.iter().map(|c| c.name()).collect();
    eprintln!(
        "fuzz: ran {} cases / {} oracle checks; classes exercised: {}",
        report.cases_run,
        report.checks,
        classes.join(",")
    );
    if cfg.crash {
        eprintln!(
            "fuzz: {} kill-and-recover cycles verified",
            report.recoveries
        );
    }
    for rec in &report.crash_failures {
        eprintln!(
            "fuzz: case seed {}: {}{}",
            rec.case_seed,
            rec.failure,
            match &rec.path {
                Some(p) => format!(" → {}", p.display()),
                None => String::new(),
            }
        );
    }
    for rec in &report.failures {
        eprintln!(
            "fuzz: case seed {}: {} — minimized to {} updates / {} edges in {} attempts{}",
            rec.case_seed,
            rec.failure,
            rec.minimized.schedule_len(),
            rec.minimized.edges.len(),
            rec.shrink.attempts,
            match &rec.path {
                Some(p) => format!(" → {}", p.display()),
                None => String::new(),
            }
        );
    }
    match cfg.inject_fault {
        None => {
            if report.clean() {
                eprintln!("fuzz: all oracles held");
                Ok(())
            } else {
                Err(CliError::Oracle(format!(
                    "fuzz: {} divergence(s) found — reproducers written above",
                    report.failures.len() + report.crash_failures.len()
                )))
            }
        }
        Some(fault) => {
            // Validation mode: the fault MUST be caught and shrink small.
            let smallest = report
                .failures
                .iter()
                .map(|r| r.minimized.schedule_len())
                .min();
            match smallest {
                None => Err(CliError::Oracle(format!(
                    "fuzz: injected fault `{}` escaped all oracles over {} cases",
                    fault.name(),
                    report.cases_run
                ))),
                Some(n) if n > 10 => Err(CliError::Oracle(format!(
                    "fuzz: injected fault `{}` caught but only minimized to {n} updates (> 10)",
                    fault.name()
                ))),
                Some(n) => {
                    eprintln!(
                        "fuzz: injected fault `{}` caught and minimized to {n} update(s)",
                        fault.name()
                    );
                    Ok(())
                }
            }
        }
    }
}

/// `incgraph query --plan`: one-shot evaluation of an `incgraph-plan/1`
/// program over an edge-list graph (optionally after an update file),
/// printing the resulting view as `key value weight` rows. The same
/// plan text registers as a standing query against `incgraph serve`
/// via the wire `PLAN` verb.
fn run_query(argv: &[String]) -> Result<(), CliError> {
    use incgraph_dataflow::{eval_once, PlanContext, PLAN_GRAMMAR};
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut plan: Option<String> = None;
    let mut graph = String::new();
    let mut updates: Option<String> = None;
    let mut directed = false;
    let mut pattern_seed = 42u64;
    let mut out: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => {
                plan = Some(
                    it.next()
                        .ok_or_else(|| usage("--plan needs a program"))?
                        .clone(),
                )
            }
            "--graph" => {
                graph = it
                    .next()
                    .ok_or_else(|| usage("--graph needs a path"))?
                    .clone()
            }
            "--updates" => {
                updates = Some(
                    it.next()
                        .ok_or_else(|| usage("--updates needs a path"))?
                        .clone(),
                )
            }
            "--directed" => directed = true,
            "--pattern-seed" => {
                pattern_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--pattern-seed needs an integer"))?
            }
            "--out" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| usage("--out needs a path"))?
                        .clone(),
                )
            }
            flag => return Err(usage(&format!("unknown query flag {flag}"))),
        }
    }
    let plan = plan.ok_or_else(|| usage("query needs --plan '<program>'"))?;
    if graph.is_empty() {
        return Err(usage("query needs --graph G.txt"));
    }
    let f = std::fs::File::open(&graph).map_err(|e| CliError::FileUnreadable {
        path: graph.clone(),
        source: e,
    })?;
    let mut g = read_graph(f, directed).map_err(|e| read_error(&graph, e))?;
    if let Some(p) = &updates {
        let f = std::fs::File::open(p).map_err(|e| CliError::FileUnreadable {
            path: p.clone(),
            source: e,
        })?;
        let batch = read_updates(f).map_err(|e| read_error(p, e))?;
        batch.apply(&mut g);
    }
    let ctx = PlanContext {
        pattern: Some(random_pattern(&g, 4, 6, pattern_seed)),
        threads: 0,
    };
    let view = eval_once(&plan, &g, &ctx)
        .map_err(|e| CliError::Usage(format!("bad plan ({PLAN_GRAMMAR}): {e}")))?;
    eprintln!(
        "query: {} view row(s) over |V|={} |E|={}",
        view.len(),
        g.node_count(),
        g.edge_count()
    );
    write_out(&out, view.iter().map(|(k, v, w)| format!("{k} {v} {w}")))
}

/// `incgraph replay`: re-run corpus case files through the full oracle
/// stack. A case recording an `inject-fault` must still fail (the fault
/// is re-injected — it proves the oracles have teeth); a case without
/// one is a fixed-bug regression test and must pass.
fn run_replay(argv: &[String]) -> Result<(), CliError> {
    use incgraph_oracle::{run_case, Case};
    if argv.is_empty() {
        return Err(CliError::Usage(format!(
            "replay needs case files or directories\n{USAGE}"
        )));
    }
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for arg in argv {
        let path = std::path::PathBuf::from(arg);
        if path.is_dir() {
            let entries = std::fs::read_dir(&path).map_err(|e| CliError::FileUnreadable {
                path: arg.clone(),
                source: e,
            })?;
            let mut cases: Vec<_> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "case"))
                .collect();
            cases.sort();
            files.extend(cases);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(CliError::Usage("replay: no .case files found".into()));
    }
    let mut bad: Vec<String> = Vec::new();
    for path in &files {
        let shown = path.display();
        let text = std::fs::read_to_string(path).map_err(|e| CliError::FileUnreadable {
            path: shown.to_string(),
            source: e,
        })?;
        let case = Case::parse(&text).map_err(|e| CliError::Parse {
            path: shown.to_string(),
            source: ParseError {
                line: e.line,
                message: e.message,
            },
        })?;
        let outcome = run_case(&case, case.fault);
        match (case.fault, outcome.failure) {
            (Some(fault), Some(f)) => {
                eprintln!(
                    "replay {shown}: fault `{}` still caught ({f})",
                    fault.name()
                )
            }
            (Some(fault), None) => bad.push(format!(
                "{shown}: recorded fault `{}` no longer trips any oracle",
                fault.name()
            )),
            (None, Some(f)) => bad.push(format!("{shown}: regression: {f}")),
            (None, None) => eprintln!("replay {shown}: ok ({} checks)", outcome.checks),
        }
    }
    if bad.is_empty() {
        eprintln!("replay: {} case(s) verified", files.len());
        Ok(())
    } else {
        Err(CliError::Oracle(bad.join("\n")))
    }
}

/// Flags shared by the two durable-store subcommands.
struct StoreArgs {
    store: String,
    graph: Option<String>,
    updates: Option<String>,
    directed: bool,
    source: u32,
    seed: u64,
    classes: Option<Vec<String>>,
    out: Option<String>,
}

fn parse_store_args(cmd: &str, argv: &[String]) -> Result<StoreArgs, CliError> {
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut args = StoreArgs {
        store: String::new(),
        graph: None,
        updates: None,
        directed: false,
        source: 0,
        seed: 42,
        classes: None,
        out: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                args.store = it
                    .next()
                    .ok_or_else(|| usage("--store needs a dir"))?
                    .clone()
            }
            "--graph" => {
                args.graph = Some(
                    it.next()
                        .ok_or_else(|| usage("--graph needs a path"))?
                        .clone(),
                )
            }
            "--updates" => {
                args.updates = Some(
                    it.next()
                        .ok_or_else(|| usage("--updates needs a path"))?
                        .clone(),
                )
            }
            "--directed" => args.directed = true,
            "--source" => {
                args.source = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--source needs a node id"))?
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            "--classes" => {
                let list = it.next().ok_or_else(|| usage("--classes needs a list"))?;
                args.classes = Some(list.split(',').map(str::to_string).collect());
            }
            "--out" => {
                args.out = Some(
                    it.next()
                        .ok_or_else(|| usage("--out needs a path"))?
                        .clone(),
                )
            }
            flag => return Err(usage(&format!("unknown {cmd} flag {flag}"))),
        }
    }
    if args.store.is_empty() {
        return Err(usage(&format!("{cmd} needs --store DIR")));
    }
    Ok(args)
}

/// Builds fresh batch states for a new store. Default class set is every
/// class defined on the graph's direction regime.
fn store_states(
    g: &DynamicGraph,
    args: &StoreArgs,
) -> Result<Vec<Box<dyn IncrementalState>>, CliError> {
    let names: Vec<String> = match &args.classes {
        Some(list) => list.clone(),
        None => {
            let mut all = vec!["sssp", "cc", "sim", "reach"];
            if !g.is_directed() {
                all.extend(["lcc", "dfs", "bc"]);
            } else {
                all.push("dfs");
            }
            all.into_iter().map(str::to_string).collect()
        }
    };
    let mut states: Vec<Box<dyn IncrementalState>> = Vec::with_capacity(names.len());
    for name in &names {
        let class = QueryClass::from_name(name)
            .ok_or_else(|| CliError::Usage(format!("unknown class {name}\n{USAGE}")))?;
        let mut builder = Session::builder(class);
        if class.source_rooted() {
            builder = builder.source(args.source);
        }
        if class == QueryClass::Sim {
            builder = builder.pattern(random_pattern(g, 4, 6, args.seed));
        }
        let session = builder
            .build(g)
            .map_err(|e| CliError::Usage(format!("{name}: {e}\n{USAGE}")))?;
        states.push(Box::new(session));
    }
    Ok(states)
}

/// One digest line per state: class name + CRC-32 of the essence, the
/// same equality the crash oracle checks — two stores printing the same
/// digests hold value-identical worlds.
fn state_digests(session: &DurableSession) -> Vec<String> {
    session
        .states()
        .iter()
        .map(|s| format!("{} {:08x}", s.name(), crc32(&s.save_state())))
        .collect()
}

/// `incgraph checkpoint`: open (or create, from `--graph`) the durable
/// store, WAL-log the optional `--updates` batch through the hardened
/// incremental pipeline, and force a checkpoint. `DURABLE_CRASH_AT`
/// arms a one-shot injected crash at the named pipeline point.
fn run_checkpoint(argv: &[String]) -> Result<(), CliError> {
    let args = parse_store_args("checkpoint", argv)?;
    let store = args.store.as_str();
    let crash = CrashPoint::from_env()
        .map_err(|e| CliError::Usage(format!("DURABLE_CRASH_AT: {e}\n{USAGE}")))?;

    let manifest_exists = std::path::Path::new(store)
        .join(incgraph_durable::checkpoint::MANIFEST_NAME)
        .exists();
    let mut session = if manifest_exists {
        let (session, report) =
            incgraph_durable::recover(std::path::Path::new(store), DurableOptions::default())
                .map_err(|e| durable_error(store, e))?;
        eprintln!(
            "opened {store}: checkpoint seq {}, {} WAL record(s) replayed",
            report.checkpoint_seq, report.wal_records_replayed
        );
        session
    } else {
        let graph_path = args.graph.as_deref().ok_or_else(|| {
            CliError::Usage(format!("checkpoint on a new store needs --graph\n{USAGE}"))
        })?;
        let f = std::fs::File::open(graph_path).map_err(|e| CliError::FileUnreadable {
            path: graph_path.to_string(),
            source: e,
        })?;
        let g = read_graph(f, args.directed).map_err(|e| read_error(graph_path, e))?;
        eprintln!(
            "creating {store} from {graph_path}: |V|={}, |E|={}",
            g.node_count(),
            g.edge_count()
        );
        let states = store_states(&g, &args)?;
        DurableSession::create(
            std::path::Path::new(store),
            g,
            states,
            DurableOptions::default(),
        )
        .map_err(|e| durable_error(store, e))?
    };

    session.arm_crash(crash);
    if let Some(path) = &args.updates {
        let f = std::fs::File::open(path).map_err(|e| CliError::FileUnreadable {
            path: path.clone(),
            source: e,
        })?;
        let batch = read_updates(f).map_err(|e| read_error(path, e))?;
        let reports = session.apply(&batch).map_err(|e| durable_error(store, e))?;
        let fallbacks = reports.iter().filter(|r| r.fallback.is_some()).count();
        eprintln!(
            "applied ΔG as WAL record {} ({} state(s), {} fallback(s))",
            session.last_seq(),
            reports.len(),
            fallbacks
        );
    }
    let seq = session.checkpoint().map_err(|e| durable_error(store, e))?;
    eprintln!("checkpoint covering seq {seq} written");
    for line in state_digests(&session) {
        println!("{line}");
    }
    Ok(())
}

/// `incgraph recover`: rebuild live state from the store and print the
/// recovery report plus per-class digests (to `--out` if given).
fn run_recover(argv: &[String]) -> Result<(), CliError> {
    let args = parse_store_args("recover", argv)?;
    let store = args.store.as_str();
    let t = Instant::now();
    let (session, report) =
        incgraph_durable::recover(std::path::Path::new(store), DurableOptions::default())
            .map_err(|e| durable_error(store, e))?;
    eprintln!(
        "recovered {store} in {:.3} ms: checkpoint seq {} ({}), {} WAL record(s) replayed, \
         {} fallback(s)",
        t.elapsed().as_secs_f64() * 1e3,
        report.checkpoint_seq,
        if report.used_manifest {
            "via manifest"
        } else {
            "via directory scan"
        },
        report.wal_records_replayed,
        report.fallbacks
    );
    if report.checkpoints_skipped > 0 {
        eprintln!(
            "recover: skipped {} invalid/stale checkpoint(s)",
            report.checkpoints_skipped
        );
    }
    if report.wal_truncated_bytes > 0 {
        eprintln!(
            "recover: truncated {} torn byte(s) from the WAL tail",
            report.wal_truncated_bytes
        );
    }
    if report.wal_records_dropped > 0 {
        eprintln!(
            "recover: dropped {} corrupt WAL record(s)",
            report.wal_records_dropped
        );
    }
    eprintln!(
        "live state: |V|={}, |E|={}, seq {}",
        session.graph().node_count(),
        session.graph().edge_count(),
        session.last_seq()
    );
    write_out(&args.out, state_digests(&session).into_iter())
}

/// `incgraph serve`: bind the `incgraph-wire/1` TCP server and run until
/// a wire `SHUTDOWN` drains it. With `--store DIR` the named graph is
/// WAL-durable (recovered if the store exists, initialized from
/// `--nodes`/`--directed` otherwise) and protected by the store `LOCK` —
/// a second server on the same store exits with code 7. Without it the
/// store starts empty and clients create in-memory graphs over the wire.
fn run_serve(argv: &[String]) -> Result<(), CliError> {
    use incgraph_service::{Server, ServerConfig, Store, StoreLimits};
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut cfg = ServerConfig::default();
    let mut store_dir: Option<String> = None;
    let mut graph_name = "g0".to_string();
    let mut nodes = 64usize;
    let mut directed = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                cfg.addr = it
                    .next()
                    .ok_or_else(|| usage("--addr needs host:port"))?
                    .clone()
            }
            "--store" => {
                store_dir = Some(
                    it.next()
                        .ok_or_else(|| usage("--store needs a dir"))?
                        .clone(),
                )
            }
            "--graph-name" => {
                graph_name = it
                    .next()
                    .ok_or_else(|| usage("--graph-name needs a name"))?
                    .clone()
            }
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--nodes needs an integer"))?
            }
            "--directed" => directed = true,
            "--max-sessions" => {
                cfg.max_sessions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--max-sessions needs an integer"))?
            }
            "--max-pending" => {
                cfg.max_pending = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--max-pending needs an integer"))?
            }
            "--idle-timeout-secs" => {
                let secs: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--idle-timeout-secs needs an integer"))?;
                cfg.idle_timeout = std::time::Duration::from_secs(secs);
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--retry-after-ms needs an integer"))?
            }
            "--no-remote-shutdown" => cfg.allow_remote_shutdown = false,
            "--flush-ops" => {
                cfg.flush_ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage("--flush-ops needs an integer >= 1"))?
            }
            "--flush-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--flush-ms needs an integer"))?;
                cfg.flush_window = std::time::Duration::from_millis(ms);
            }
            "--replica-of" => {
                cfg.replica_of = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| usage("--replica-of needs host:port"))?,
                )
            }
            "--digest-every" => {
                cfg.digest_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--digest-every needs an integer (0 disables)"))?
            }
            "--snapshot-lag" => {
                cfg.snapshot_lag = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--snapshot-lag needs an integer"))?
            }
            "--ack-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--ack-timeout-ms needs an integer"))?;
                cfg.repl_ack_timeout = std::time::Duration::from_millis(ms);
            }
            flag => return Err(usage(&format!("unknown serve flag {flag}"))),
        }
    }
    // Replication is scoped to the durable graph: any server with a
    // store is a potential primary (or, with --replica-of, a replica).
    if store_dir.is_some() {
        cfg.repl_graph = Some(graph_name.clone());
    } else if cfg.replica_of.is_some() {
        return Err(usage("--replica-of needs --store (replicas are durable)"));
    }
    let store = match &store_dir {
        Some(dir) => {
            if nodes == 0 {
                return Err(usage("--store needs --nodes >= 1 to initialize a graph"));
            }
            let store = Store::open_durable(
                std::path::Path::new(dir),
                &graph_name,
                nodes,
                directed,
                DurableOptions::default(),
                StoreLimits::default(),
            )
            .map_err(|e| durable_error(dir, e))?;
            eprintln!("durable graph {graph_name} mounted from {dir}");
            store
        }
        None => Store::new(StoreLimits::default()),
    };
    if !cfg.allow_remote_shutdown {
        eprintln!("serve: wire SHUTDOWN disabled — stop the process to exit");
    }
    if let Some(primary) = cfg.replica_of {
        eprintln!("serve: replica of {primary} — read-only until promoted");
    }
    let mut handle = Server::start(store, cfg).map_err(|e| CliError::Output {
        path: "listener".to_string(),
        source: e,
    })?;
    // Machine-readable bind line on stdout so scripts can discover an
    // ephemeral port; everything else goes to stderr.
    println!("incgraph-wire/1 listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.wait();
    eprintln!("serve: drained and stopped");
    Ok(())
}

/// `incgraph load`: drive many concurrent sessions (classes round-robin
/// over all seven) against a live server and print per-class
/// `UPDATE`→`ACK` percentiles. Any session failing is an oracle-grade
/// error (exit 1) so CI smoke jobs fail loudly.
fn run_load_cmd(argv: &[String]) -> Result<(), CliError> {
    use incgraph_service::LoadConfig;
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut cfg = LoadConfig::default();
    let mut addr: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| usage("--addr needs host:port"))?
                        .clone(),
                )
            }
            "--sessions" => {
                cfg.sessions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--sessions needs an integer"))?
            }
            "--batches" => {
                cfg.batches_per_session = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--batches needs an integer"))?
            }
            "--units" => {
                cfg.units_per_batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--units needs an integer"))?
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--nodes needs an integer"))?
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            flag => return Err(usage(&format!("unknown load flag {flag}"))),
        }
    }
    let addr = addr.ok_or_else(|| usage("load needs --addr HOST:PORT"))?;
    cfg.addr = addr
        .parse()
        .map_err(|_| usage(&format!("--addr: cannot parse {addr}")))?;
    eprintln!(
        "load: {} sessions × {} batches × {} units against {}",
        cfg.sessions, cfg.batches_per_session, cfg.units_per_batch, cfg.addr
    );
    let report = incgraph_service::run_load(&cfg);
    print!("{report}");
    if report.sessions_failed > 0 {
        return Err(CliError::Oracle(format!(
            "load: {} of {} sessions failed",
            report.sessions_failed, cfg.sessions
        )));
    }
    Ok(())
}

/// `incgraph chaos`: the network-chaos oracle from `crates/oracle` —
/// real server, byte-cutting proxy, abrupt kill/restart cycles, then a
/// WAL audit (exactly-once for every ack) and an essence check of the
/// recovered store against genesis replay. Any violation exits 1.
fn run_chaos_cmd(argv: &[String]) -> Result<(), CliError> {
    use incgraph_oracle::ChaosConfig;
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut cfg = ChaosConfig::default();
    let mut store: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                store = Some(
                    it.next()
                        .ok_or_else(|| usage("--store needs a dir"))?
                        .clone(),
                )
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            "--clients" => {
                cfg.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--clients needs an integer"))?
            }
            "--batches" => {
                cfg.batches_per_client = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--batches needs an integer"))?
            }
            "--kills" => {
                cfg.kills = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--kills needs an integer"))?
            }
            "--no-proxy-faults" => cfg.proxy_faults = false,
            flag => return Err(usage(&format!("unknown chaos flag {flag}"))),
        }
    }
    let store = store.ok_or_else(|| usage("chaos needs --store DIR"))?;
    eprintln!(
        "chaos: seed {:#x}, {} clients × {} batches, {} kill cycles, proxy faults {}",
        cfg.seed,
        cfg.clients,
        cfg.batches_per_client,
        cfg.kills,
        if cfg.proxy_faults { "on" } else { "off" }
    );
    let report = incgraph_oracle::run_chaos(std::path::Path::new(&store), &cfg)
        .map_err(|e| CliError::Oracle(format!("chaos violation: {e}")))?;
    println!(
        "chaos clean: {} acked ({} dup acks), {} reconnects, {} server deaths, \
         {} WAL batches ({} committed-unacked), {} classes verified",
        report.acked,
        report.dup_acks,
        report.reconnects,
        report.server_deaths,
        report.wal_batches,
        report.committed_unacked,
        report.classes_verified
    );
    Ok(())
}

/// `incgraph failover`: the partition/failover chaos oracle
/// (see [`incgraph_oracle::failover`] and docs/ROBUSTNESS.md §6). One
/// primary→replica cycle per crash point: kill the primary mid-stream,
/// promote the replica, redirect the clients, then audit the new
/// primary offline for exactly-once survival of every acked batch and
/// genesis-replay equality.
fn run_failover_cmd(argv: &[String]) -> Result<(), CliError> {
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut cfg = incgraph_oracle::FailoverConfig::default();
    let mut store: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                store = Some(
                    it.next()
                        .ok_or_else(|| usage("--store needs a dir"))?
                        .clone(),
                )
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            "--clients" => {
                cfg.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--clients needs an integer"))?
            }
            "--batches" => {
                cfg.batches_per_client = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--batches needs an integer"))?
            }
            "--crash-at" => {
                let name = it
                    .next()
                    .ok_or_else(|| usage("--crash-at needs a crash point name"))?;
                cfg.points = vec![CrashPoint::parse(name)
                    .ok_or_else(|| usage(&format!("unknown crash point `{name}`")))?];
            }
            flag => return Err(usage(&format!("unknown failover flag {flag}"))),
        }
    }
    let store = store.ok_or_else(|| usage("failover needs --store DIR"))?;
    eprintln!(
        "failover: seed {:#x}, {} clients × {} batches, crash points {:?}",
        cfg.seed, cfg.clients, cfg.batches_per_client, cfg.points
    );
    let report = incgraph_oracle::run_failover(std::path::Path::new(&store), &cfg)
        .map_err(|e| CliError::Oracle(format!("failover violation: {e}")))?;
    println!(
        "failover clean: {} cycles, {} acked ({} dup acks), {} reconnects, \
         {} WAL batches ({} committed-unacked), {} class essences verified",
        report.cycles,
        report.acked,
        report.dup_acks,
        report.reconnects,
        report.wal_batches,
        report.committed_unacked,
        report.classes_verified
    );
    Ok(())
}

/// `incgraph promote`: operator promotion of a replica to primary.
/// Bumps the durable epoch; prints the new epoch on stdout.
fn run_promote(argv: &[String]) -> Result<(), CliError> {
    use incgraph_service::client::Client;
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut addr: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| usage("--addr needs host:port"))?
                        .clone(),
                )
            }
            flag => return Err(usage(&format!("unknown promote flag {flag}"))),
        }
    }
    let addr = addr.ok_or_else(|| usage("promote needs --addr H:P"))?;
    let sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| usage(&format!("bad address `{addr}`")))?;
    let mut c = Client::connect_timeout(sock, "promote-cli", std::time::Duration::from_secs(5))
        .map_err(|e| CliError::Oracle(format!("{addr}: connect: {e}")))?;
    let epoch = c
        .promote()
        .map_err(|e| CliError::Oracle(format!("{addr}: promote refused: {e}")))?;
    println!("promoted: epoch {epoch}");
    let _ = c.bye();
    Ok(())
}

/// `incgraph verify-store`: offline read-only scrub of a durable store
/// directory. Walks every checkpoint (magic + whole-file CRC + payload
/// decode), the full WAL (per-record CRC and sequence continuity from
/// the store's base), the dedup intent log, and the
/// manifest/EPOCH/BASE sidecars, then cross-checks their consistency.
/// Never takes the store `LOCK` and mutates nothing, so it is safe on a
/// store a live server holds. Integrity violations exit 1; a torn WAL
/// or dedup tail is reported but healthy (crash-normal).
fn run_verify_store(argv: &[String]) -> Result<(), CliError> {
    use incgraph_durable::checkpoint::{
        checkpoint_path, list_checkpoints, load_checkpoint, read_manifest,
    };
    use incgraph_durable::wal::WAL_MAGIC;
    use incgraph_durable::{read_base, read_epoch, scan_records, WAL_NAME};
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let mut store: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                store = Some(
                    it.next()
                        .ok_or_else(|| usage("--store needs a dir"))?
                        .clone(),
                )
            }
            flag => return Err(usage(&format!("unknown verify-store flag {flag}"))),
        }
    }
    let store = store.ok_or_else(|| usage("verify-store needs --store DIR"))?;
    let dir = std::path::Path::new(&store);
    let bad = |msg: String| CliError::Oracle(format!("{store}: {msg}"));

    // Sidecars: corrupt metadata is a hard failure, missing is default.
    let epoch = read_epoch(dir).map_err(|e| durable_error(&store, e))?;
    let base = read_base(dir).map_err(|e| durable_error(&store, e))?;

    // Every checkpoint must fully validate, and its filename sequence
    // must match the sequence sealed inside the payload.
    let ckpts = list_checkpoints(dir);
    for &seq in &ckpts {
        let (covered, _graph, states) = load_checkpoint(&checkpoint_path(dir, seq))
            .map_err(|e| bad(format!("checkpoint {seq}: {e}")))?;
        if covered != seq {
            return Err(bad(format!(
                "checkpoint {seq}: payload covers seq {covered}"
            )));
        }
        eprintln!(
            "verify-store: checkpoint {seq} ok ({} states)",
            states.len()
        );
    }

    // The WAL: per-record CRC + strict sequence continuity from base.
    let wal_path = dir.join(WAL_NAME);
    let bytes = std::fs::read(&wal_path).map_err(|e| CliError::FileUnreadable {
        path: wal_path.display().to_string(),
        source: e,
    })?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(bad("WAL magic missing or damaged".into()));
    }
    let body = &bytes[WAL_MAGIC.len()..];
    let scan = scan_records(body, base + 1);
    let torn = body.len() - scan.valid_len;
    let last_seq = base + scan.records.len() as u64;
    eprintln!(
        "verify-store: WAL records {}..={} ok ({} records, {torn} torn tail bytes)",
        base + 1,
        last_seq,
        scan.records.len()
    );

    // The dedup intent log (longest-valid-prefix scan, read-only).
    let dedup_entries = incgraph_service::dedup::scan_entries(dir, last_seq)
        .map_err(|e| bad(format!("dedup log: {e}")))?;
    eprintln!(
        "verify-store: dedup log ok ({} committed intents)",
        dedup_entries.len()
    );

    // Cross-consistency.
    let manifest = read_manifest(dir);
    if let Some((mseq, mepoch)) = manifest {
        if !ckpts.contains(&mseq) {
            return Err(bad(format!(
                "manifest names checkpoint {mseq}, which does not validate on disk"
            )));
        }
        if mseq > last_seq {
            return Err(bad(format!(
                "manifest covers seq {mseq} beyond the WAL frontier {last_seq}"
            )));
        }
        if mepoch > epoch {
            return Err(bad(format!(
                "manifest epoch {mepoch} beyond the EPOCH sidecar {epoch}"
            )));
        }
    } else if !ckpts.is_empty() {
        eprintln!("verify-store: note — checkpoints exist but no manifest (pre-seal crash)");
    }
    for &seq in &ckpts {
        if seq < base || seq > last_seq {
            return Err(bad(format!(
                "checkpoint {seq} outside the store's history [{base}, {last_seq}]"
            )));
        }
    }

    println!(
        "store healthy: epoch {epoch}, base {base}, {} WAL records (frontier {last_seq}), \
         {} checkpoints, {} dedup intents{}",
        scan.records.len(),
        ckpts.len(),
        dedup_entries.len(),
        if torn > 0 {
            format!(", {torn}-byte torn WAL tail (crash-normal)")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// `incgraph stream`: the sustained-stream SLO harness
/// (see [`incgraph_bench::stream`] and docs/STREAMING.md). Replays the
/// temporal workload's timestamped history at a target rate against a
/// WAL-durable store with standing queries over every class, measures
/// steady-state p50/p99/p999 update latency per class, optionally
/// injects a kill to measure recovery time, optionally ramps to find
/// the throughput ceiling, audits the WAL for exactly-once application
/// of every ack, and writes `results/STREAM_<date>.json` with a
/// `--check-against` regression gate. `--virtual-time` drives a
/// deterministic virtual clock: same seed + same schedule ⇒ identical
/// final store digest and accounting.
fn run_stream_cmd(argv: &[String], obs: &ObsSetup) -> Result<(), CliError> {
    use incgraph_bench::stream::{
        render_table, run_stream, stream_regressions, to_json, RampConfig, StreamConfig,
        StreamCrash, StreamError,
    };
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n{USAGE}"));
    let scratch_store =
        std::env::temp_dir().join(format!("incgraph-stream-{}", std::process::id()));
    let mut cfg = StreamConfig::new(scratch_store.clone());
    let mut out: Option<String> = None;
    let mut check_against: Option<String> = None;
    let mut crash_at: Option<CrashPoint> = None;
    let mut kill_at = 0.5f64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                cfg.store =
                    std::path::PathBuf::from(it.next().ok_or_else(|| usage("--store needs a dir"))?)
            }
            "--virtual-time" => cfg.virtual_time = true,
            "--rate" => {
                cfg.rate_ops_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0)
                    .ok_or_else(|| usage("--rate needs a positive ops/sec"))?
            }
            "--flush-ops" => {
                cfg.flush_ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage("--flush-ops needs an integer >= 1"))?
            }
            "--flush-ms" => {
                cfg.flush_wait_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f >= 0.0)
                    .ok_or_else(|| usage("--flush-ms needs a non-negative number"))?
            }
            "--deadline-ms" => {
                cfg.deadline_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or_else(|| usage("--deadline-ms needs a positive number"))?
            }
            "--max-lag-ms" => {
                cfg.max_lag_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or_else(|| usage("--max-lag-ms needs a positive number"))?
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--seed needs an integer"))?
            }
            "--scale" => {
                cfg.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f > 0.0)
                    .ok_or_else(|| usage("--scale needs a positive factor"))?
            }
            "--windows" => {
                cfg.windows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage("--windows needs an integer >= 1"))?
            }
            "--max-ops" => {
                cfg.max_ops = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| usage("--max-ops needs an integer >= 1"))?,
                )
            }
            "--checkpoint-every" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage("--checkpoint-every needs an integer (0 = off)"))?;
                cfg.checkpoint_every = (n > 0).then_some(n);
            }
            "--crash-at" => {
                let name = it
                    .next()
                    .ok_or_else(|| usage("--crash-at needs a crash point name"))?;
                crash_at = Some(
                    CrashPoint::parse(name)
                        .ok_or_else(|| usage(&format!("unknown crash point `{name}`")))?,
                );
            }
            "--kill-at" => {
                kill_at = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f: &f64| (0.0..=1.0).contains(f))
                    .ok_or_else(|| usage("--kill-at needs a fraction in [0, 1]"))?
            }
            "--ramp" => cfg.ramp = Some(RampConfig::default()),
            "--out" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| usage("--out needs a path"))?
                        .clone(),
                )
            }
            "--check-against" => {
                check_against = Some(
                    it.next()
                        .ok_or_else(|| usage("--check-against needs a path"))?
                        .clone(),
                )
            }
            flag => return Err(usage(&format!("unknown stream flag {flag}"))),
        }
    }
    cfg.crash = crash_at.map(|point| StreamCrash {
        point,
        at_frac: kill_at,
    });
    let store_shown = cfg.store.display().to_string();
    eprintln!(
        "stream: {} clock, target {:.0} ops/s, flush {} ops / {:.1} ms, SLO {:.0} ms, store {}",
        if cfg.virtual_time {
            "virtual"
        } else {
            "real-time"
        },
        cfg.rate_ops_s,
        cfg.flush_ops,
        cfg.flush_wait_ms,
        cfg.deadline_ms,
        store_shown
    );
    let result = run_stream(&cfg, obs.registry.clone());
    // A scratch store (no --store) is throwaway; a named one is kept for
    // postmortems.
    if cfg.store == scratch_store {
        let _ = std::fs::remove_dir_all(&scratch_store);
    }
    let report = result.map_err(|e| match e {
        StreamError::Config(m) => usage(&m),
        StreamError::Durable(d) => durable_error(&store_shown, d),
        StreamError::Audit(a) => CliError::Oracle(format!("stream exactly-once audit: {a}")),
    })?;
    print!("{}", render_table(&report));
    let path = out.unwrap_or_else(|| format!("results/STREAM_{}.json", report.date));
    ensure_parent(&path)?;
    std::fs::write(&path, to_json(&report)).map_err(|e| CliError::Output {
        path: path.clone(),
        source: e,
    })?;
    eprintln!("wrote {path}");
    if let Some(baseline_path) = &check_against {
        let baseline = std::fs::read_to_string(baseline_path).map_err(|e| CliError::Output {
            path: baseline_path.clone(),
            source: e,
        })?;
        let bad = stream_regressions(&baseline, &report, 1.0);
        if bad.is_empty() {
            eprintln!("stream-regression gate vs {baseline_path}: ok");
        } else {
            for line in &bad {
                eprintln!("stream-regression: {line}");
            }
            return Err(CliError::Usage(format!(
                "stream-regression gate failed: {} violation(s) vs {baseline_path}",
                bad.len()
            )));
        }
    }
    Ok(())
}

fn run() -> Result<(), CliError> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsSetup::extract(&mut argv)?;
    let result = dispatch(&argv, &obs);
    // Telemetry export happens after the subcommand, success or not, so
    // a failing run still leaves its metrics behind; an export failure
    // only surfaces when the run itself was clean.
    match obs.export() {
        Ok(()) => result,
        Err(e) => result.and(Err(e)),
    }
}

fn dispatch(argv: &[String], obs: &ObsSetup) -> Result<(), CliError> {
    match argv.first().map(String::as_str) {
        Some("fuzz") => return run_fuzz(&argv[1..]),
        Some("query") => return run_query(&argv[1..]),
        Some("replay") => return run_replay(&argv[1..]),
        Some("checkpoint") => return run_checkpoint(&argv[1..]),
        Some("recover") => return run_recover(&argv[1..]),
        Some("serve") => return run_serve(&argv[1..]),
        Some("load") => return run_load_cmd(&argv[1..]),
        Some("chaos") => return run_chaos_cmd(&argv[1..]),
        Some("failover") => return run_failover_cmd(&argv[1..]),
        Some("promote") => return run_promote(&argv[1..]),
        Some("verify-store") => return run_verify_store(&argv[1..]),
        Some("stream") => return run_stream_cmd(&argv[1..], obs),
        _ => {}
    }
    let args = parse_args(argv)?;
    if args.class == "bench" {
        return run_bench(&args, &obs.registry);
    }
    let (mut g, updates) = load(&args)?;

    let policy = FallbackPolicy {
        max_aff_fraction: args.max_aff_frac,
        max_scope_size: args.max_scope,
        ..Default::default()
    };
    let audit = if args.audit {
        Some(if args.audit_stride > 1 {
            FixpointAudit::sampled(args.audit_stride, args.seed as usize)
        } else {
            FixpointAudit::full()
        })
    } else {
        None
    };
    // One knob struct for the whole guarded pipeline: thread routing
    // (incremental resumes go through the sharded parallel engine — a
    // no-op for the inherently sequential DFS/BC), degradation policy,
    // and auditing.
    let exec = ExecOptions {
        threads: Some(args.threads[0]),
        policy,
        audit,
        micro_batch: false,
    };

    // Validate-then-apply: a poisoned stream rolls the graph back and
    // exits 5 before any algorithm state is touched.
    let apply_updates =
        |g: &mut DynamicGraph, state: &mut dyn IncrementalState| -> Result<(), CliError> {
            let Some(batch) = &updates else {
                return Ok(());
            };
            let path = args.updates.as_deref().unwrap_or("<updates>");
            let applied = batch
                .apply_validated(g)
                .map_err(|source| CliError::InvalidUpdates {
                    path: path.to_string(),
                    source,
                })?;
            eprintln!("applying ΔG: {} effective unit updates", applied.len());
            let t = Instant::now();
            let rep = update_with(state, g, &applied, &exec);
            report("incremental", t.elapsed().as_secs_f64(), Some(&rep));
            Ok(())
        };

    macro_rules! run {
        ($batch:expr, $emit:expr) => {{
            let t = Instant::now();
            let mut state = $batch;
            report("batch", t.elapsed().as_secs_f64(), None);
            apply_updates(&mut g, &mut state)?;
            write_out(&args.out, $emit(&state, &g))?;
        }};
    }

    match args.class.as_str() {
        "sssp" => run!(
            SsspState::batch(&g, args.source).0,
            |s: &SsspState, _g: &DynamicGraph| {
                let d = s.distances().to_vec();
                d.into_iter().enumerate().map(|(v, d)| {
                    if d == u64::MAX {
                        format!("{v} inf")
                    } else {
                        format!("{v} {d}")
                    }
                })
            }
        ),
        "reach" => run!(
            ReachState::batch(&g, args.source).0,
            |s: &ReachState, _g: &DynamicGraph| {
                let r = s.reached().to_vec();
                r.into_iter()
                    .enumerate()
                    .map(|(v, b)| format!("{v} {}", b as u8))
            }
        ),
        "cc" => run!(CcState::batch(&g).0, |s: &CcState, _g: &DynamicGraph| {
            let c = s.components().to_vec();
            c.into_iter().enumerate().map(|(v, c)| format!("{v} {c}"))
        }),
        "dfs" => run!(DfsState::batch(&g).0, |s: &DfsState, g: &DynamicGraph| {
            let rows: Vec<String> = (0..g.node_count() as u32)
                .map(|v| format!("{v} {} {} {}", s.first(v), s.last(v), s.parent(v)))
                .collect();
            rows.into_iter()
        }),
        "lcc" => run!(LccState::batch(&g).0, |s: &LccState, g: &DynamicGraph| {
            let rows: Vec<String> = (0..g.node_count() as u32)
                .map(|v| format!("{v} {:.6}", s.coefficient(v)))
                .collect();
            rows.into_iter()
        }),
        "bc" => run!(BcState::batch(&g).0, |s: &BcState, g: &DynamicGraph| {
            let rows = vec![
                format!(
                    "articulation_points {}",
                    s.articulation_points(g)
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
                format!(
                    "bridges {}",
                    s.bridges(g)
                        .iter()
                        .map(|(a, b)| format!("{a}-{b}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ];
            rows.into_iter()
        }),
        "sim" => {
            let q = random_pattern(&g, 4, 6, args.seed);
            eprintln!("pattern |Q|=(4,6), seed {}", args.seed);
            run!(
                SimState::batch(&g, q.clone()).0,
                |s: &SimState, _g: &DynamicGraph| {
                    let rel = s.relation();
                    rel.into_iter().map(|(v, u)| format!("{v} {u}"))
                }
            )
        }
        other => {
            return Err(CliError::Usage(format!("unknown class {other}\n{USAGE}")));
        }
    }
    Ok(())
}
